//! Quickstart: the smallest end-to-end Apparate comparison.
//!
//! Builds the CV scenario (ResNet-50 over a synthetic night-time video
//! stream), runs Apparate against the full baseline family on a fixed seed,
//! and prints the paper-style win table. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! For the full three-scenario comparison (CV + NLP + generative) use the
//! repro binary: `cargo run --release -p apparate-experiments --bin repro`.

use apparate::experiments::{cv_scenario, run_classification};

fn main() {
    let seed = 42;
    let frames = 2_500;
    println!("apparate quickstart — CV scenario, seed {seed}, {frames} frames\n");

    let table = run_classification(&cv_scenario(seed, frames));
    print!("{}", table.render());

    let vanilla = table.row("vanilla").expect("vanilla row");
    let apparate = table.row("apparate").expect("apparate row");
    println!(
        "\napparate served the median request in {:.2} ms vs {:.2} ms vanilla \
         (a {:.1}% win) at {:.1}% accuracy.",
        apparate.summary.latency_ms.p50,
        vanilla.summary.latency_ms.p50,
        apparate.wins.p50,
        apparate.summary.accuracy * 100.0,
    );
}
