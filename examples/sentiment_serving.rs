//! Sentiment serving: the paper's NLP scenario as a narrated walkthrough.
//!
//! BERT-base classifies a stream of Amazon-style product reviews arriving in
//! MAF-like bursts. The stream has *block structure* — per-category and
//! per-user difficulty regimes — but weak request-to-request continuity,
//! which is what makes NLP adaptation harder than video (§4.2). Apparate runs
//! against the full baseline family under identical arrivals, with the GPU →
//! controller profiling stream and the controller → GPU threshold updates
//! both charged against the PCIe link model of §4.5. Run with:
//!
//! ```text
//! cargo run --release --example sentiment_serving
//! ```
//!
//! For the full three-scenario comparison (CV + NLP + generative) use the
//! repro binary: `cargo run --release -p apparate-experiments --bin repro`.

use apparate::experiments::{nlp_scenario, run_classification_full, OverheadTable};

fn main() {
    let seed = 42;
    let requests = 3_000;
    println!("apparate sentiment serving — NLP scenario, seed {seed}, {requests} reviews");
    println!("model: BERT-base · workload: amazon-reviews · arrivals: MAF-like bursts\n");

    let run = run_classification_full(&nlp_scenario(seed, requests));
    print!("{}", run.table.render());

    let vanilla = run.table.row("vanilla").expect("vanilla row");
    let static_ee = run.table.row("static-ee").expect("static-ee row");
    let apparate = run.table.row("apparate").expect("apparate row");
    let oracle = run.table.row("oracle").expect("oracle row");

    println!(
        "\nApparate released the median review in {:.2} ms against {:.2} ms for vanilla\n\
         serving — a {:.1}% median win inside the paper's 40–90% NLP band (Figure 13) —\n\
         while holding {:.1}% agreement with the full model (constraint: ≥99%).",
        apparate.summary.latency_ms.p50,
        vanilla.summary.latency_ms.p50,
        apparate.wins.p50,
        apparate.summary.accuracy * 100.0,
    );
    println!(
        "The fixed-threshold deployment (static-ee) manages {:.1}%: without threshold\n\
         re-tuning it cannot follow the per-category difficulty regimes, and the\n\
         hindsight oracle bounds what any policy could reach at {:.1}%.",
        static_ee.wins.p50, oracle.wins.p50,
    );

    // The §4.5 coordination bill: every adaptation decision above was made on
    // profiling records that crossed the GPU → controller link (up), and every
    // threshold change crossed back (down), each charged ~0.4 ms PCIe latency
    // plus per-KiB transfer time.
    let overhead = OverheadTable::new(vec![run.overhead]);
    println!();
    print!("{}", overhead.render());
    let row = &overhead.rows[0];
    println!(
        "\nThe controller paid {:.3} ms per message ({} uplink profiles, {} downlink\n\
         updates) — {:.1} ms of simulated coordination latency in total, none of it\n\
         on the serving path: the GPU streams profiles without blocking, and stale\n\
         thresholds simply stay in force until the next update lands.",
        overhead.mean_latency_ms(),
        row.report.uplink.messages,
        row.report.downlink.messages,
        row.report.total_latency().as_millis_f64(),
    );
}
