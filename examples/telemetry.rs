//! Telemetry: watching one Apparate run from the inside.
//!
//! Every other walkthrough reads the *ends* of a run — win tables, CDFs, the
//! coordination bill. This one records the *middle*: the NLP scenario (BERT
//! under MAF-like bursty arrivals, so the queue actually breathes) runs
//! once with a recording [`Telemetry`] sink attached to the serving platform,
//! the controller halves and both link directions, and the example then reads
//! the captured trace back — the first and last events, the per-kind counts,
//! a queue-depth sparkline — and finally replays the `ramp-set-changed`
//! events to prove the trace reconciles exactly with the controller's own
//! `active_sites()` state. Run with:
//!
//! ```text
//! cargo run --release --example telemetry
//! ```
//!
//! The same trace is available from the repro harness without writing any
//! code: `repro --quick --trace-out trace.jsonl --metrics-out metrics.jsonl`
//! (and `--chrome-out` for a chrome://tracing / Perfetto view).

use apparate::baselines::deploy_budget_sites;
use apparate::control::RampArchitecture;
use apparate::exec::SemanticsModel;
use apparate::experiments::{nlp_scenario, scenario_config, ApparatePolicy, TraceKind};
use apparate::serving::{ArrivalTrace, LatencySummary, ServingSimulator};
use apparate::sim::{DeterministicRng, SimDuration};
use apparate::telemetry::{EventKind, Telemetry, TelemetryConfig};
use std::collections::BTreeSet;

/// Render one gauge series as a unicode sparkline, resampled to `width`
/// columns (max value per column, so load spikes survive the resampling).
fn sparkline(points: &[(u64, f64)], width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if points.is_empty() {
        return String::new();
    }
    let t0 = points.first().expect("non-empty").0;
    let t1 = points.last().expect("non-empty").0.max(t0 + 1);
    let mut columns = vec![f64::NEG_INFINITY; width];
    for &(at, value) in points {
        let col = ((at - t0) as usize * (width - 1)) / (t1 - t0) as usize;
        columns[col] = columns[col].max(value);
    }
    let peak = columns.iter().cloned().fold(1.0_f64, f64::max);
    columns
        .iter()
        .map(|&v| {
            if v.is_finite() {
                LEVELS[((v / peak) * 7.0).round() as usize]
            } else {
                ' '
            }
        })
        .collect()
}

fn main() {
    let seed = 42;
    let requests = 2_000;
    // The MAF-like 2–4x bursts transiently overload the GPU, so the queue
    // depth series below has a shape worth plotting.
    let scenario = nlp_scenario(seed, requests);
    let config = scenario_config();
    println!("apparate telemetry — traced NLP run, seed {seed}, {requests} requests\n");

    // -- The fixture, derived exactly as the repro harness derives it -------
    // (same child streams, so arrivals and semantics draws match repro's).
    let semantics = SemanticsModel::new(
        DeterministicRng::new(seed).child(0x5E).seed(),
        scenario.model.descriptor.overparameterization,
    );
    let split = scenario.workload.bootstrap_split();
    let trace = match scenario.trace {
        TraceKind::FixedRate(hz) => ArrivalTrace::fixed_rate(split.serving.len(), hz),
        TraceKind::MafLike(hz) => ArrivalTrace::maf_like(
            split.serving.len(),
            hz,
            DeterministicRng::new(seed).child(0x7A).seed(),
        ),
    };
    let deployment = deploy_budget_sites(
        &scenario.model,
        &semantics,
        &config,
        RampArchitecture::Lightweight,
        split.train.len(),
    );
    let vanilla_plan = deployment.plan.with_ramps(Vec::new());

    // -- Attach the recording sink ------------------------------------------
    // One handle, cloned into the platform, the controller and both link
    // directions; all clones share one recorder. `Telemetry::disabled()` in
    // the same positions is the zero-cost no-op the untraced repro runs use.
    let telemetry = Telemetry::recording(TelemetryConfig::default());
    let mut policy = ApparatePolicy::warm_started(
        deployment.clone(),
        config,
        scenario.reference_batch,
        split.validation,
    );
    policy.set_telemetry(telemetry.clone());
    let initial_sites: Vec<usize> = policy.active_sites().to_vec();
    let sim = ServingSimulator::new(scenario.serving.clone()).with_telemetry(telemetry.clone());
    let estimate = |b: u32| {
        SimDuration::from_micros_f64(vanilla_plan.vanilla_total_us(b) * (1.0 + config.ramp_budget))
    };
    let uplink = policy.feedback_sender();
    let out = sim.run_with_feedback(&trace, split.serving, &mut policy, &estimate, Some(&uplink));

    let summary = LatencySummary::from_outcome("apparate", &out);
    println!(
        "served {} requests: p50 {:.2} ms, p99 {:.2} ms, {:.1}% accuracy\n",
        split.serving.len(),
        summary.latency_ms.p50,
        summary.latency_ms.p99,
        summary.accuracy * 100.0,
    );

    // -- Read the trace back ------------------------------------------------
    let snap = telemetry.snapshot().expect("recording handle snapshots");
    println!(
        "captured {} events ({} dropped), {} series, {} counters, {} histograms",
        snap.events.len(),
        snap.events_dropped,
        snap.series.len(),
        snap.counters.len(),
        snap.histograms.len(),
    );
    for kind in [
        "batch-formed",
        "link-message",
        "tuning-round",
        "ramp-set-changed",
        "update-issued",
        "update-delivered",
        "stale-record-dropped",
        "slo-violation",
    ] {
        println!("  {:>22}: {}", kind, snap.count_kind(kind));
    }

    println!("\nfirst three events (as `--trace-out` writes them):");
    for event in snap.events.iter().take(3) {
        println!("  {}", event.to_json_line());
    }
    println!("last three:");
    for event in snap.events.iter().rev().take(3).rev() {
        println!("  {}", event.to_json_line());
    }

    // -- Queue depth over the run -------------------------------------------
    let series = snap.series_named("queue_depth");
    let queue = series.first().expect("platform gauges queue depth");
    let peak = queue.points.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
    println!(
        "\nqueue depth over sim time ({} samples, peak {peak:.0}):",
        queue.points.len()
    );
    println!("  [{}]", sparkline(&queue.points, 64));

    // -- Reconcile the trace with the controller ----------------------------
    // Replaying the ramp-set-changed events over the warm-start active set
    // must land exactly on the controller's final `active_sites()` — the
    // trace is the controller's decision history, not an approximation of it.
    let mut replayed: BTreeSet<usize> = initial_sites.iter().copied().collect();
    let mut changes = 0usize;
    for event in &snap.events {
        if let EventKind::RampSetChanged {
            activated,
            deactivated,
            active_count,
        } = &event.kind
        {
            for site in deactivated {
                assert!(
                    replayed.remove(site),
                    "deactivated a ramp that was not active"
                );
            }
            for site in activated {
                assert!(replayed.insert(*site), "activated a ramp twice");
            }
            assert_eq!(
                *active_count,
                replayed.len(),
                "event's active_count must match the replayed set"
            );
            changes += 1;
        }
    }
    let final_sites: BTreeSet<usize> = policy.active_sites().iter().copied().collect();
    assert_eq!(
        replayed, final_sites,
        "replaying ramp-set-changed events must reproduce active_sites()"
    );
    assert_eq!(
        changes,
        policy.stats().ramp_changes,
        "one ramp-set-changed event per counted ramp change"
    );
    println!(
        "\nramp history reconciles: warm start {:?} + {} ramp-set-changed events\n\
         replay to the controller's final active_sites() {:?} — the trace *is*\n\
         the adaptation history ({} tuning rounds, {} updates shipped).",
        initial_sites,
        changes,
        policy.active_sites(),
        policy.stats().tuning_rounds,
        policy.stats().updates_sent,
    );
}
