//! Video analytics: the paper's CV scenario as a narrated walkthrough,
//! finishing with a 4-replica fleet.
//!
//! ResNet-50 classifies a synthetic night-time urban video stream — strong
//! frame-to-frame continuity punctuated by scene cuts and lighting changes,
//! which is exactly the regime where Apparate's continual threshold re-tuning
//! pays off (§4.2, Figure 5). The walkthrough prints the scenario
//! configuration, the paper-style win table, the latency CDFs behind it
//! (Figure 14 style), the §4.5 coordination bill, and then scales the same
//! scenario out to a 4-replica fleet serving the aggregate stream of six
//! cameras. Run with:
//!
//! ```text
//! cargo run --release --example video_analytics
//! ```
//!
//! For the full three-scenario comparison (CV + NLP + generative) use the
//! repro binary: `cargo run --release -p apparate-experiments --bin repro`.

use apparate::experiments::{
    cv_scenario, run_classification_fleet, run_classification_full, OverheadTable,
};
use apparate::serving::FleetDispatch;
use apparate::sim::Cdf;

fn main() {
    let seed = 42;
    let frames = 3_000;
    let scenario = cv_scenario(seed, frames);
    println!("apparate video analytics — CV scenario, seed {seed}, {frames} frames");

    // -- Scenario configuration -------------------------------------------
    let d = &scenario.model.descriptor;
    println!(
        "model: {} ({:.0}M params, {:.1} ms at batch 1) · workload: {}",
        d.name, d.params_millions, d.bs1_latency_ms, scenario.workload.name
    );
    println!(
        "arrivals: 30 fps fixed-rate video · SLO: {:.1} ms · batching: Clockwork-style, max 8",
        d.default_slo_ms
    );
    println!("knobs: ≤1% accuracy loss, ≤2% ramp budget (the paper's two user-facing knobs)\n");

    // -- The head-to-head comparison --------------------------------------
    let run = run_classification_full(&scenario);
    print!("{}", run.table.render());

    let vanilla = run.table.row("vanilla").expect("vanilla row");
    let apparate = run.table.row("apparate").expect("apparate row");
    let oracle = run.table.row("oracle").expect("oracle row");
    println!(
        "\nApparate released the median frame in {:.2} ms against {:.2} ms for vanilla\n\
         serving — a {:.1}% median win (the paper's CV band, Figure 12) at {:.1}%\n\
         agreement with the full model; the hindsight oracle bounds the scenario at {:.1}%.",
        apparate.summary.latency_ms.p50,
        vanilla.summary.latency_ms.p50,
        apparate.wins.p50,
        apparate.summary.accuracy * 100.0,
        oracle.wins.p50,
    );

    // -- The latency CDFs behind the table (Figure 14 style) ---------------
    println!("\nlatency CDF (ms at each percentile):");
    println!(
        "{:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "policy", "p10", "p25", "p50", "p75", "p90", "p99"
    );
    let dump = |label: &str, cdf: &Cdf| {
        println!(
            "{:>12} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            label,
            cdf.value_at(0.10),
            cdf.value_at(0.25),
            cdf.value_at(0.50),
            cdf.value_at(0.75),
            cdf.value_at(0.90),
            cdf.value_at(0.99),
        );
    };
    dump("vanilla", &run.cdfs.vanilla);
    dump("apparate", &run.cdfs.apparate);
    println!(
        "easy frames (the bulk of a continuous scene) exit at shallow ramps and pull the\n\
         whole left side of the CDF down; hard frames after scene cuts ride to deeper\n\
         ramps or the full model, which is why the two curves converge at the tail."
    );

    // -- The §4.5 coordination bill ----------------------------------------
    let overhead = OverheadTable::new(vec![run.overhead]);
    println!();
    print!("{}", overhead.render());
    println!(
        "every adaptation decision above crossed the GPU → controller link as a profiling\n\
         record and came back as a threshold update, at ~{:.2} ms per message — none of it\n\
         on the serving path.",
        overhead.mean_latency_ms(),
    );

    // -- Scale-out: a 4-replica fleet --------------------------------------
    // Six cameras' aggregate stream (180 fps) overwhelms one replica; a
    // 4-replica fleet behind a least-loaded dispatcher is comfortably
    // provisioned. Each replica runs its own GPU-half/controller-half pair
    // over its own charged link.
    let fleet_scenario = cv_scenario(seed, frames).with_arrival_scale(6.0);
    let fleet = run_classification_fleet(&fleet_scenario, 4, FleetDispatch::LeastLoaded);
    println!();
    print!("{}", fleet.table.render());
    let fa = fleet.apparate();
    let min = fleet.shard_sizes.iter().min().expect("4 shards");
    let max = fleet.shard_sizes.iter().max().expect("4 shards");
    println!(
        "\nthe dispatcher spread {} frames across 4 replicas ({}–{} each); the fleet holds\n\
         the single-replica win at {:.1}% median while serving 6× the traffic, with the\n\
         coordination bill split across four independent links ({} uplink messages\n\
         fleet-wide — each replica's controller consumes only its own profiling stream).",
        fleet.shard_sizes.iter().sum::<usize>(),
        min,
        max,
        fa.wins.p50,
        fleet.overhead.report.uplink.messages,
    );
}
