//! Generative LLM serving: the paper's token-level policy as a narrated
//! walkthrough, with a live threshold-adaptation trace.
//!
//! Llama2-7B summarises CNN/DailyMail-style articles under continuous
//! batching near GPU saturation (§4.3). Early exits happen *per token*: a
//! ramp that is confident about the next token releases it immediately while
//! the remaining layers keep decoding in parallel (§3.4), so the metric is
//! the time-per-token (TPT) distribution. The walkthrough wires the token
//! controller up explicitly — decode-step profiling records streaming over
//! the charged GPU → controller uplink, threshold updates riding back on the
//! downlink — and prints what the controller actually did over time, then
//! the paper-style TPT comparison. Run with:
//!
//! ```text
//! cargo run --release --example generative_llm
//! ```
//!
//! For the full three-scenario comparison (CV + NLP + generative) use the
//! repro binary: `cargo run --release -p apparate-experiments --bin repro`.

use apparate::baselines::deploy_budget_sites;
use apparate::control::RampArchitecture;
use apparate::exec::SemanticsModel;
use apparate::experiments::{
    generative_calibration, generative_requests, generative_scenario, run_generative_full,
    scenario_config, ApparateTokenPolicy, OverheadTable, WorkloadTokens,
};
use apparate::serving::{GenerativeSimulator, StepOutcome, TokenPolicy, TokenSlot};
use apparate::sim::{DeterministicRng, SimTime};

/// One row of the adaptation trace.
struct TraceRow {
    step: usize,
    at: SimTime,
    thresholds: Vec<f64>,
    deployed_ramps: usize,
    ingested: usize,
    tuning_rounds: usize,
    ramp_changes: usize,
}

/// Wraps the token controller and snapshots its GPU-side configuration after
/// every decode step, recording a row whenever it changes (i.e. whenever a
/// downlink update has landed) — thresholds *and* the active ramp set, now
/// that the token controller runs the full Algorithm 2 loop.
struct TracingPolicy {
    inner: ApparateTokenPolicy,
    step: usize,
    rows: Vec<TraceRow>,
    last: (usize, Vec<f64>),
}

impl TracingPolicy {
    /// Keep a row whenever a landed downlink update changed the GPU-side
    /// ramp set or thresholds, plus a heartbeat row every 512 steps (re-tunes
    /// that land identical thresholds are otherwise invisible).
    fn record(&mut self, at: SimTime) {
        let current = (
            self.inner.deployed_ramps(),
            self.inner.thresholds().to_vec(),
        );
        let heartbeat = self
            .rows
            .last()
            .map(|row| self.step - row.step >= 512)
            .unwrap_or(true);
        if heartbeat || current != self.last {
            let stats = self.inner.stats();
            self.rows.push(TraceRow {
                step: self.step,
                at,
                deployed_ramps: current.0,
                thresholds: current.1.clone(),
                ingested: stats.records_ingested,
                tuning_rounds: stats.tuning_rounds,
                ramp_changes: stats.ramp_changes,
            });
            self.last = current;
        }
    }
}

impl TokenPolicy for TracingPolicy {
    fn process_step(&mut self, slots: &[TokenSlot], step_start: SimTime) -> StepOutcome {
        let out = self.inner.process_step(slots, step_start);
        self.step += 1;
        self.record(step_start);
        out
    }

    fn name(&self) -> &str {
        "apparate"
    }
}

fn main() {
    let seed = 42;
    let requests = 60;
    let scenario = generative_scenario(seed, requests);
    println!("apparate generative LLM — summarisation scenario, seed {seed}, {requests} requests");
    let d = &scenario.model.descriptor;
    println!(
        "model: {} ({:.0}M params) · task: {} · arrivals: Poisson {:.1} rps",
        d.name,
        d.params_millions,
        scenario.workload.task.dataset_name(),
        scenario.arrival_rate,
    );
    println!(
        "serving: continuous batching (max {} sequences per decode step), §3.4 parallel\n\
         decoding — exited tokens release early while the full pass continues\n",
        scenario.batching.max_batch_size,
    );

    // -- Wire the token controller up explicitly ---------------------------
    let config = scenario_config();
    let semantics = SemanticsModel::new(
        DeterministicRng::new(seed).child(0x5E).seed(),
        d.overparameterization,
    );
    // Generative ramps reuse the decoder head, so no bootstrap training set
    // is needed (§3.1); calibration tokens come from the first 10 % of
    // sequences decoded in hindsight.
    let deployment = deploy_budget_sites(
        &scenario.model,
        &semantics,
        &config,
        RampArchitecture::Lightweight,
        0,
    );
    let calibration = generative_calibration(&scenario.workload);
    println!(
        "deployment: {} ramps within the 2% budget, thresholds warm-started on {} calibration tokens",
        deployment.plan.num_ramps(),
        calibration.len(),
    );

    let reqs = generative_requests(&scenario);
    let inner = ApparateTokenPolicy::warm_started(
        deployment,
        config,
        scenario.reference_batch,
        &calibration,
    );
    let uplink = inner.feedback_sender();
    let mut policy = TracingPolicy {
        inner,
        step: 0,
        rows: Vec::new(),
        last: (0, Vec::new()),
    };
    let sim = GenerativeSimulator::new(scenario.batching);
    let tokens = WorkloadTokens(&scenario.workload);
    let out = sim.run_with_feedback(&reqs, &tokens, &mut policy, Some(&uplink));

    // -- The adaptation trace ----------------------------------------------
    println!(
        "\nadaptation trace (a row per changed GPU-side configuration — ramp set or\n\
         thresholds — heartbeat every 512 decode steps):"
    );
    println!(
        "{:>6} {:>10} {:>8} {:>6} {:>7} {:>6}  GPU-side thresholds per ramp",
        "step", "t (s)", "records", "tunes", "adjust", "ramps"
    );
    for row in &policy.rows {
        let thresholds = row
            .thresholds
            .iter()
            .map(|t| format!("{t:.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:>6} {:>10.2} {:>8} {:>6} {:>7} {:>6}  [{}]",
            row.step,
            row.at.as_secs_f64(),
            row.ingested,
            row.tuning_rounds,
            row.ramp_changes,
            row.deployed_ramps,
            thresholds,
        );
    }
    let stats = policy.inner.stats();
    println!(
        "\nthe controller ingested {} decode-step profiling records off the uplink, ran\n\
         {} threshold-tuning rounds and {} Algorithm 2 adjustment rounds ({} of which\n\
         changed the active ramp set — activating/deactivating decoder-depth ramps by\n\
         hindsight savings vs. overhead, dropping {} stale-epoch records), and shipped\n\
         {} updates down to the GPU — each taking effect only after its downlink\n\
         delivery. {} of {} tokens exit early.",
        stats.records_ingested,
        stats.tuning_rounds,
        stats.adjustment_rounds,
        stats.ramp_changes,
        stats.records_dropped,
        stats.updates_sent,
        out.tokens.iter().filter(|t| t.exit_ramp.is_some()).count(),
        out.tokens.len(),
    );
    assert!(
        stats.ramp_changes >= 1,
        "the generative walkthrough must show at least one runtime ramp-set change"
    );

    // -- The paper-style comparison ----------------------------------------
    let run = run_generative_full(&scenario);
    println!();
    print!("{}", run.table.render());
    let vanilla = run.table.row("vanilla").expect("vanilla row");
    let apparate = run.table.row("apparate").expect("apparate row");
    println!(
        "\nApparate's median TPT of {:.2} ms/token against vanilla's {:.2} ms/token is a\n\
         {:.1}% win (Figure 15) at {:.1}% token-level agreement; p10/p90 TPT: apparate\n\
         {:.2}/{:.2} ms vs vanilla {:.2}/{:.2} ms.",
        apparate.summary.latency_ms.p50,
        vanilla.summary.latency_ms.p50,
        apparate.wins.p50,
        apparate.summary.accuracy * 100.0,
        run.cdfs.apparate.value_at(0.10),
        run.cdfs.apparate.value_at(0.90),
        run.cdfs.vanilla.value_at(0.10),
        run.cdfs.vanilla.value_at(0.90),
    );
    let overhead = OverheadTable::new(vec![run.overhead]);
    println!();
    print!("{}", overhead.render());
    println!(
        "at token granularity the profiling stream is much denser than in classification\n\
         (one record per decode step), but each record is small — the bill stays at\n\
         ~{:.2} ms per message, off the decode path.",
        overhead.mean_latency_ms(),
    );
}
