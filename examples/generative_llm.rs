//! Placeholder example — see ROADMAP.md "Open items".
//!
//! The end-to-end flow this example will demonstrate already runs today via
//! the repro harness: `cargo run --release -p apparate-experiments --bin repro`.

fn main() {
    println!("not yet implemented; run the repro binary instead:");
    println!("  cargo run --release -p apparate-experiments --bin repro");
}
