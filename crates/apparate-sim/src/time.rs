//! Virtual time for the discrete-event simulation.
//!
//! All latencies in the reproduction are expressed in integer microseconds.
//! The paper's SLOs span roughly 10–200 ms (Table 5) and its controller
//! overheads are fractions of a millisecond, so microsecond resolution keeps
//! every quantity exactly representable while avoiding floating-point drift in
//! the event queue.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct a duration from fractional milliseconds (rounded to the
    /// nearest microsecond, saturating at zero for negative inputs).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Construct a duration from fractional microseconds (rounded, saturated).
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration(us.max(0.0).round() as u64)
    }

    /// Construct a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale the duration by a non-negative floating-point factor.
    pub fn scale(self, factor: f64) -> SimDuration {
        SimDuration::from_micros_f64(self.0 as f64 * factor.max(0.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_millis_f64(), 3.0);
        assert!((SimDuration::from_millis_f64(1.5).as_micros() as i64 - 1500).abs() <= 1);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!((t + d).as_micros(), 14_000);
        assert_eq!((t - d).as_micros(), 6_000);
        assert_eq!(((t + d) - t).as_micros(), 4_000);
        assert_eq!((d * 3).as_micros(), 12_000);
        assert_eq!((d / 2).as_micros(), 2_000);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!((early - late).as_micros(), 0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_millis(1)));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn scale_rounds_and_saturates() {
        let d = SimDuration::from_micros(1000);
        assert_eq!(d.scale(0.5).as_micros(), 500);
        assert_eq!(d.scale(-1.0).as_micros(), 0);
        assert_eq!(d.scale(2.25).as_micros(), 2250);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_micros(), 10_000);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", SimTime::from_millis(2)), "2.000ms");
    }
}
