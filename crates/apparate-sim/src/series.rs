//! Time-series recording and chunked aggregation.
//!
//! Apparate's adaptation loops reason about fixed-size windows of requests: a
//! 16-sample accuracy window for threshold tuning and 128-sample periods for
//! ramp adjustment, while the paper's workload analysis uses 64-request chunks
//! (Figure 5, Table 1). [`ChunkSeries`] provides exactly that view, and
//! [`TimeSeries`] records `(time, value)` pairs for latency-over-time plots.

use crate::stats::{OnlineStats, Percentiles};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A `(time, value)` series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a point. Times should be non-decreasing; this is not enforced,
    /// but aggregation assumes it.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Just the values, in recording order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|(_, v)| *v).collect()
    }

    /// Percentile summary of the values.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles::from_samples(&self.values())
    }

    /// Mean of the values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

/// Aggregates a stream of scalar observations into fixed-size chunks.
///
/// Each completed chunk exposes its [`OnlineStats`]; the partially filled tail
/// chunk is reported separately.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChunkSeries {
    chunk_size: usize,
    completed: Vec<OnlineStats>,
    current: OnlineStats,
    current_len: usize,
}

impl ChunkSeries {
    /// Create a series that aggregates every `chunk_size` observations.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunkSeries {
            chunk_size,
            completed: Vec::new(),
            current: OnlineStats::new(),
            current_len: 0,
        }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Record one observation.
    pub fn push(&mut self, value: f64) {
        self.current.push(value);
        self.current_len += 1;
        if self.current_len == self.chunk_size {
            let full = std::mem::replace(&mut self.current, OnlineStats::new());
            self.completed.push(full);
            self.current_len = 0;
        }
    }

    /// Statistics of every completed chunk, in order.
    pub fn completed_chunks(&self) -> &[OnlineStats] {
        &self.completed
    }

    /// Statistics of the partially filled tail chunk, if non-empty.
    pub fn partial_chunk(&self) -> Option<&OnlineStats> {
        (self.current_len > 0).then_some(&self.current)
    }

    /// Per-chunk means, completed chunks only.
    pub fn chunk_means(&self) -> Vec<f64> {
        self.completed.iter().map(|s| s.mean()).collect()
    }

    /// Total observations pushed so far.
    pub fn total_count(&self) -> usize {
        self.completed.len() * self.chunk_size + self.current_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_records_and_summarises() {
        let mut ts = TimeSeries::new();
        for i in 0..10u64 {
            ts.push(SimTime::from_millis(i), i as f64);
        }
        assert_eq!(ts.len(), 10);
        assert!((ts.mean() - 4.5).abs() < 1e-12);
        assert!((ts.percentiles().p50 - 4.5).abs() < 1e-12);
        assert_eq!(ts.values().len(), 10);
    }

    #[test]
    fn empty_time_series_is_safe() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.percentiles().count, 0);
    }

    #[test]
    fn chunk_series_splits_on_boundary() {
        let mut cs = ChunkSeries::new(4);
        for i in 0..10 {
            cs.push(i as f64);
        }
        assert_eq!(cs.completed_chunks().len(), 2);
        assert_eq!(cs.total_count(), 10);
        let means = cs.chunk_means();
        assert!((means[0] - 1.5).abs() < 1e-12);
        assert!((means[1] - 5.5).abs() < 1e-12);
        let partial = cs.partial_chunk().expect("partial chunk exists");
        assert_eq!(partial.count(), 2);
    }

    #[test]
    fn chunk_series_exact_multiple_has_no_partial() {
        let mut cs = ChunkSeries::new(2);
        cs.push(1.0);
        cs.push(3.0);
        assert_eq!(cs.completed_chunks().len(), 1);
        assert!(cs.partial_chunk().is_none());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = ChunkSeries::new(0);
    }
}
