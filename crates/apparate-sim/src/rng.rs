//! Deterministic, splittable random-number streams.
//!
//! The ramp-semantics model (in `apparate-exec`) needs a crucial property: the
//! entropy/agreement draw for *(request r, ramp position p)* must be the same
//! no matter which ramps happen to be active, how often the pair is evaluated,
//! or in which order requests are replayed. Otherwise the offline-optimal
//! oracle, the candidate-ramp utility estimates (Figure 11) and the threshold
//! tuner's counterfactual evaluations would all observe different "model
//! behaviour" than the live system did.
//!
//! We achieve this with hash-derived streams: a [`DeterministicRng`] carries a
//! 64-bit seed, and [`DeterministicRng::stream`] derives an independent
//! ChaCha8-based [`RngStream`] from `(seed, key...)` via the SplitMix64 finaliser.
//! Two streams derived from the same keys are bit-identical.

use rand::distributions::Open01;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finaliser; an excellent 64-bit mixer used to derive stream keys.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A root deterministic RNG from which independent named streams are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicRng {
    seed: u64,
}

impl DeterministicRng {
    /// Create a root RNG with the given seed.
    pub fn new(seed: u64) -> Self {
        DeterministicRng { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive a child root, useful to give each subsystem its own namespace.
    pub fn child(&self, key: u64) -> DeterministicRng {
        DeterministicRng {
            seed: splitmix64(self.seed ^ splitmix64(key)),
        }
    }

    /// Derive an independent stream keyed by up to three integers
    /// (e.g. request id, ramp position, draw kind).
    pub fn stream(&self, keys: &[u64]) -> RngStream {
        let mut state = splitmix64(self.seed);
        for (i, k) in keys.iter().enumerate() {
            state = splitmix64(state ^ splitmix64(k.wrapping_add(i as u64 + 1)));
        }
        RngStream::from_state(state)
    }

    /// A single deterministic uniform draw in `(0, 1)` for the given keys.
    ///
    /// This is the workhorse of the semantics model: cheap, reproducible and
    /// order-independent.
    pub fn unit_draw(&self, keys: &[u64]) -> f64 {
        let mut state = splitmix64(self.seed);
        for (i, k) in keys.iter().enumerate() {
            state = splitmix64(state ^ splitmix64(k.wrapping_add(i as u64 + 1)));
        }
        // Map the top 53 bits onto (0, 1); add half an ulp so we never return 0.
        let mantissa = state >> 11;
        (mantissa as f64 + 0.5) / ((1u64 << 53) as f64)
    }

    /// A deterministic standard-normal draw for the given keys
    /// (Box–Muller over two decorrelated unit draws).
    pub fn normal_draw(&self, keys: &[u64]) -> f64 {
        let u1 = self.unit_draw(keys);
        let mut keys2: Vec<u64> = keys.to_vec();
        keys2.push(0xA5A5_5A5A_0F0F_F0F0);
        let u2 = self.unit_draw(&keys2);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// A sequential random stream (ChaCha8) derived from a [`DeterministicRng`].
#[derive(Debug, Clone)]
pub struct RngStream {
    inner: ChaCha8Rng,
}

impl RngStream {
    fn from_state(state: u64) -> Self {
        let mut seed = [0u8; 32];
        let mut s = state;
        for chunk in seed.chunks_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        RngStream {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    /// Uniform draw in `(0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.sample(Open01)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below() requires a positive bound");
        self.inner.gen_range(0..n)
    }

    /// Standard normal draw.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential draw with the given rate (events per unit time).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "exponential() requires a positive rate");
        -self.unit().ln() / rate
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Sample an index according to the (unnormalised, non-negative) weights.
    /// Returns 0 if all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 || weights.is_empty() {
            return 0;
        }
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w.max(0.0);
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let root = DeterministicRng::new(42);
        let mut a = root.stream(&[1, 2, 3]);
        let mut b = root.stream(&[1, 2, 3]);
        for _ in 0..32 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_keys_give_different_streams() {
        let root = DeterministicRng::new(42);
        let mut a = root.stream(&[1]);
        let mut b = root.stream(&[2]);
        let same = (0..16)
            .filter(|_| a.unit().to_bits() == b.unit().to_bits())
            .count();
        assert!(same < 4, "streams with different keys should diverge");
    }

    #[test]
    fn unit_draw_is_order_independent_and_in_range() {
        let root = DeterministicRng::new(7);
        let x1 = root.unit_draw(&[10, 20]);
        let _ = root.unit_draw(&[99, 1]);
        let x2 = root.unit_draw(&[10, 20]);
        assert_eq!(x1.to_bits(), x2.to_bits());
        assert!(x1 > 0.0 && x1 < 1.0);
    }

    #[test]
    fn unit_draw_is_roughly_uniform() {
        let root = DeterministicRng::new(123);
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|i| root.unit_draw(&[i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_draw_has_reasonable_moments() {
        let root = DeterministicRng::new(5);
        let n = 20_000u64;
        let draws: Vec<f64> = (0..n).map(|i| root.normal_draw(&[i])).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn child_rngs_are_decoupled() {
        let root = DeterministicRng::new(1);
        let a = root.child(10).unit_draw(&[0]);
        let b = root.child(11).unit_draw(&[0]);
        assert_ne!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn stream_distributions_behave() {
        let root = DeterministicRng::new(9);
        let mut s = root.stream(&[0]);
        for _ in 0..100 {
            let u = s.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&u));
            let e = s.exponential(0.5);
            assert!(e >= 0.0);
            let i = s.below(7);
            assert!(i < 7);
        }
        let mut hits = 0;
        for _ in 0..1000 {
            if s.chance(0.3) {
                hits += 1;
            }
        }
        assert!((200..400).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let root = DeterministicRng::new(11);
        let mut s = root.stream(&[3]);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[s.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 2, "counts {counts:?}");
        // Degenerate case: all-zero weights fall back to index 0.
        assert_eq!(s.weighted_index(&[0.0, 0.0]), 0);
    }
}
