//! Statistics helpers used throughout the metric pipeline.
//!
//! The paper reports latency distributions as percentiles (P25/P50/P95) and
//! CDFs (Figures 2, 4, 14, 16), plus average accuracies and latency "wins"
//! (relative savings). This module provides the small set of numerically
//! careful primitives those reports need.

use serde::{Deserialize, Serialize};

/// Online mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A snapshot of the standard percentiles reported by the paper.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Percentiles {
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl Percentiles {
    /// Compute percentiles from a set of samples (need not be sorted).
    /// Returns all-zero percentiles for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Percentiles {
            p25: quantile_sorted(&sorted, 0.25),
            p50: quantile_sorted(&sorted, 0.50),
            p75: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            mean,
            max: *sorted.last().expect("non-empty"),
            count: sorted.len(),
        }
    }
}

/// Linear-interpolation quantile of an already-sorted slice, `q` in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of an unsorted slice.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    quantile_sorted(&sorted, q)
}

/// An empirical CDF, reported as `(value, cumulative fraction)` points.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Build an empirical CDF from samples.
    pub fn from_samples(samples: &[f64]) -> Cdf {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len();
        let points = sorted
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
            .collect();
        Cdf { points }
    }

    /// The raw `(value, fraction)` points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Fraction of samples `<= value`.
    pub fn fraction_at(&self, value: f64) -> f64 {
        match self
            .points
            .binary_search_by(|(v, _)| v.partial_cmp(&value).expect("NaN sample"))
        {
            Ok(mut idx) => {
                // Step to the last equal value.
                while idx + 1 < self.points.len() && self.points[idx + 1].0 <= value {
                    idx += 1;
                }
                self.points[idx].1
            }
            Err(0) => 0.0,
            Err(idx) => self.points[idx - 1].1,
        }
    }

    /// The value at a given cumulative fraction (inverse CDF).
    pub fn value_at(&self, fraction: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let values: Vec<f64> = self.points.iter().map(|(v, _)| *v).collect();
        quantile_sorted(&values, fraction)
    }

    /// Downsample to at most `n` evenly spaced points (for compact reports).
    pub fn downsample(&self, n: usize) -> Cdf {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        let points = (0..n)
            .map(|i| self.points[(i as f64 * step).round() as usize])
            .collect();
        Cdf { points }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if built from no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A fixed-width histogram over `[lo, hi)` with an overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    overflow: u64,
    underflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `n` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Histogram {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(n > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            overflow: 0,
            underflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts, excluding under/overflow.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// The bucket index containing the most observations.
    pub fn mode_bucket(&self) -> usize {
        self.buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Relative improvement of `new` over `baseline`, as a percentage.
///
/// Positive values mean `new` is smaller (better, for latencies). This is the
/// "latency wins vs. vanilla (%)" quantity used throughout §4.
pub fn percent_improvement(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (baseline - new) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..40] {
            left.push(x);
        }
        for &x in &xs[40..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::from_samples(&samples);
        assert!((p.p50 - 50.5).abs() < 1e-9);
        assert!((p.p25 - 25.75).abs() < 1e-9);
        assert!((p.p95 - 95.05).abs() < 1e-9);
        assert_eq!(p.max, 100.0);
        assert_eq!(p.count, 100);
    }

    #[test]
    fn percentiles_handle_edge_cases() {
        assert_eq!(Percentiles::from_samples(&[]).count, 0);
        let single = Percentiles::from_samples(&[3.0]);
        assert_eq!(single.p50, 3.0);
        assert_eq!(single.p95, 3.0);
    }

    #[test]
    fn cdf_round_trips() {
        let samples: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let cdf = Cdf::from_samples(&samples);
        assert_eq!(cdf.len(), 10);
        assert!((cdf.fraction_at(5.0) - 0.5).abs() < 1e-9);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(100.0), 1.0);
        assert!((cdf.value_at(0.5) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_downsample_keeps_endpoints() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let cdf = Cdf::from_samples(&samples).downsample(11);
        assert_eq!(cdf.len(), 11);
        assert_eq!(cdf.points()[0].0, 0.0);
        assert_eq!(cdf.points()[10].0, 999.0);
    }

    #[test]
    fn histogram_counts_land_in_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(42.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert!(h.buckets().iter().all(|&c| c == 1));
    }

    #[test]
    fn histogram_mode() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for _ in 0..5 {
            h.record(1.5);
        }
        h.record(0.5);
        assert_eq!(h.mode_bucket(), 1);
    }

    #[test]
    fn percent_improvement_signs() {
        assert!((percent_improvement(10.0, 5.0) - 50.0).abs() < 1e-9);
        assert!((percent_improvement(10.0, 12.0) + 20.0).abs() < 1e-9);
        assert_eq!(percent_improvement(0.0, 5.0), 0.0);
    }
}
