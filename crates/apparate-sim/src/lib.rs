//! Simulation kernel for the Apparate reproduction.
//!
//! This crate provides the domain-agnostic building blocks that every other
//! crate in the workspace builds on:
//!
//! * [`time`] — integer-microsecond virtual time ([`SimTime`], [`SimDuration`]).
//! * [`rng`] — deterministic, *splittable* random-number streams so that a
//!   per-request, per-ramp draw is identical no matter in which order (or how
//!   often) it is evaluated. This property is essential for the oracle
//!   baselines and for evaluating candidate ramps that were never active.
//! * [`events`] — a binary-heap discrete-event queue used by the serving
//!   simulator.
//! * [`stats`] — percentiles, CDFs, histograms and online moments used by the
//!   metric pipeline and the experiment harness.
//! * [`series`] — time-series recording with fixed-size chunk aggregation
//!   (the paper reasons about workloads in 64-request chunks, e.g. Figure 5).
//!
//! Nothing in this crate knows about models, ramps or serving; it is the
//! "operating system" layer of the simulation — the layer that makes every
//! paper figure reproducible bit-for-bit from a seed rather than tied to a
//! section of its own.
//!
//! Entry points: [`SimTime`]/[`SimDuration`] for virtual time,
//! [`DeterministicRng`] for splittable seeding, [`Percentiles`]/[`Cdf`] for
//! the metric pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use events::{EventQueue, ScheduledEvent};
pub use rng::{DeterministicRng, RngStream};
pub use series::{ChunkSeries, TimeSeries};
pub use stats::{Cdf, Histogram, OnlineStats, Percentiles};
pub use time::{SimDuration, SimTime};
