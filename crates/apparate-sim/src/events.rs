//! A minimal discrete-event queue.
//!
//! The serving simulator (in `apparate-serving`) advances virtual time by
//! popping the earliest scheduled event. Ties are broken by insertion order so
//! that simulations are fully deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in virtual time, carrying a payload `E`.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number used to break ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current time; this can happen
    /// when a zero-latency reaction is scheduled while processing an event.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let at = if at < self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "c");
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(2);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn time_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(4), ());
        q.schedule(SimTime::from_millis(2), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(q.now(), t1);
        // Scheduling in the past clamps to `now`.
        q.schedule(SimTime::from_millis(1), ());
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, t1);
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, SimTime::from_millis(4));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_millis(7), 42);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}
