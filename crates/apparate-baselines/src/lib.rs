//! placeholder
