//! Comparison policies for the Apparate reproduction.
//!
//! The paper's headline claims are *comparative*: Apparate's adaptive
//! controller versus serving without early exits and versus prior static
//! early-exit schemes (§2.2, §4.2–4.4). This crate provides those comparison
//! points as first-class [`ExitPolicy`](apparate_serving::ExitPolicy) /
//! [`TokenPolicy`](apparate_serving::TokenPolicy) implementations:
//!
//! * **vanilla** — no ramps, the original model only (via
//!   [`apparate_serving::VanillaPolicy`]; [`classification::vanilla_policy`]
//!   builds it from an execution plan).
//! * **static-ee** — fixed ramps at Apparate's budgeted initial placement with
//!   a fixed, hand-picked threshold; never adapts (the classic
//!   BranchyNet/DeeBERT deployment mode, [`classification::StaticExitPolicy`]).
//! * **uniform-ee** — a ramp at *every* feasible site with the same fixed
//!   threshold; shows what ignoring the ramp budget costs
//!   ([`prep::deploy_all_sites`] + [`classification::StaticExitPolicy`]).
//! * **oneshot-tuned** — thresholds tuned once, offline, on the bootstrap
//!   validation split with Apparate's own greedy tuner, then frozen
//!   ([`classification::offline_tuned_thresholds`]).
//! * **oracle** — the deterministic hindsight optimal of §2.2: every input
//!   exits at the earliest site whose ramp agrees with the full model, with
//!   zero ramp overhead ([`classification::OracleExitPolicy`]). Because ramp
//!   observations are pure functions of the splittable RNG in
//!   `apparate-sim::rng`, the oracle sees *exactly* what any live policy would
//!   have seen, making it a true latency lower bound at full accuracy.
//!
//! [`generative`] mirrors the same family for token-level early exits in the
//! continuous-batching decode loop.
//!
//! Entry points: [`prep::deploy_budget_sites`] / [`prep::deploy_all_sites`]
//! to prepare a ramp deployment, then any of the policy constructors above;
//! the comparison harness in `apparate-experiments` wires them all together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classification;
pub mod generative;
mod oracle;
pub mod prep;

pub use classification::{
    batch_time_fn, exit_outcome, offline_tuned_thresholds, per_ramp_savings_us, vanilla_policy,
    OracleExitPolicy, StaticExitPolicy,
};
pub use generative::{
    step_gpu_time, step_time_fn, OracleTokenPolicy, StaticTokenPolicy, TokenOutcomes,
};
pub use prep::{deploy_all_sites, deploy_budget_sites, RampDeployment};
