//! Generative (token-level) baselines: the [`TokenPolicy`] family.
//!
//! Token early exits mirror the classification story (§3.4): a decode step
//! evaluates every active sequence, a token's result is released at the first
//! ramp whose entropy clears its threshold, and the remaining layers are
//! parallel-decoded so the KV state stays correct — which is why the step
//! still occupies the GPU for the full decoder pass. Vanilla generative
//! serving is provided by [`apparate_serving::VanillaTokenPolicy`].

use apparate_exec::{BatchExecution, ExecutionPlan, SampleSemantics};
use apparate_model::LayerId;
use apparate_serving::{StepOutcome, TokenOutcome, TokenPolicy, TokenSlot};
use apparate_sim::{SimDuration, SimTime};

/// A batch-size → decode-step-time estimator for a plan (full decoder pass
/// plus active-ramp overheads).
pub fn step_time_fn(plan: &ExecutionPlan) -> impl Fn(u32) -> SimDuration + '_ {
    |batch| SimDuration::from_micros_f64(plan.gpu_batch_time_us(batch))
}

/// Fixed-ramp, fixed-threshold token-level early exits — the FREE-style
/// static configuration for generative serving.
pub struct StaticTokenPolicy {
    plan: ExecutionPlan,
    thresholds: Vec<f64>,
    name: String,
}

impl StaticTokenPolicy {
    /// Create a static token policy; one threshold per active ramp of `plan`.
    pub fn new(
        plan: ExecutionPlan,
        thresholds: Vec<f64>,
        name: impl Into<String>,
    ) -> StaticTokenPolicy {
        assert_eq!(
            thresholds.len(),
            plan.num_ramps(),
            "one threshold per active ramp"
        );
        StaticTokenPolicy {
            plan,
            thresholds,
            name: name.into(),
        }
    }

    /// Same threshold on every ramp.
    pub fn uniform(
        plan: ExecutionPlan,
        threshold: f64,
        name: impl Into<String>,
    ) -> StaticTokenPolicy {
        let thresholds = vec![threshold; plan.num_ramps()];
        StaticTokenPolicy::new(plan, thresholds, name)
    }

    /// The underlying plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }
}

impl TokenPolicy for StaticTokenPolicy {
    fn process_step(&mut self, slots: &[TokenSlot], _step_start: SimTime) -> StepOutcome {
        let samples: Vec<SampleSemantics> = slots.iter().map(|s| s.semantics).collect();
        let exec = self.plan.execute_batch(&samples);
        let b = slots.len() as u32;
        let per_token: Vec<TokenOutcome> = exec
            .per_token_outcomes(&self.plan, &self.thresholds, b)
            .collect();
        StepOutcome {
            gpu_time: step_gpu_time(&per_token),
            per_token,
            profile: None,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Decode-step GPU time under token-level early exits: the step advances once
/// its slowest token has released (§3.4's parallel decoding lets the
/// non-exited suffix layers — needed only to materialise KV state — overlap
/// the following steps, so they do not gate the next token). A token that
/// never exits releases at the full decoder pass, so a single hard token
/// still holds the step for the whole model.
pub fn step_gpu_time(per_token: &[TokenOutcome]) -> SimDuration {
    per_token
        .iter()
        .map(|t| t.release_offset)
        .fold(SimDuration::ZERO, SimDuration::max)
}

/// Helper extension: map batch observations to token outcomes under a
/// threshold vector. Kept as a trait-style helper so the adaptive policy in
/// `apparate-experiments` shares the exact release rule.
pub trait TokenOutcomes {
    /// Outcomes for each token of the step, in slot order.
    fn per_token_outcomes<'a>(
        &'a self,
        plan: &'a ExecutionPlan,
        thresholds: &'a [f64],
        batch: u32,
    ) -> Box<dyn Iterator<Item = TokenOutcome> + 'a>;
}

impl TokenOutcomes for BatchExecution {
    fn per_token_outcomes<'a>(
        &'a self,
        plan: &'a ExecutionPlan,
        thresholds: &'a [f64],
        batch: u32,
    ) -> Box<dyn Iterator<Item = TokenOutcome> + 'a> {
        let final_off = SimDuration::from_micros_f64(plan.final_offset_us(batch));
        Box::new(self.per_request.iter().map(move |obs| {
            match BatchExecution::earliest_exit(obs, thresholds) {
                Some(ramp) => TokenOutcome {
                    release_offset: SimDuration::from_micros_f64(plan.ramp_offset_us(ramp, batch)),
                    exit_ramp: Some(ramp),
                    correct: obs.ramp_observations[ramp].agrees,
                },
                None => TokenOutcome {
                    release_offset: final_off,
                    exit_ramp: None,
                    correct: true,
                },
            }
        }))
    }
}

/// Hindsight-optimal token exits: each token is released at the earliest
/// feasible decoder site whose hypothetical ramp agrees with the full model,
/// with zero ramp overhead; the step frees the GPU at its slowest token.
pub struct OracleTokenPolicy {
    plan: ExecutionPlan,
    sites: Vec<LayerId>,
    capacity: f64,
    name: String,
}

impl OracleTokenPolicy {
    /// Create a token oracle over the given decoder sites.
    pub fn new(
        plan: ExecutionPlan,
        sites: Vec<LayerId>,
        capacity: f64,
        name: impl Into<String>,
    ) -> OracleTokenPolicy {
        OracleTokenPolicy {
            plan,
            sites,
            capacity,
            name: name.into(),
        }
    }
}

impl TokenPolicy for OracleTokenPolicy {
    fn process_step(&mut self, slots: &[TokenSlot], _step_start: SimTime) -> StepOutcome {
        let b = slots.len() as u32;
        let (gpu_us, releases) = crate::oracle::batch_releases(
            &self.plan,
            &self.sites,
            self.capacity,
            slots.iter().map(|s| s.semantics),
            b,
        );
        StepOutcome {
            gpu_time: SimDuration::from_micros_f64(gpu_us),
            per_token: releases
                .into_iter()
                .map(|(us, ramp)| TokenOutcome {
                    release_offset: SimDuration::from_micros_f64(us),
                    exit_ramp: ramp,
                    correct: true,
                })
                .collect(),
            profile: None,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::deploy_budget_sites;
    use apparate_core::{ApparateConfig, RampArchitecture};
    use apparate_exec::SemanticsModel;
    use apparate_model::zoo;

    fn slots(n: usize) -> Vec<TokenSlot> {
        (0..n)
            .map(|i| TokenSlot {
                request_id: i as u64,
                token_index: 0,
                semantics: SampleSemantics::new(i as u64 * 31, 0.2),
            })
            .collect()
    }

    #[test]
    fn static_token_policy_exits_easy_tokens() {
        let model = zoo::t5_large();
        let semantics = SemanticsModel::new(5, model.descriptor.overparameterization);
        let dep = deploy_budget_sites(
            &model,
            &semantics,
            &ApparateConfig::default(),
            RampArchitecture::Lightweight,
            0,
        );
        let mut policy = StaticTokenPolicy::uniform(dep.plan.clone(), 0.3, "static");
        let out = policy.process_step(&slots(16), SimTime::ZERO);
        assert_eq!(out.per_token.len(), 16);
        let exits = out
            .per_token
            .iter()
            .filter(|t| t.exit_ramp.is_some())
            .count();
        assert!(exits > 8, "easy tokens should exit ({exits}/16)");
        for t in &out.per_token {
            assert!(t.release_offset <= out.gpu_time);
        }
    }

    #[test]
    fn token_oracle_is_exact_and_cheap() {
        let model = zoo::t5_large();
        let semantics = SemanticsModel::new(5, model.descriptor.overparameterization);
        let dep = deploy_budget_sites(
            &model,
            &semantics,
            &ApparateConfig::default(),
            RampArchitecture::Lightweight,
            0,
        );
        let vanilla = dep.plan.with_ramps(Vec::new());
        let sites: Vec<LayerId> = dep.all_sites.iter().map(|s| s.site).collect();
        let mut oracle = OracleTokenPolicy::new(vanilla.clone(), sites, dep.capacity, "oracle");
        let out = oracle.process_step(&slots(16), SimTime::ZERO);
        assert!(out.per_token.iter().all(|t| t.correct));
        assert!(out.gpu_time <= SimDuration::from_micros_f64(vanilla.vanilla_total_us(16)));
        assert!(
            out.per_token
                .iter()
                .filter(|t| t.exit_ramp.is_some())
                .count()
                > 8
        );
    }
}
