//! Shared release rule of the hindsight oracles.
//!
//! Both the classification and the token oracle apply the same §2.2 optimum:
//! exit at the earliest feasible site whose hypothetical ramp agrees with the
//! full model, pay no ramp overhead, and hold the GPU only until the slowest
//! member of the batch/step has released. Keeping the rule in one place means
//! the two oracles cannot drift apart.

use apparate_exec::{ExecutionPlan, SampleSemantics};
use apparate_model::LayerId;

/// Offset (µs from batch start) at which one input's result is released by a
/// hindsight oracle over `sites`, plus the index of the exit site (into
/// `sites`), if any. `None` means the input runs the whole model.
pub(crate) fn release_us(
    plan: &ExecutionPlan,
    sites: &[LayerId],
    capacity: f64,
    sample: &SampleSemantics,
    batch: u32,
) -> (f64, Option<usize>) {
    for (idx, &site) in sites.iter().enumerate() {
        if plan.observe_at_site(sample, site, capacity).agrees {
            return (plan.site_prefix_us(site, batch), Some(idx));
        }
    }
    (plan.vanilla_total_us(batch), None)
}

/// Release offsets for a whole batch plus the GPU occupancy: the batch frees
/// the GPU when its slowest member exits, which with zero ramp cost is at most
/// the vanilla batch time.
pub(crate) fn batch_releases(
    plan: &ExecutionPlan,
    sites: &[LayerId],
    capacity: f64,
    samples: impl Iterator<Item = SampleSemantics>,
    batch: u32,
) -> (f64, Vec<(f64, Option<usize>)>) {
    let releases: Vec<(f64, Option<usize>)> = samples
        .map(|sample| release_us(plan, sites, capacity, &sample, batch))
        .collect();
    let gpu_us = releases.iter().map(|(us, _)| *us).fold(0.0f64, f64::max);
    (gpu_us, releases)
}
