//! Deployment preparation shared by every early-exit policy: pick ramp sites,
//! "train" the ramps on the bootstrap split, and assemble an
//! [`ExecutionPlan`].
//!
//! Both the baselines and Apparate itself go through exactly this preparation
//! phase (§3.1); they differ only in what happens *after* deployment (nothing,
//! a single offline tune, or continuous adaptation).

use apparate_core::{
    evenly_spaced, feasible_sites, max_ramps_under_budget, train_ramps, ApparateConfig,
    RampArchitecture, RampSite,
};
use apparate_exec::{ExecutionPlan, SemanticsModel};
use apparate_model::ZooModel;

/// A deployed ramp set: the execution plan plus the site bookkeeping that
/// adaptive policies need to reason about alternatives.
#[derive(Debug, Clone)]
pub struct RampDeployment {
    /// The executable plan (model + semantics + active ramps).
    pub plan: ExecutionPlan,
    /// Every feasible ramp site of the model, in topological order. Adjustment
    /// algorithms search this space; static policies ignore it.
    pub all_sites: Vec<RampSite>,
    /// Feasible-site indices of the initially active ramps, sorted ascending.
    pub active_sites: Vec<usize>,
    /// Budgeted maximum number of simultaneously active ramps.
    pub max_active: usize,
    /// Capacity every trained ramp achieved (uniform across sites, §3.1).
    pub capacity: f64,
}

/// Deploy ramps at Apparate's initial placement: evenly spaced feasible sites
/// filling the ramp budget, trained on `train_samples` bootstrap samples.
pub fn deploy_budget_sites(
    model: &ZooModel,
    semantics: &SemanticsModel,
    config: &ApparateConfig,
    architecture: RampArchitecture,
    train_samples: usize,
) -> RampDeployment {
    let all_sites = feasible_sites(model, architecture);
    let max_active = max_ramps_under_budget(model, &all_sites, config.ramp_budget).max(1);
    let active = evenly_spaced(&all_sites, max_active);
    deploy(
        model,
        semantics,
        architecture,
        train_samples,
        all_sites,
        active,
        max_active,
    )
}

/// Deploy a ramp at *every* feasible site (the uniform-placement baseline;
/// deliberately ignores the ramp budget).
pub fn deploy_all_sites(
    model: &ZooModel,
    semantics: &SemanticsModel,
    architecture: RampArchitecture,
    train_samples: usize,
) -> RampDeployment {
    let all_sites = feasible_sites(model, architecture);
    let active = all_sites.clone();
    let max_active = all_sites.len();
    deploy(
        model,
        semantics,
        architecture,
        train_samples,
        all_sites,
        active,
        max_active,
    )
}

fn deploy(
    model: &ZooModel,
    semantics: &SemanticsModel,
    architecture: RampArchitecture,
    train_samples: usize,
    all_sites: Vec<RampSite>,
    active: Vec<RampSite>,
    max_active: usize,
) -> RampDeployment {
    let (ramps, _report) = train_ramps(model, &active, architecture, train_samples);
    let capacity = ramps.first().map(|r| r.capacity).unwrap_or(0.0);
    let placements = ramps.iter().map(|r| r.placement()).collect();
    let active_sites = active.iter().map(|s| s.site_index).collect();
    RampDeployment {
        plan: ExecutionPlan::new(model.clone(), semantics.clone(), placements),
        all_sites,
        active_sites,
        max_active,
        capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_model::zoo;

    fn semantics(model: &ZooModel) -> SemanticsModel {
        SemanticsModel::new(1, model.descriptor.overparameterization)
    }

    #[test]
    fn budget_deployment_respects_budget() {
        let model = zoo::resnet(50);
        let dep = deploy_budget_sites(
            &model,
            &semantics(&model),
            &ApparateConfig::default(),
            RampArchitecture::Lightweight,
            500,
        );
        assert!(dep.plan.num_ramps() >= 1);
        assert!(dep.plan.num_ramps() <= dep.max_active);
        assert!(dep.active_sites.windows(2).all(|w| w[0] < w[1]));
        // Worst-case overhead stays within the 2 % default budget.
        let overhead = dep.plan.total_ramp_overhead_us(1);
        assert!(overhead <= dep.plan.vanilla_total_us(1) * 0.02 + 1e-9);
        assert!(dep.capacity > 0.85);
    }

    #[test]
    fn uniform_deployment_covers_every_site() {
        let model = zoo::vgg(13);
        let dep = deploy_all_sites(
            &model,
            &semantics(&model),
            RampArchitecture::Lightweight,
            500,
        );
        assert_eq!(dep.plan.num_ramps(), dep.all_sites.len());
        // Uniform placement blows through the budget — that is the point.
        let budget_dep = deploy_budget_sites(
            &model,
            &semantics(&model),
            &ApparateConfig::default(),
            RampArchitecture::Lightweight,
            500,
        );
        assert!(dep.plan.num_ramps() > budget_dep.plan.num_ramps());
        assert!(dep.plan.total_ramp_overhead_us(1) > budget_dep.plan.total_ramp_overhead_us(1));
    }
}
