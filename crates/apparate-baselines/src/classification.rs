//! Classification-serving baselines: the [`ExitPolicy`] family.

use apparate_core::{
    greedy_tune, GreedyParams, RequestFeedback, ThresholdEvaluator, TuningOutcome,
};
use apparate_exec::{BatchExecution, ExecutionPlan, RequestObservations, SampleSemantics};
use apparate_model::LayerId;
use apparate_serving::{BatchOutcome, ExitPolicy, Request, RequestOutcome, VanillaPolicy};
use apparate_sim::{SimDuration, SimTime};

/// Latency saved per request by exiting at each active ramp instead of running
/// to the model head, at the given reference batch size (µs, one entry per
/// ramp). This is the savings vector Algorithm 1 maximises.
pub fn per_ramp_savings_us(plan: &ExecutionPlan, batch: u32) -> Vec<f64> {
    let final_off = plan.final_offset_us(batch);
    (0..plan.num_ramps())
        .map(|i| (final_off - plan.ramp_offset_us(i, batch)).max(0.0))
        .collect()
}

/// A batch-size → GPU-time estimator for a plan, for the serving platform's
/// SLO-aware batching decisions. Includes active-ramp overheads.
pub fn batch_time_fn(plan: &ExecutionPlan) -> impl Fn(u32) -> SimDuration + '_ {
    |batch| SimDuration::from_micros_f64(plan.gpu_batch_time_us(batch))
}

/// Vanilla serving for a model: every input runs the whole original model with
/// no ramps and no overhead.
pub fn vanilla_policy(plan: &ExecutionPlan) -> VanillaPolicy<impl Fn(u32) -> SimDuration + '_> {
    VanillaPolicy::new(|batch| SimDuration::from_micros_f64(plan.vanilla_total_us(batch)))
}

/// The universal result-release rule shared by every threshold-based policy
/// (static baselines and Apparate alike): the request's *result* is released
/// at the earliest ramp whose entropy clears its threshold, while the *input*
/// continues to the model head (which is what keeps accuracy feedback free and
/// batchmates unaffected, §3.2).
pub fn exit_outcome(
    plan: &ExecutionPlan,
    observations: &RequestObservations,
    thresholds: &[f64],
    batch: u32,
) -> RequestOutcome {
    let final_off = SimDuration::from_micros_f64(plan.final_offset_us(batch));
    match BatchExecution::earliest_exit(observations, thresholds) {
        Some(ramp) => RequestOutcome {
            release_offset: SimDuration::from_micros_f64(plan.ramp_offset_us(ramp, batch)),
            completion_offset: final_off,
            exit_ramp: Some(ramp),
            correct: observations.ramp_observations[ramp].agrees,
        },
        None => RequestOutcome {
            release_offset: final_off,
            completion_offset: final_off,
            exit_ramp: None,
            correct: true,
        },
    }
}

/// A non-adaptive early-exit policy: fixed ramps, fixed per-ramp thresholds.
///
/// With uniform thresholds this is the BranchyNet/DeeBERT deployment mode the
/// paper argues against (§2.2); with offline-tuned thresholds (see
/// [`offline_tuned_thresholds`]) it becomes the "tune once, then drift"
/// baseline of Figure 5.
pub struct StaticExitPolicy {
    plan: ExecutionPlan,
    thresholds: Vec<f64>,
    name: String,
}

impl StaticExitPolicy {
    /// Create a static policy. `thresholds` must have one entry per active
    /// ramp of `plan`.
    pub fn new(
        plan: ExecutionPlan,
        thresholds: Vec<f64>,
        name: impl Into<String>,
    ) -> StaticExitPolicy {
        assert_eq!(
            thresholds.len(),
            plan.num_ramps(),
            "one threshold per active ramp"
        );
        StaticExitPolicy {
            plan,
            thresholds,
            name: name.into(),
        }
    }

    /// Create a static policy with the same threshold on every ramp.
    pub fn uniform(
        plan: ExecutionPlan,
        threshold: f64,
        name: impl Into<String>,
    ) -> StaticExitPolicy {
        let thresholds = vec![threshold; plan.num_ramps()];
        StaticExitPolicy::new(plan, thresholds, name)
    }

    /// The underlying execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The fixed thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

impl ExitPolicy for StaticExitPolicy {
    fn process_batch(&mut self, batch: &[Request], _batch_start: SimTime) -> BatchOutcome {
        let samples: Vec<SampleSemantics> = batch.iter().map(|r| r.semantics).collect();
        let exec = self.plan.execute_batch(&samples);
        let b = batch.len() as u32;
        BatchOutcome {
            gpu_time: SimDuration::from_micros_f64(self.plan.gpu_batch_time_us(b)),
            per_request: exec
                .per_request
                .iter()
                .map(|obs| exit_outcome(&self.plan, obs, &self.thresholds, b))
                .collect(),
            profile: None,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Tune thresholds once, offline, on a calibration sample set (the bootstrap
/// validation split, §3.1) using Apparate's own greedy tuner, and return the
/// outcome. Wrap the result in a [`StaticExitPolicy`] for the "oneshot-tuned"
/// baseline: optimal for the bootstrap distribution, blind to drift.
pub fn offline_tuned_thresholds(
    plan: &ExecutionPlan,
    calibration: &[SampleSemantics],
    params: GreedyParams,
    reference_batch: u32,
) -> TuningOutcome {
    let records: Vec<RequestFeedback> = calibration
        .iter()
        .map(|sample| RequestFeedback {
            observations: (0..plan.num_ramps())
                .map(|i| plan.observe(sample, i))
                .collect(),
            exited: None,
            correct: true,
            batch_size: reference_batch,
        })
        .collect();
    let savings = per_ramp_savings_us(plan, reference_batch);
    let evaluator = ThresholdEvaluator::new(&records, &savings);
    greedy_tune(&evaluator, params)
}

/// The deterministic hindsight oracle (§2.2's "optimal early exiting").
///
/// For every input it exits at the earliest feasible site whose hypothetical
/// ramp agrees with the full model — knowledge only hindsight (or a
/// deterministic, splittable semantics model) can provide — and pays no ramp
/// overhead at all. Accuracy is exactly that of the original model, and the
/// batch frees the GPU as soon as its slowest member exits, so the oracle
/// lower-bounds every realisable policy on latency *and* throughput.
pub struct OracleExitPolicy {
    plan: ExecutionPlan,
    sites: Vec<LayerId>,
    capacity: f64,
    name: String,
}

impl OracleExitPolicy {
    /// Create an oracle over the given feasible sites (topological order) with
    /// the given ramp capacity. `plan` should carry no active ramps; the
    /// oracle evaluates hypothetical ramps at every site.
    pub fn new(
        plan: ExecutionPlan,
        sites: Vec<LayerId>,
        capacity: f64,
        name: impl Into<String>,
    ) -> OracleExitPolicy {
        OracleExitPolicy {
            plan,
            sites,
            capacity,
            name: name.into(),
        }
    }
}

impl ExitPolicy for OracleExitPolicy {
    fn process_batch(&mut self, batch: &[Request], _batch_start: SimTime) -> BatchOutcome {
        let b = batch.len() as u32;
        let (gpu_us, releases) = crate::oracle::batch_releases(
            &self.plan,
            &self.sites,
            self.capacity,
            batch.iter().map(|r| r.semantics),
            b,
        );
        BatchOutcome {
            gpu_time: SimDuration::from_micros_f64(gpu_us),
            per_request: releases
                .into_iter()
                .map(|(us, ramp)| {
                    let off = SimDuration::from_micros_f64(us);
                    RequestOutcome {
                        release_offset: off,
                        completion_offset: off,
                        exit_ramp: ramp,
                        correct: true,
                    }
                })
                .collect(),
            profile: None,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{deploy_all_sites, deploy_budget_sites};
    use apparate_core::{ApparateConfig, RampArchitecture};
    use apparate_exec::SemanticsModel;
    use apparate_model::zoo;
    use apparate_serving::ArrivalTrace;
    use apparate_serving::{BatchingPolicy, ServingConfig, ServingSimulator};

    fn easy_samples(n: usize) -> Vec<SampleSemantics> {
        (0..n)
            .map(|i| SampleSemantics::new(i as u64, 0.1 + 0.3 * (i % 7) as f64 / 7.0))
            .collect()
    }

    fn cv_plan() -> crate::prep::RampDeployment {
        let model = zoo::resnet(50);
        let semantics = SemanticsModel::new(77, model.descriptor.overparameterization);
        deploy_budget_sites(
            &model,
            &semantics,
            &ApparateConfig::default(),
            RampArchitecture::Lightweight,
            500,
        )
    }

    #[test]
    fn static_policy_exits_easy_inputs_early() {
        let dep = cv_plan();
        let mut policy = StaticExitPolicy::uniform(dep.plan.clone(), 0.25, "static-ee");
        let samples = easy_samples(64);
        let requests: Vec<Request> = samples
            .iter()
            .enumerate()
            .map(|(i, &s)| Request::classification(i as u64, SimTime::ZERO, s, None))
            .collect();
        let out = policy.process_batch(&requests, SimTime::ZERO);
        assert_eq!(out.per_request.len(), 64);
        let exits = out
            .per_request
            .iter()
            .filter(|o| o.exit_ramp.is_some())
            .count();
        assert!(exits > 32, "most easy CV inputs should exit ({exits}/64)");
        for o in &out.per_request {
            assert!(o.release_offset <= o.completion_offset);
            if o.exit_ramp.is_some() {
                assert!(o.release_offset < out.gpu_time);
            }
        }
    }

    #[test]
    fn zero_thresholds_never_exit() {
        let dep = cv_plan();
        let mut policy = StaticExitPolicy::uniform(dep.plan.clone(), 0.0, "no-exit");
        let requests: Vec<Request> = easy_samples(8)
            .iter()
            .enumerate()
            .map(|(i, &s)| Request::classification(i as u64, SimTime::ZERO, s, None))
            .collect();
        let out = policy.process_batch(&requests, SimTime::ZERO);
        assert!(out
            .per_request
            .iter()
            .all(|o| o.exit_ramp.is_none() && o.correct));
    }

    #[test]
    fn offline_tuning_finds_savings_and_respects_accuracy() {
        let dep = cv_plan();
        let calibration = easy_samples(400);
        let outcome = offline_tuned_thresholds(&dep.plan, &calibration, GreedyParams::default(), 4);
        assert!(outcome.evaluation.accuracy >= 0.99 - 1e-9);
        assert!(outcome.evaluation.mean_savings_us > 0.0);
        assert_eq!(outcome.thresholds.len(), dep.plan.num_ramps());
    }

    #[test]
    fn oracle_is_perfectly_accurate_and_fast() {
        let model = zoo::resnet(50);
        let semantics = SemanticsModel::new(77, model.descriptor.overparameterization);
        let dep = deploy_all_sites(&model, &semantics, RampArchitecture::Lightweight, 500);
        let vanilla_plan = dep.plan.with_ramps(Vec::new());
        let sites: Vec<LayerId> = dep.all_sites.iter().map(|s| s.site).collect();
        let mut oracle = OracleExitPolicy::new(vanilla_plan.clone(), sites, dep.capacity, "oracle");

        let trace = ArrivalTrace::fixed_rate(100, 30.0);
        let samples = easy_samples(100);
        let sim = ServingSimulator::new(ServingConfig {
            policy: BatchingPolicy::Immediate,
            slo: None,
        });
        let estimate = batch_time_fn(&vanilla_plan);
        let out = sim.run(&trace, &samples, &mut oracle, &estimate);
        assert!((out.accuracy() - 1.0).abs() < 1e-12);
        assert!(out.exit_rate() > 0.5);

        // Head-to-head at identical arrivals: the oracle's median beats vanilla.
        let mut vanilla = vanilla_policy(&vanilla_plan);
        let vout = sim.run(&trace, &samples, &mut vanilla, &estimate);
        let op = apparate_sim::Percentiles::from_samples(&out.latencies_ms());
        let vp = apparate_sim::Percentiles::from_samples(&vout.latencies_ms());
        assert!(
            op.p50 < vp.p50,
            "oracle p50 {} vs vanilla {}",
            op.p50,
            vp.p50
        );
        assert!(op.max <= vp.max + 1e-9);
    }
}
