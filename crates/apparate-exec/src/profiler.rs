//! GPU → controller profiling feedback channel.
//!
//! Apparate "runs a separate controller per model replica on a CPU, with GPUs
//! streaming per-ramp/batch profiling information in a non-blocking fashion"
//! (§3). The stream carries, per request and per active ramp, a top-predicted
//! result and an error score (~1 KB per batch), and threshold updates flow
//! back (~10 KB of ramp definitions). §4.5 measures the coordination delay at
//! ~0.5 ms per message, 0.4 ms of which is fixed PCIe latency.
//!
//! The simulation reproduces those costs so the overhead microbenchmark
//! (experiment `overhead`) can report them, and uses a real channel so the
//! controller code is structured the same way it would be against a real GPU
//! stream (producer/consumer, non-blocking for serving).

use crate::semantics::RampObservation;
use apparate_sim::{SimDuration, SimTime};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One batch worth of profiling data streamed from the GPU to the controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// When the batch finished on the GPU.
    pub completed_at: SimTime,
    /// Batch size.
    pub batch_size: u32,
    /// Per-request, per-active-ramp observations (request-major).
    pub observations: Vec<Vec<RampObservation>>,
    /// Request identifiers, parallel to `observations`.
    pub request_ids: Vec<u64>,
}

impl ProfileRecord {
    /// Approximate wire size of this record in bytes: the paper quotes ~1 KB
    /// for a top-predicted result plus error score per batch; we charge
    /// 8 bytes per (request, ramp) observation plus a small header.
    pub fn wire_bytes(&self) -> u64 {
        let per_obs = 8u64;
        let obs: u64 = self
            .observations
            .iter()
            .map(|r| r.len() as u64 * per_obs)
            .sum();
        64 + obs + self.request_ids.len() as u64 * 8
    }
}

/// Cost model of the CPU↔GPU link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkCost {
    /// Fixed per-message latency (PCIe round trip), µs.
    pub fixed_us: f64,
    /// Additional latency per KiB transferred, µs.
    pub per_kib_us: f64,
}

impl Default for LinkCost {
    fn default() -> Self {
        // §4.5: 0.5 ms per communication, 0.4 ms of which is fixed PCIe latency.
        LinkCost {
            fixed_us: 400.0,
            per_kib_us: 25.0,
        }
    }
}

impl LinkCost {
    /// Latency of transferring `bytes` in one message.
    pub fn transfer_latency(&self, bytes: u64) -> SimDuration {
        let kib = bytes as f64 / 1024.0;
        SimDuration::from_micros_f64(self.fixed_us + self.per_kib_us * kib)
    }
}

/// Shared statistics about the feedback link.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages sent GPU → controller.
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
    /// Total simulated transfer latency.
    pub total_latency: SimDuration,
}

impl LinkStats {
    /// Mean per-message latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.messages == 0 {
            SimDuration::ZERO
        } else {
            self.total_latency / self.messages
        }
    }
}

/// The GPU-side producer half of the feedback link.
#[derive(Debug, Clone)]
pub struct FeedbackSender {
    tx: Sender<(SimTime, ProfileRecord)>,
    cost: LinkCost,
    stats: Arc<Mutex<LinkStats>>,
}

/// The controller-side consumer half of the feedback link.
#[derive(Debug)]
pub struct FeedbackReceiver {
    rx: Receiver<(SimTime, ProfileRecord)>,
    stats: Arc<Mutex<LinkStats>>,
    /// Records received from the channel but whose simulated delivery time has
    /// not yet been reached.
    pending: Vec<(SimTime, ProfileRecord)>,
}

/// Create a feedback link with the given cost model.
pub fn feedback_link(cost: LinkCost) -> (FeedbackSender, FeedbackReceiver) {
    let (tx, rx) = unbounded();
    let stats = Arc::new(Mutex::new(LinkStats::default()));
    (
        FeedbackSender {
            tx,
            cost,
            stats: Arc::clone(&stats),
        },
        FeedbackReceiver {
            rx,
            stats,
            pending: Vec::new(),
        },
    )
}

impl FeedbackSender {
    /// Stream one record. Returns the simulated time at which the controller
    /// will have it (send time + transfer latency). Sending never blocks the
    /// simulated GPU.
    pub fn send(&self, record: ProfileRecord) -> SimTime {
        let latency = self.cost.transfer_latency(record.wire_bytes());
        let deliver_at = record.completed_at + latency;
        {
            let mut stats = self.stats.lock();
            stats.messages += 1;
            stats.bytes += record.wire_bytes();
            stats.total_latency += latency;
        }
        // The receiver may have been dropped (e.g. controller shut down); the
        // GPU stream must not care.
        let _ = self.tx.send((deliver_at, record));
        deliver_at
    }

    /// Snapshot of the link statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats.lock().clone()
    }
}

impl FeedbackReceiver {
    /// Drain every record that has been *delivered* by `now` (send latency
    /// already accounted for). Records still "in flight" stay queued.
    pub fn poll(&mut self, now: SimTime) -> Vec<ProfileRecord> {
        let mut ready = Vec::new();
        let mut requeue = Vec::new();
        while let Ok((deliver_at, record)) = self.rx.try_recv() {
            if deliver_at <= now {
                ready.push(record);
            } else {
                requeue.push((deliver_at, record));
            }
        }
        // Anything not yet delivered is conceptually still on the wire; since
        // crossbeam channels have no peek, we keep them locally.
        for item in requeue {
            self.pending.push(item);
        }
        let mut still_pending = Vec::new();
        for (deliver_at, record) in self.pending.drain(..) {
            if deliver_at <= now {
                ready.push(record);
            } else {
                still_pending.push((deliver_at, record));
            }
        }
        self.pending = still_pending;
        ready.sort_by_key(|r| r.completed_at);
        ready
    }

    /// Snapshot of the link statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats.lock().clone()
    }
}

impl FeedbackReceiver {
    /// Number of records waiting on the wire (not yet delivered).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at_ms: u64, batch: u32) -> ProfileRecord {
        ProfileRecord {
            completed_at: SimTime::from_millis(at_ms),
            batch_size: batch,
            observations: vec![
                vec![
                    RampObservation {
                        entropy: 0.2,
                        agrees: true
                    };
                    2
                ];
                batch as usize
            ],
            request_ids: (0..batch as u64).collect(),
        }
    }

    #[test]
    fn link_cost_matches_paper_scale() {
        let cost = LinkCost::default();
        let latency = cost.transfer_latency(1024);
        // ~0.4 ms fixed + ~25 µs per KiB ≈ 0.425 ms, within the paper's ~0.5 ms.
        assert!(latency.as_millis_f64() > 0.35 && latency.as_millis_f64() < 0.6);
    }

    #[test]
    fn records_deliver_after_transfer_latency() {
        let (tx, mut rx) = feedback_link(LinkCost::default());
        let deliver_at = tx.send(record(10, 4));
        assert!(deliver_at > SimTime::from_millis(10));
        // Not yet delivered at completion time.
        assert!(rx.poll(SimTime::from_millis(10)).is_empty());
        assert_eq!(rx.in_flight(), 1);
        // Delivered once the link latency has elapsed.
        let got = rx.poll(deliver_at);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].batch_size, 4);
        assert_eq!(rx.in_flight(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let (tx, rx) = feedback_link(LinkCost::default());
        for i in 0..5 {
            tx.send(record(i, 2));
        }
        let stats = rx.stats();
        assert_eq!(stats.messages, 5);
        assert!(stats.bytes > 0);
        assert!(stats.mean_latency() > SimDuration::ZERO);
    }

    #[test]
    fn wire_bytes_are_small() {
        // The paper stresses profiling data is ~1 KB per batch; a batch of 16
        // requests over 4 ramps must stay in that ballpark.
        let rec = ProfileRecord {
            completed_at: SimTime::ZERO,
            batch_size: 16,
            observations: vec![
                vec![
                    RampObservation {
                        entropy: 0.1,
                        agrees: true
                    };
                    4
                ];
                16
            ],
            request_ids: (0..16).collect(),
        };
        assert!(rec.wire_bytes() < 2048, "wire bytes {}", rec.wire_bytes());
    }

    #[test]
    fn out_of_order_polls_sort_by_completion() {
        let (tx, mut rx) = feedback_link(LinkCost {
            fixed_us: 0.0,
            per_kib_us: 0.0,
        });
        tx.send(record(20, 1));
        tx.send(record(10, 1));
        let got = rx.poll(SimTime::from_millis(30));
        assert_eq!(got.len(), 2);
        assert!(got[0].completed_at < got[1].completed_at);
    }
}
