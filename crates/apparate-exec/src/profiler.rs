//! The bidirectional GPU ↔ controller coordination link.
//!
//! Apparate "runs a separate controller per model replica on a CPU, with GPUs
//! streaming per-ramp/batch profiling information in a non-blocking fashion"
//! (§3). The uplink carries, per request and per active ramp, a top-predicted
//! result and an error score (~1 KB per batch); the downlink carries threshold
//! updates and, when the ramp set changes, ~10 KB of ramp definitions (§4.5).
//! §4.5 measures the coordination delay at ~0.5 ms per message, 0.4 ms of
//! which is fixed PCIe latency.
//!
//! The simulation reproduces those costs so the overhead experiment can report
//! them, and uses a real channel so the controller code is structured the same
//! way it would be against a real GPU stream (producer/consumer, non-blocking
//! for serving). Both directions are modelled with the same machinery: a
//! [`FeedbackSender`]/[`FeedbackReceiver`] pair generic over the
//! [`WirePayload`] it carries, with [`ProfileRecord`] flowing GPU → controller
//! and [`ThresholdUpdate`] flowing controller → GPU. Delivery is charged
//! against the [`LinkCost`] model and takes effect only once the simulated
//! transfer has completed, so consumers polling at time *t* can never act on
//! messages still on the wire at *t*.

use crate::engine::RampPlacement;
use crate::semantics::RampObservation;
use apparate_sim::{SimDuration, SimTime};
use apparate_telemetry::{EventKind, LinkDirection, Telemetry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Anything that can be shipped across the link: it only needs to know its
/// approximate serialised size so the transfer latency can be charged.
pub trait WirePayload {
    /// Approximate wire size of this message in bytes.
    fn wire_bytes(&self) -> u64;
}

/// One batch worth of profiling data streamed from the GPU to the controller.
///
/// Observations are stored flat (request-major, `num_ramps` per request)
/// rather than as one `Vec` per request: a record is a single contiguous
/// allocation however large the batch, which is what keeps the per-batch
/// producer path and the controller's batched ingestion allocation-free per
/// request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// When the batch finished on the GPU.
    pub completed_at: SimTime,
    /// Batch size.
    pub batch_size: u32,
    /// Number of active ramps per request (the row stride of `observations`).
    pub num_ramps: usize,
    /// Flat request-major observations: request `i`'s ramp `r` observation is
    /// at index `i * num_ramps + r`.
    pub observations: Vec<RampObservation>,
    /// Per-request release metadata, in batch order; `observations` holds
    /// `num_ramps` entries per release. One packed vector rather than
    /// parallel id/exit/correct vectors, so a record costs two allocations
    /// however large the batch.
    pub releases: Vec<RequestRelease>,
    /// Configuration epoch the GPU was running when it produced this record
    /// (incremented by every applied [`ThresholdUpdate`]). Lets the controller
    /// discard records whose ramp indices predate a ramp-set change.
    pub config_epoch: u64,
}

/// Release metadata for one request in a profiled batch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RequestRelease {
    /// Request identifier.
    pub id: u64,
    /// Ramp index the result exited at (`None` = ran to the head).
    pub exit: Option<usize>,
    /// Whether the released result matched the original model.
    pub correct: bool,
}

impl ProfileRecord {
    /// Request `i`'s per-ramp observations (a `num_ramps`-long row).
    #[inline]
    pub fn request_observations(&self, i: usize) -> &[RampObservation] {
        &self.observations[i * self.num_ramps..(i + 1) * self.num_ramps]
    }
}

impl WirePayload for ProfileRecord {
    /// Approximate wire size: the paper quotes ~1 KB for a top-predicted
    /// result plus error score per batch; we charge 8 bytes per
    /// (request, ramp) observation, 10 bytes of per-request release metadata
    /// (id + exit + agreement) and a small header.
    fn wire_bytes(&self) -> u64 {
        64 + self.observations.len() as u64 * 8 + self.releases.len() as u64 * 10
    }
}

/// Approximate serialised size of one ramp definition (§4.5: threshold
/// updates that change the ramp set ship ~10 KB of ramp definitions).
pub const RAMP_DEFINITION_BYTES: u64 = 10 * 1024;

/// A controller → GPU configuration update: new per-ramp thresholds and,
/// when the ramp set changed, the replacement ramp definitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdUpdate {
    /// When the controller issued the update.
    pub issued_at: SimTime,
    /// Configuration epoch this update establishes on the GPU.
    pub config_epoch: u64,
    /// New per-ramp exit thresholds (one per active ramp, in ramp order).
    pub thresholds: Vec<f64>,
    /// Replacement ramp set, when the adjustment algorithm changed it. `None`
    /// means thresholds-only: the active ramps are unchanged.
    pub ramps: Option<Vec<RampPlacement>>,
}

impl WirePayload for ThresholdUpdate {
    /// Thresholds are a small vector of floats; ramp definitions (weights of
    /// the ramp layers) dominate whenever they are included.
    fn wire_bytes(&self) -> u64 {
        let ramp_bytes = match &self.ramps {
            Some(ramps) => ramps.len().max(1) as u64 * RAMP_DEFINITION_BYTES,
            None => 0,
        };
        64 + self.thresholds.len() as u64 * 8 + ramp_bytes
    }
}

/// Cost model of the CPU↔GPU link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkCost {
    /// Fixed per-message latency (PCIe round trip), µs.
    pub fixed_us: f64,
    /// Additional latency per KiB transferred, µs.
    pub per_kib_us: f64,
}

impl Default for LinkCost {
    fn default() -> Self {
        // §4.5: 0.5 ms per communication, 0.4 ms of which is fixed PCIe latency.
        LinkCost {
            fixed_us: 400.0,
            per_kib_us: 25.0,
        }
    }
}

impl LinkCost {
    /// A zero-latency link (for isolating the algorithmic behaviour from the
    /// coordination delay in tests).
    pub const FREE: LinkCost = LinkCost {
        fixed_us: 0.0,
        per_kib_us: 0.0,
    };

    /// Latency of transferring `bytes` in one message.
    pub fn transfer_latency(&self, bytes: u64) -> SimDuration {
        let kib = bytes as f64 / 1024.0;
        SimDuration::from_micros_f64(self.fixed_us + self.per_kib_us * kib)
    }
}

/// Shared statistics about one direction of the feedback link.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages sent.
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
    /// Total simulated transfer latency.
    pub total_latency: SimDuration,
}

impl LinkStats {
    /// Mean per-message latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.messages == 0 {
            SimDuration::ZERO
        } else {
            self.total_latency / self.messages
        }
    }
}

/// Both directions of a GPU ↔ controller link, for the §4.5 overhead table.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct OverheadReport {
    /// GPU → controller profiling stream.
    pub uplink: LinkStats,
    /// Controller → GPU threshold/ramp updates.
    pub downlink: LinkStats,
}

impl OverheadReport {
    /// Messages across both directions.
    pub fn total_messages(&self) -> u64 {
        self.uplink.messages + self.downlink.messages
    }

    /// Bytes across both directions.
    pub fn total_bytes(&self) -> u64 {
        self.uplink.bytes + self.downlink.bytes
    }

    /// Total coordination latency across both directions.
    pub fn total_latency(&self) -> SimDuration {
        self.uplink.total_latency + self.downlink.total_latency
    }

    /// Mean per-message latency across both directions.
    pub fn mean_latency(&self) -> SimDuration {
        let messages = self.total_messages();
        if messages == 0 {
            SimDuration::ZERO
        } else {
            self.total_latency() / messages
        }
    }
}

/// An in-flight message: when it lands, its send sequence number (for
/// deterministic delivery order), and the payload.
type InFlight<T> = (SimTime, u64, T);

/// The producer half of one link direction.
#[derive(Debug)]
pub struct FeedbackSender<T> {
    tx: Sender<InFlight<T>>,
    cost: LinkCost,
    stats: Arc<Mutex<LinkStats>>,
    telemetry: Telemetry,
    direction: LinkDirection,
}

// Manual impl: `std::sync::mpsc::Sender` (the offline crossbeam stand-in) is
// Clone, but deriving would also bound `T: Clone`, which senders don't need.
impl<T> Clone for FeedbackSender<T> {
    fn clone(&self) -> Self {
        FeedbackSender {
            tx: self.tx.clone(),
            cost: self.cost,
            stats: Arc::clone(&self.stats),
            telemetry: self.telemetry.clone(),
            direction: self.direction,
        }
    }
}

/// The consumer half of one link direction.
#[derive(Debug)]
pub struct FeedbackReceiver<T> {
    rx: Receiver<InFlight<T>>,
    stats: Arc<Mutex<LinkStats>>,
    /// Messages received from the channel but whose simulated delivery time
    /// has not yet been reached.
    pending: Vec<InFlight<T>>,
}

/// Create one direction of a feedback link with the given cost model.
pub fn feedback_link<T: WirePayload>(cost: LinkCost) -> (FeedbackSender<T>, FeedbackReceiver<T>) {
    let (tx, rx) = unbounded();
    let stats = Arc::new(Mutex::new(LinkStats::default()));
    (
        FeedbackSender {
            tx,
            cost,
            stats: Arc::clone(&stats),
            telemetry: Telemetry::disabled(),
            direction: LinkDirection::Up,
        },
        FeedbackReceiver {
            rx,
            stats,
            pending: Vec::new(),
        },
    )
}

impl<T: WirePayload> FeedbackSender<T> {
    /// Stream one message at simulated time `sent_at`. Returns the time at
    /// which the receiver will have it (send time + transfer latency).
    /// Sending never blocks the simulated producer.
    pub fn send(&self, payload: T, sent_at: SimTime) -> SimTime {
        let wire_bytes = payload.wire_bytes();
        let latency = self.cost.transfer_latency(wire_bytes);
        let deliver_at = sent_at + latency;
        let seq = {
            let mut stats = self.stats.lock();
            stats.messages += 1;
            stats.bytes += wire_bytes;
            stats.total_latency += latency;
            stats.messages
        };
        if self.telemetry.is_enabled() {
            let direction = self.direction;
            self.telemetry.emit(sent_at, || EventKind::LinkMessage {
                direction,
                bytes: wire_bytes,
                latency_us: latency.as_micros(),
            });
            let (messages, bytes) = match direction {
                LinkDirection::Up => ("link_up_messages", "link_up_bytes"),
                LinkDirection::Down => ("link_down_messages", "link_down_bytes"),
            };
            self.telemetry.counter(messages, 1);
            self.telemetry.counter(bytes, wire_bytes);
        }
        // The receiver may have been dropped (e.g. controller shut down); the
        // producer must not care.
        let _ = self.tx.send((deliver_at, seq, payload));
        deliver_at
    }

    /// The cost model this sender charges.
    pub fn cost(&self) -> LinkCost {
        self.cost
    }

    /// Attach a telemetry handle: every subsequent `send` (from this sender
    /// and clones made *after* this call) records a `link-message` event and
    /// bumps the per-direction message/byte counters. Call before handing
    /// out clones so the whole stream is traced.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, direction: LinkDirection) {
        self.telemetry = telemetry;
        self.direction = direction;
    }

    /// Snapshot of this direction's statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats.lock().clone()
    }
}

impl<T> FeedbackReceiver<T> {
    /// Drain every message that has been *delivered* by `now` (transfer
    /// latency already accounted for). Messages still "in flight" stay queued.
    ///
    /// Delivery order is deterministic: ready messages are returned sorted by
    /// `(deliver_at, send sequence)`, so a message that was sent later but
    /// (being smaller) landed earlier is delivered first, and simultaneous
    /// deliveries keep their send order regardless of how the channel
    /// interleaved with earlier `poll` calls.
    pub fn poll(&mut self, now: SimTime) -> Vec<T> {
        while let Ok(item) = self.rx.try_recv() {
            // crossbeam channels have no peek, so not-yet-delivered messages
            // are conceptually still on the wire and kept locally.
            self.pending.push(item);
        }
        // Partition in place: ready messages move to the tail of `pending`
        // (internal order is irrelevant — delivery order is imposed by the
        // sort below), so the only allocation per poll is the returned batch.
        let mut split = self.pending.len();
        let mut i = 0;
        while i < split {
            if self.pending[i].0 <= now {
                split -= 1;
                self.pending.swap(i, split);
            } else {
                i += 1;
            }
        }
        let ready = &mut self.pending[split..];
        ready.sort_by_key(|(deliver_at, seq, _)| (*deliver_at, *seq));
        // Runtime counterpart of the static ordering rules (apparate-lint
        // W001): everything handed out is actually delivered by `now`, and
        // the batch is strictly ordered by `(deliver_at, seq)` — sequence
        // numbers are unique per link, so ties in `deliver_at` cannot erase
        // send order.
        debug_assert!(
            ready.iter().all(|(deliver_at, _, _)| *deliver_at <= now),
            "feedback delivery handed out a message still on the wire at {now:?}"
        );
        debug_assert!(
            ready
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "feedback delivery is not strictly ordered by (deliver_at, seq)"
        );
        self.pending
            .drain(split..)
            .map(|(_, _, payload)| payload)
            .collect()
    }

    /// Number of messages waiting on the wire (received from the channel but
    /// not yet delivered).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Snapshot of this direction's statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at_ms: u64, batch: u32) -> ProfileRecord {
        ProfileRecord {
            completed_at: SimTime::from_millis(at_ms),
            batch_size: batch,
            num_ramps: 2,
            observations: vec![
                RampObservation {
                    entropy: 0.2,
                    agrees: true
                };
                2 * batch as usize
            ],
            releases: (0..batch as u64)
                .map(|id| RequestRelease {
                    id,
                    exit: None,
                    correct: true,
                })
                .collect(),
            config_epoch: 0,
        }
    }

    #[test]
    fn link_cost_matches_paper_scale() {
        let cost = LinkCost::default();
        let latency = cost.transfer_latency(1024);
        // ~0.4 ms fixed + ~25 µs per KiB ≈ 0.425 ms, within the paper's ~0.5 ms.
        assert!(latency.as_millis_f64() > 0.35 && latency.as_millis_f64() < 0.6);
    }

    #[test]
    fn records_deliver_after_transfer_latency() {
        let (tx, mut rx) = feedback_link(LinkCost::default());
        let rec = record(10, 4);
        let deliver_at = tx.send(rec.clone(), rec.completed_at);
        assert!(deliver_at > SimTime::from_millis(10));
        // Not yet delivered at completion time.
        assert!(rx.poll(SimTime::from_millis(10)).is_empty());
        assert_eq!(rx.in_flight(), 1);
        // Delivered once the link latency has elapsed.
        let got = rx.poll(deliver_at);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].batch_size, 4);
        assert_eq!(rx.in_flight(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let (tx, rx) = feedback_link(LinkCost::default());
        for i in 0..5 {
            let rec = record(i, 2);
            tx.send(rec.clone(), rec.completed_at);
        }
        let stats = rx.stats();
        assert_eq!(stats.messages, 5);
        assert!(stats.bytes > 0);
        assert!(stats.mean_latency() > SimDuration::ZERO);
    }

    #[test]
    fn traced_sends_reconcile_with_link_stats() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let (mut tx, rx) = feedback_link(LinkCost::default());
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        tx.set_telemetry(telemetry.clone(), LinkDirection::Up);
        for i in 0..5 {
            let rec = record(i, 2);
            tx.send(rec.clone(), rec.completed_at);
        }
        let stats = rx.stats();
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.count_kind("link-message") as u64, stats.messages);
        assert_eq!(snap.counter_total("link_up_messages"), stats.messages);
        assert_eq!(snap.counter_total("link_up_bytes"), stats.bytes);
        assert_eq!(snap.counter_total("link_down_messages"), 0);
    }

    #[test]
    fn wire_bytes_are_small() {
        // The paper stresses profiling data is ~1 KB per batch; a batch of 16
        // requests over 4 ramps must stay in that ballpark.
        let rec = ProfileRecord {
            completed_at: SimTime::ZERO,
            batch_size: 16,
            num_ramps: 4,
            observations: vec![
                RampObservation {
                    entropy: 0.1,
                    agrees: true
                };
                4 * 16
            ],
            releases: (0..16)
                .map(|id| RequestRelease {
                    id,
                    exit: None,
                    correct: true,
                })
                .collect(),
            config_epoch: 0,
        };
        assert!(rec.wire_bytes() < 2048, "wire bytes {}", rec.wire_bytes());
        assert_eq!(rec.request_observations(3).len(), 4);
    }

    #[test]
    fn threshold_updates_are_charged_on_the_downlink() {
        let (tx, rx) = feedback_link::<ThresholdUpdate>(LinkCost::default());
        // Thresholds-only update: small.
        let small = ThresholdUpdate {
            issued_at: SimTime::from_millis(5),
            config_epoch: 1,
            thresholds: vec![0.2; 6],
            ramps: None,
        };
        assert!(small.wire_bytes() < 256);
        // A ramp-set change ships ~10 KB of ramp definitions per ramp.
        let big = ThresholdUpdate {
            ramps: Some(vec![
                RampPlacement {
                    site: apparate_model::LayerId(3),
                    cost: apparate_model::LayerLatency {
                        fixed_us: 30.0,
                        per_item_us: 10.0,
                        batch_alpha: 0.7,
                    },
                    capacity: 0.95,
                };
                2
            ]),
            ..small.clone()
        };
        assert!(big.wire_bytes() >= 2 * RAMP_DEFINITION_BYTES);
        tx.send(small, SimTime::from_millis(5));
        tx.send(big, SimTime::from_millis(5));
        let stats = rx.stats();
        assert_eq!(stats.messages, 2);
        assert!(stats.bytes > 2 * RAMP_DEFINITION_BYTES);
        // The big update takes visibly longer than the fixed PCIe latency.
        assert!(stats.total_latency.as_millis_f64() > 2.0 * 0.4);
    }

    #[test]
    fn delivery_order_is_deterministic_on_deliver_time_then_send_order() {
        // A large record sent first can land *after* a small one sent later;
        // delivery order must follow landing times, not completion times.
        let (tx, mut rx) = feedback_link(LinkCost {
            fixed_us: 0.0,
            per_kib_us: 1_000.0,
        });
        let big = record(10, 64); // sent at 10 ms, slow transfer
        let small = record(11, 1); // sent at 11 ms, lands almost immediately
        let big_at = tx.send(big, SimTime::from_millis(10));
        let small_at = tx.send(small, SimTime::from_millis(11));
        assert!(small_at < big_at, "the later-sent record lands first");
        let got = rx.poll(big_at);
        assert_eq!(got.len(), 2);
        assert_eq!(
            got[0].batch_size, 1,
            "the earlier-landing record is delivered first"
        );
        assert_eq!(got[1].batch_size, 64);
    }

    #[test]
    fn later_sent_but_earlier_completed_records_do_not_jump_pending_ones() {
        // Regression for the rx-before-pending drain bug: a record already
        // waiting in `pending` must not be delivered behind a record that was
        // sent later but carries an earlier completion stamp.
        let (tx, mut rx) = feedback_link(LinkCost {
            fixed_us: 1_000.0,
            per_kib_us: 0.0,
        });
        tx.send(record(20, 2), SimTime::from_millis(20)); // lands at 21 ms
                                                          // Poll early so the first record moves into the receiver's local
                                                          // pending buffer while still undelivered.
        assert!(rx.poll(SimTime::from_millis(5)).is_empty());
        assert_eq!(rx.in_flight(), 1);
        // Now send a record with an *earlier* completion time that lands later.
        tx.send(record(10, 3), SimTime::from_millis(20)); // also lands at 21 ms
        let got = rx.poll(SimTime::from_millis(30));
        assert_eq!(got.len(), 2);
        // Identical deliver_at: send order (= sequence) breaks the tie, so the
        // pending record is delivered first even though it completed later.
        assert_eq!(got[0].batch_size, 2);
        assert_eq!(got[1].batch_size, 3);
    }

    #[test]
    fn simultaneous_deliveries_keep_send_order_across_polls() {
        let (tx, mut rx) = feedback_link(LinkCost::FREE);
        for i in 0..4 {
            tx.send(record(7, i + 1), SimTime::from_millis(7));
        }
        let got = rx.poll(SimTime::from_millis(7));
        let sizes: Vec<u32> = got.iter().map(|r| r.batch_size).collect();
        assert_eq!(sizes, vec![1, 2, 3, 4]);
    }
}
