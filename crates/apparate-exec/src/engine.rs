//! The execution engine: timing and observation scaffold for a served model
//! with (optional) early-exit ramps.
//!
//! The engine is deliberately *policy free*. It answers two questions:
//!
//! * **Timing** — how long does a batch take on the GPU, and at what offset
//!   within that batch does the computation reach each ramp / the model head?
//!   (Derived from the calibrated per-layer latency model plus per-ramp costs.)
//! * **Observations** — what does each ramp report for each request?
//!   (Delegated to the [`SemanticsModel`].)
//!
//! Exiting *decisions* (thresholds, which ramps are active, whether inputs
//! truly exit or only results do) belong to the policy layers: Apparate's
//! controller in `apparate-core` and the baselines in `apparate-baselines`.

use crate::semantics::{RampObservation, SampleSemantics, SemanticsModel};
use apparate_model::{LayerId, LayerLatency, ZooModel};
use serde::{Deserialize, Serialize};

/// A ramp as seen by the execution engine: where it sits, what it costs, and
/// how capable it is.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RampPlacement {
    /// The layer whose output the ramp consumes. Must be a feasible site.
    pub site: LayerId,
    /// Latency cost of evaluating the ramp, added to every batch that carries it.
    pub cost: LayerLatency,
    /// Predictive capacity of the ramp architecture + training in `[0, 1]`.
    pub capacity: f64,
}

/// Execution plan: a model plus an ordered set of ramps, with cached
/// topological positions for fast prefix-latency queries.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    model: ZooModel,
    semantics: SemanticsModel,
    ramps: Vec<RampPlacement>,
    /// Topological position of each ramp's site (parallel to `ramps`).
    ramp_positions: Vec<usize>,
}

impl ExecutionPlan {
    /// Build a plan. Ramps are sorted by topological position; duplicate sites
    /// are rejected in debug builds.
    pub fn new(
        model: ZooModel,
        semantics: SemanticsModel,
        mut ramps: Vec<RampPlacement>,
    ) -> ExecutionPlan {
        ramps.sort_by_key(|r| model.graph.topo_position(r.site));
        let ramp_positions = ramps
            .iter()
            .map(|r| model.graph.topo_position(r.site))
            .collect::<Vec<_>>();
        debug_assert!(
            ramp_positions.windows(2).all(|w| w[0] < w[1]),
            "duplicate ramp sites in execution plan"
        );
        ExecutionPlan {
            model,
            semantics,
            ramps,
            ramp_positions,
        }
    }

    /// Build a plan with no ramps (vanilla serving).
    pub fn vanilla(model: ZooModel, semantics: SemanticsModel) -> ExecutionPlan {
        ExecutionPlan::new(model, semantics, Vec::new())
    }

    /// The served model.
    pub fn model(&self) -> &ZooModel {
        &self.model
    }

    /// The semantics model.
    pub fn semantics(&self) -> &SemanticsModel {
        &self.semantics
    }

    /// Active ramps in topological order.
    pub fn ramps(&self) -> &[RampPlacement] {
        &self.ramps
    }

    /// Number of active ramps.
    pub fn num_ramps(&self) -> usize {
        self.ramps.len()
    }

    /// Normalised depth of a ramp: fraction of the model's layers executed
    /// before its observation is available.
    pub fn depth_fraction(&self, ramp_idx: usize) -> f64 {
        let n = self.model.graph.len();
        if n <= 1 {
            return 1.0;
        }
        self.ramp_positions[ramp_idx] as f64 / (n - 1) as f64
    }

    /// Normalised depth of an arbitrary layer site.
    pub fn depth_fraction_of_site(&self, site: LayerId) -> f64 {
        let n = self.model.graph.len();
        if n <= 1 {
            return 1.0;
        }
        self.model.graph.topo_position(site) as f64 / (n - 1) as f64
    }

    /// Latency of the *original* model (no ramps) for a batch, in µs.
    pub fn vanilla_total_us(&self, batch: u32) -> f64 {
        self.model.latency.total_us(batch)
    }

    /// Total GPU time of a batch when every input runs to the end of the model
    /// and every active ramp is evaluated (Apparate's execution mode), in µs.
    pub fn gpu_batch_time_us(&self, batch: u32) -> f64 {
        self.vanilla_total_us(batch) + self.total_ramp_overhead_us(batch)
    }

    /// Sum of all active ramps' costs for a batch, in µs.
    pub fn total_ramp_overhead_us(&self, batch: u32) -> f64 {
        self.ramps.iter().map(|r| r.cost.latency_us(batch)).sum()
    }

    /// Offset (from batch start) at which ramp `ramp_idx`'s result is
    /// available: model prefix up to the ramp's site plus the cost of this and
    /// all earlier ramps, in µs.
    pub fn ramp_offset_us(&self, ramp_idx: usize, batch: u32) -> f64 {
        let prefix = self
            .model
            .latency
            .prefix_us(self.ramp_positions[ramp_idx], batch);
        let ramp_costs: f64 = self.ramps[..=ramp_idx]
            .iter()
            .map(|r| r.cost.latency_us(batch))
            .sum();
        prefix + ramp_costs
    }

    /// Offset at which the original model's final result is available when all
    /// active ramps are evaluated along the way, in µs.
    pub fn final_offset_us(&self, batch: u32) -> f64 {
        self.gpu_batch_time_us(batch)
    }

    /// Offset of the model prefix up to an arbitrary site with no ramp costs;
    /// used for optimal-exiting oracles which assume zero ramp overhead (§2.2).
    pub fn site_prefix_us(&self, site: LayerId, batch: u32) -> f64 {
        self.model
            .latency
            .prefix_us(self.model.graph.topo_position(site), batch)
    }

    /// Observation of ramp `ramp_idx` for one request.
    pub fn observe(&self, sample: &SampleSemantics, ramp_idx: usize) -> RampObservation {
        let ramp = &self.ramps[ramp_idx];
        self.semantics.observe(
            sample,
            ramp.site.0 as u64,
            self.depth_fraction(ramp_idx),
            ramp.capacity,
        )
    }

    /// Observation a hypothetical ramp at `site` with `capacity` would produce.
    /// Used by oracles that consider every feasible site.
    pub fn observe_at_site(
        &self,
        sample: &SampleSemantics,
        site: LayerId,
        capacity: f64,
    ) -> RampObservation {
        self.semantics.observe(
            sample,
            site.0 as u64,
            self.depth_fraction_of_site(site),
            capacity,
        )
    }

    /// Execute a batch: produce, for every request, the observation at every
    /// active ramp. Timing is queried separately because it is identical for
    /// all requests in the batch.
    pub fn execute_batch(&self, samples: &[SampleSemantics]) -> BatchExecution {
        let per_request = samples
            .iter()
            .map(|s| RequestObservations {
                ramp_observations: (0..self.ramps.len()).map(|i| self.observe(s, i)).collect(),
            })
            .collect();
        BatchExecution {
            batch_size: samples.len() as u32,
            per_request,
        }
    }

    /// Replace the ramp set, keeping model and semantics (used when the
    /// controller adjusts ramps at runtime).
    pub fn with_ramps(&self, ramps: Vec<RampPlacement>) -> ExecutionPlan {
        ExecutionPlan::new(self.model.clone(), self.semantics.clone(), ramps)
    }
}

/// Per-request observations produced by executing one batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestObservations {
    /// One observation per active ramp, in ramp order.
    pub ramp_observations: Vec<RampObservation>,
}

/// Result of executing one batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchExecution {
    /// Number of requests in the batch.
    pub batch_size: u32,
    /// Observations per request, in submission order.
    pub per_request: Vec<RequestObservations>,
}

impl BatchExecution {
    /// Earliest ramp index whose entropy is at or below its threshold, for a
    /// single request, given per-ramp thresholds. `None` means no exit.
    ///
    /// This helper implements the universal exit rule shared by Apparate and
    /// the static-EE baselines.
    pub fn earliest_exit(observations: &RequestObservations, thresholds: &[f64]) -> Option<usize> {
        observations
            .ramp_observations
            .iter()
            .zip(thresholds.iter())
            .position(|(obs, &thr)| thr > 0.0 && obs.entropy <= thr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::SemanticsModel;
    use apparate_model::zoo;

    fn lightweight_cost() -> LayerLatency {
        LayerLatency {
            fixed_us: 30.0,
            per_item_us: 10.0,
            batch_alpha: 0.7,
        }
    }

    fn plan_with_ramps(n_ramps: usize) -> ExecutionPlan {
        let model = zoo::resnet(50);
        let semantics = SemanticsModel::new(7, model.descriptor.overparameterization);
        let sites = model.graph.feasible_ramp_sites(None);
        let step = sites.len() / (n_ramps + 1);
        let ramps = (1..=n_ramps)
            .map(|i| RampPlacement {
                site: sites[i * step],
                cost: lightweight_cost(),
                capacity: 0.97,
            })
            .collect();
        ExecutionPlan::new(model, semantics, ramps)
    }

    #[test]
    fn vanilla_plan_has_no_overhead() {
        let model = zoo::vgg(13);
        let sem = SemanticsModel::new(1, 0.9);
        let plan = ExecutionPlan::vanilla(model, sem);
        assert_eq!(plan.num_ramps(), 0);
        assert_eq!(plan.total_ramp_overhead_us(8), 0.0);
        assert!((plan.gpu_batch_time_us(4) - plan.vanilla_total_us(4)).abs() < 1e-9);
    }

    #[test]
    fn ramp_offsets_are_increasing_and_bounded_by_total() {
        let plan = plan_with_ramps(4);
        for batch in [1u32, 4, 16] {
            let mut prev = 0.0;
            for i in 0..plan.num_ramps() {
                let off = plan.ramp_offset_us(i, batch);
                assert!(off > prev, "offsets must increase along the model");
                assert!(off < plan.final_offset_us(batch));
                prev = off;
            }
        }
    }

    #[test]
    fn gpu_time_includes_all_ramp_costs() {
        let plan = plan_with_ramps(3);
        let batch = 8;
        let expected = plan.vanilla_total_us(batch) + 3.0 * lightweight_cost().latency_us(batch);
        assert!((plan.gpu_batch_time_us(batch) - expected).abs() < 1e-6);
    }

    #[test]
    fn depth_fractions_are_ordered() {
        let plan = plan_with_ramps(5);
        let fractions: Vec<f64> = (0..5).map(|i| plan.depth_fraction(i)).collect();
        assert!(fractions.windows(2).all(|w| w[0] < w[1]));
        assert!(fractions.iter().all(|&f| (0.0..1.0).contains(&f)));
    }

    #[test]
    fn execute_batch_gives_observation_per_ramp_per_request() {
        let plan = plan_with_ramps(3);
        let samples: Vec<SampleSemantics> = (0..16).map(|i| SampleSemantics::new(i, 0.3)).collect();
        let exec = plan.execute_batch(&samples);
        assert_eq!(exec.batch_size, 16);
        assert_eq!(exec.per_request.len(), 16);
        for r in &exec.per_request {
            assert_eq!(r.ramp_observations.len(), 3);
        }
    }

    #[test]
    fn earliest_exit_respects_thresholds() {
        let obs = RequestObservations {
            ramp_observations: vec![
                RampObservation {
                    entropy: 0.8,
                    agrees: false,
                },
                RampObservation {
                    entropy: 0.3,
                    agrees: true,
                },
                RampObservation {
                    entropy: 0.1,
                    agrees: true,
                },
            ],
        };
        assert_eq!(BatchExecution::earliest_exit(&obs, &[0.0, 0.0, 0.0]), None);
        assert_eq!(
            BatchExecution::earliest_exit(&obs, &[0.0, 0.4, 0.0]),
            Some(1)
        );
        assert_eq!(
            BatchExecution::earliest_exit(&obs, &[0.9, 0.4, 0.2]),
            Some(0)
        );
        assert_eq!(
            BatchExecution::earliest_exit(&obs, &[0.5, 0.0, 0.2]),
            Some(2)
        );
    }

    #[test]
    fn with_ramps_swaps_ramp_set() {
        let plan = plan_with_ramps(2);
        let sites = plan.model().graph.feasible_ramp_sites(None);
        let new = plan.with_ramps(vec![RampPlacement {
            site: sites[0],
            cost: lightweight_cost(),
            capacity: 0.9,
        }]);
        assert_eq!(new.num_ramps(), 1);
        assert_eq!(plan.num_ramps(), 2);
    }

    #[test]
    fn easy_samples_agree_early_on_cv_model() {
        let plan = plan_with_ramps(4);
        let easy: Vec<SampleSemantics> = (0..200).map(|i| SampleSemantics::new(i, 0.05)).collect();
        let exec = plan.execute_batch(&easy);
        let agreements = exec
            .per_request
            .iter()
            .filter(|r| r.ramp_observations[0].agrees)
            .count();
        assert!(
            agreements as f64 / easy.len() as f64 > 0.9,
            "easy inputs should agree at the first ramp of an overparameterised CV model"
        );
    }
}
