//! Execution substrate for the Apparate reproduction.
//!
//! * [`semantics`] — the calibrated stochastic model of what a trained exit
//!   ramp observes for an input (entropy + agreement with the full model),
//!   preserving the monotonicity properties Apparate's algorithms rely on.
//! * [`engine`] — the policy-free execution plan: batch timing (per-layer
//!   latency + ramp overheads) and per-request ramp observations.
//! * [`gpu`] — device memory accounting and speed scaling.
//! * [`profiler`] — the non-blocking GPU → controller profiling stream with a
//!   PCIe-like cost model (§4.5 overhead analysis).
//!
//! Entry points: [`ExecutionPlan`] (what the GPU runs), [`SemanticsModel`]
//! (what the ramps observe), [`feedback_link`] (how the halves of §3's
//! controller loop talk).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod gpu;
pub mod profiler;
pub mod semantics;

pub use engine::{BatchExecution, ExecutionPlan, RampPlacement, RequestObservations};
pub use gpu::{GpuDevice, GpuError};
pub use profiler::{
    feedback_link, FeedbackReceiver, FeedbackSender, LinkCost, LinkStats, OverheadReport,
    ProfileRecord, RequestRelease, ThresholdUpdate, WirePayload, RAMP_DEFINITION_BYTES,
};
pub use semantics::{RampObservation, SampleSemantics, SemanticsModel};
