//! GPU device model: memory accounting and relative speed.
//!
//! Challenge C1 in the paper notes that ramps "must also be loaded into GPU
//! memory which is an increasingly precious resource" (e.g. DeeBERT inflates
//! BERT-base memory by 6.6 %). The reproduction tracks weight and ramp bytes
//! against a device capacity so experiments can report that overhead and
//! reject configurations that would not fit.

use serde::{Deserialize, Serialize};

/// Errors raised by memory accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// An allocation would exceed device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// Attempted to free more bytes than are allocated.
    Underflow,
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "GPU out of memory: requested {requested} bytes, {available} available"
            ),
            GpuError::Underflow => write!(f, "attempted to free unallocated GPU memory"),
        }
    }
}

impl std::error::Error for GpuError {}

/// A single GPU with a fixed memory capacity and a relative speed factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuDevice {
    /// Human-readable name (e.g. `"A6000"`).
    pub name: String,
    /// Total device memory in bytes.
    pub memory_bytes: u64,
    /// Relative compute speed; layer latencies are divided by this.
    pub speed_factor: f64,
    allocated_bytes: u64,
}

impl GpuDevice {
    /// An NVIDIA RTX A6000 (48 GB), the device used in the paper's evaluation.
    pub fn a6000() -> GpuDevice {
        GpuDevice {
            name: "A6000".into(),
            memory_bytes: 48 * 1024 * 1024 * 1024,
            speed_factor: 1.0,
            allocated_bytes: 0,
        }
    }

    /// A device with custom capacity (used by edge-resource experiments/tests).
    pub fn with_memory(name: impl Into<String>, memory_bytes: u64) -> GpuDevice {
        GpuDevice {
            name: name.into(),
            memory_bytes,
            speed_factor: 1.0,
            allocated_bytes: 0,
        }
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Bytes still free.
    pub fn available_bytes(&self) -> u64 {
        self.memory_bytes - self.allocated_bytes
    }

    /// Fraction of memory in use.
    pub fn utilization(&self) -> f64 {
        self.allocated_bytes as f64 / self.memory_bytes as f64
    }

    /// Allocate `bytes`, failing if the device is full.
    pub fn allocate(&mut self, bytes: u64) -> Result<(), GpuError> {
        if bytes > self.available_bytes() {
            return Err(GpuError::OutOfMemory {
                requested: bytes,
                available: self.available_bytes(),
            });
        }
        self.allocated_bytes += bytes;
        Ok(())
    }

    /// Free `bytes` previously allocated.
    pub fn free(&mut self, bytes: u64) -> Result<(), GpuError> {
        if bytes > self.allocated_bytes {
            return Err(GpuError::Underflow);
        }
        self.allocated_bytes -= bytes;
        Ok(())
    }

    /// Scale a latency (in µs) by the device speed.
    pub fn adjust_latency_us(&self, us: f64) -> f64 {
        us / self.speed_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6000_has_48gb() {
        let gpu = GpuDevice::a6000();
        assert_eq!(gpu.memory_bytes, 48 * 1024 * 1024 * 1024);
        assert_eq!(gpu.allocated_bytes(), 0);
        assert_eq!(gpu.utilization(), 0.0);
    }

    #[test]
    fn allocation_and_free_round_trip() {
        let mut gpu = GpuDevice::with_memory("test", 1000);
        gpu.allocate(600).unwrap();
        assert_eq!(gpu.available_bytes(), 400);
        assert!((gpu.utilization() - 0.6).abs() < 1e-12);
        gpu.free(100).unwrap();
        assert_eq!(gpu.allocated_bytes(), 500);
    }

    #[test]
    fn over_allocation_fails() {
        let mut gpu = GpuDevice::with_memory("tiny", 100);
        gpu.allocate(80).unwrap();
        let err = gpu.allocate(30).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { available: 20, .. }));
    }

    #[test]
    fn free_underflow_fails() {
        let mut gpu = GpuDevice::with_memory("tiny", 100);
        assert_eq!(gpu.free(10).unwrap_err(), GpuError::Underflow);
    }

    #[test]
    fn speed_factor_scales_latency() {
        let mut gpu = GpuDevice::a6000();
        gpu.speed_factor = 2.0;
        assert!((gpu.adjust_latency_us(1000.0) - 500.0).abs() < 1e-12);
    }
}
