//! The ramp-semantics model: what a trained exit ramp *would observe* for a
//! given input at a given model depth.
//!
//! The real system trains small ramps and reads their softmax entropy; the
//! reproduction replaces that with a calibrated stochastic model. What matters
//! for Apparate's algorithms is not the absolute numbers but the structural
//! properties the paper's design relies on:
//!
//! 1. **Threshold monotonicity** (§3.2): for a fixed ramp, raising the exit
//!    threshold admits a superset of inputs, so latency savings rise and
//!    accuracy falls monotonically. We guarantee this by deriving exit
//!    decisions from a single per-(input, ramp) entropy value.
//! 2. **Depth monotonicity** (§3.3): under the same threshold, a deeper ramp
//!    exits (weakly) more inputs than a shallower one, because it sees more of
//!    the original model's computation. We guarantee this by making the
//!    latent margin increase with depth while holding the per-input noise
//!    fixed across depths.
//! 3. **Determinism / order independence**: the observation for (input, ramp
//!    site) is a pure function of the workload seed, so oracles, counterfactual
//!    threshold evaluations and candidate-ramp estimates all see exactly what
//!    the live system saw. This uses [`DeterministicRng::unit_draw`].
//!
//! Calibration knob: the model descriptor's `overparameterization` value. High
//! values (CV models) mean most inputs are predictable very early; lower
//! values (BERT/GPT2 sentiment) push exits towards the middle of the model,
//! which is what produces the paper's CV-vs-NLP win gap.

use apparate_sim::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Semantic description of one input (or one generated token), produced by
/// the workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleSemantics {
    /// Stable identifier used to key deterministic draws.
    pub seed: u64,
    /// Intrinsic difficulty in `[0, 1]`: the fraction of the model's
    /// predictive power needed to classify/generate this input the same way
    /// the full model does. Easy inputs (small values) can exit early.
    pub difficulty: f64,
}

impl SampleSemantics {
    /// Construct, clamping difficulty into `[0, 1]`.
    pub fn new(seed: u64, difficulty: f64) -> Self {
        SampleSemantics {
            seed,
            difficulty: difficulty.clamp(0.0, 1.0),
        }
    }
}

/// What a ramp reports for one input: the paper streams exactly this pair from
/// the GPU to the controller ("simply a top-predicted result with an error
/// score", §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampObservation {
    /// Prediction-uncertainty score in `[0, 1]`; an input exits iff
    /// `entropy <= threshold`. Threshold 0 therefore disables exiting.
    pub entropy: f64,
    /// Whether the ramp's top prediction matches the original model's output.
    /// This is the accuracy ground truth Apparate gets for free because inputs
    /// always run to completion.
    pub agrees: bool,
}

/// Calibrated semantics model for one served model.
#[derive(Debug, Clone)]
pub struct SemanticsModel {
    rng: DeterministicRng,
    overparameterization: f64,
    /// Observation noise on the entropy signal.
    entropy_noise: f64,
    /// Noise on the agreement margin (captures ramp imperfection).
    agreement_noise: f64,
    /// Temperature of the margin → entropy mapping.
    temperature: f64,
}

impl SemanticsModel {
    /// Build a semantics model for a served model.
    ///
    /// `overparameterization` comes from the model descriptor; `seed` should
    /// be derived from the experiment seed so runs are reproducible.
    pub fn new(seed: u64, overparameterization: f64) -> SemanticsModel {
        SemanticsModel {
            rng: DeterministicRng::new(seed).child(0x5EED_5EED),
            overparameterization: overparameterization.clamp(0.0, 1.0),
            entropy_noise: 0.04,
            // Calibrated against the paper's NLP median wins (40–90 %,
            // Figure 13): the agreement margin must be tighter than the
            // entropy signal's temperature, otherwise boundary exits at
            // shallow ramps flip agreement so often that threshold tuning
            // systematically over-prices them and exits collapse onto the
            // deepest ramps (no latency win). Ramp imperfection is already
            // modelled by `capacity` and the per-ramp margin perturbation, so
            // this noise only captures readout disagreement at near-zero
            // margin.
            agreement_noise: 0.02,
            temperature: 0.08,
        }
    }

    /// Override the noise parameters (used by sensitivity experiments).
    pub fn with_noise(mut self, entropy_noise: f64, agreement_noise: f64) -> SemanticsModel {
        self.entropy_noise = entropy_noise.max(0.0);
        self.agreement_noise = agreement_noise.max(0.0);
        self
    }

    /// The predictive power available to a ramp placed after a fraction
    /// `depth_fraction ∈ [0, 1]` of the model's blocks, scaled by the ramp's
    /// `capacity ∈ [0, 1]` (how well its architecture + training approximate
    /// an ideal readout of those intermediates).
    ///
    /// At depth 1.0 with capacity 1.0 the power is 1.0 (the ramp *is* the
    /// model head); at depth 0 it is `overparameterization`-dependent but
    /// non-zero — overparameterised models already encode easy inputs early.
    pub fn ramp_power(&self, depth_fraction: f64, capacity: f64) -> f64 {
        let p = depth_fraction.clamp(0.0, 1.0);
        let c = capacity.clamp(0.0, 1.0);
        // Early power grows with overparameterisation; the exponent keeps the
        // curve concave so power accrues quickly at first for high overparam.
        let floor = 0.55 * self.overparameterization;
        let exponent = 1.6 - self.overparameterization;
        let power = floor + (1.0 - floor) * p.powf(exponent.max(0.2));
        (power * c).clamp(0.0, 1.0)
    }

    /// Latent margin between ramp power and input difficulty, plus a stable
    /// per-(input, ramp) perturbation.
    fn margin(
        &self,
        sample: &SampleSemantics,
        ramp_key: u64,
        depth_fraction: f64,
        capacity: f64,
    ) -> f64 {
        let power = self.ramp_power(depth_fraction, capacity);
        // The per-input noise must be identical across depths so that margin is
        // monotone in depth for each individual input; the per-ramp component
        // is small and only breaks ties between nearby ramps.
        let input_noise = self.rng.normal_draw(&[sample.seed, 1]) * 0.03;
        let ramp_noise = self.rng.normal_draw(&[sample.seed, ramp_key, 2]) * 0.015;
        power - sample.difficulty + input_noise + ramp_noise
    }

    /// Observe what the ramp at `ramp_key` (a stable site identifier, e.g. the
    /// layer id) with depth `depth_fraction` and `capacity` reports for
    /// `sample`.
    pub fn observe(
        &self,
        sample: &SampleSemantics,
        ramp_key: u64,
        depth_fraction: f64,
        capacity: f64,
    ) -> RampObservation {
        let margin = self.margin(sample, ramp_key, depth_fraction, capacity);
        // Entropy: logistic in the negative margin, i.e. confident (low
        // entropy) when power comfortably exceeds difficulty.
        let noise_e = self.rng.normal_draw(&[sample.seed, ramp_key, 3]) * self.entropy_noise;
        let entropy = (1.0 / (1.0 + (margin / self.temperature).exp()) + noise_e).clamp(0.0, 1.0);
        // Agreement: positive margin means the ramp's best guess matches the
        // full model, with a little slack for ramp imperfection.
        let noise_a = self.rng.normal_draw(&[sample.seed, ramp_key, 4]) * self.agreement_noise;
        let agrees = margin + noise_a > 0.0;
        RampObservation { entropy, agrees }
    }

    /// The final model's own "observation": by definition it agrees with
    /// itself and has minimal entropy. Exposed so policies can treat the model
    /// head as the last implicit exit.
    pub fn final_observation(&self) -> RampObservation {
        RampObservation {
            entropy: 0.0,
            agrees: true,
        }
    }

    /// The overparameterisation this model was built with.
    pub fn overparameterization(&self) -> f64 {
        self.overparameterization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(overparam: f64) -> SemanticsModel {
        SemanticsModel::new(1234, overparam)
    }

    fn samples(n: u64, difficulty: impl Fn(u64) -> f64) -> Vec<SampleSemantics> {
        (0..n)
            .map(|i| SampleSemantics::new(i, difficulty(i)))
            .collect()
    }

    #[test]
    fn observations_are_deterministic() {
        let m = model(0.8);
        let s = SampleSemantics::new(7, 0.4);
        let a = m.observe(&s, 42, 0.5, 0.95);
        let b = m.observe(&s, 42, 0.5, 0.95);
        assert_eq!(a.entropy.to_bits(), b.entropy.to_bits());
        assert_eq!(a.agrees, b.agrees);
    }

    #[test]
    fn ramp_power_monotone_in_depth_and_capacity() {
        let m = model(0.7);
        let mut last = 0.0;
        for i in 0..=10 {
            let p = m.ramp_power(i as f64 / 10.0, 1.0);
            assert!(p >= last, "power must be monotone in depth");
            last = p;
        }
        assert!(m.ramp_power(0.5, 0.5) < m.ramp_power(0.5, 1.0));
        assert!((m.ramp_power(1.0, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_ramps_exit_more_inputs_at_same_threshold() {
        let m = model(0.65);
        let ss = samples(2000, |i| (i as f64 * 0.61803) % 1.0);
        let threshold = 0.35;
        let exit_rate = |depth: f64| {
            ss.iter()
                .filter(|s| m.observe(s, (depth * 100.0) as u64, depth, 0.97).entropy <= threshold)
                .count() as f64
                / ss.len() as f64
        };
        let shallow = exit_rate(0.25);
        let mid = exit_rate(0.5);
        let deep = exit_rate(0.85);
        assert!(shallow <= mid + 0.02, "shallow {shallow} vs mid {mid}");
        assert!(mid <= deep + 0.02, "mid {mid} vs deep {deep}");
        assert!(deep > shallow, "depth must matter");
    }

    #[test]
    fn higher_threshold_exits_more_and_is_less_accurate() {
        let m = model(0.7);
        let ss = samples(3000, |i| (i as f64 * 0.37) % 1.0);
        let depth = 0.4;
        let eval = |threshold: f64| {
            let mut exits = 0usize;
            let mut correct_exits = 0usize;
            for s in &ss {
                let obs = m.observe(s, 40, depth, 0.97);
                if obs.entropy <= threshold {
                    exits += 1;
                    if obs.agrees {
                        correct_exits += 1;
                    }
                }
            }
            let acc_of_exits = if exits == 0 {
                1.0
            } else {
                correct_exits as f64 / exits as f64
            };
            (exits, acc_of_exits)
        };
        let (e_low, a_low) = eval(0.2);
        let (e_mid, a_mid) = eval(0.5);
        let (e_high, a_high) = eval(0.9);
        assert!(
            e_low <= e_mid && e_mid <= e_high,
            "exit counts must be monotone"
        );
        assert!(
            a_low >= a_mid - 0.02 && a_mid >= a_high - 0.02,
            "exit accuracy should fall"
        );
        assert!(e_high > e_low);
        assert!(a_low > a_high);
    }

    #[test]
    fn threshold_zero_never_exits() {
        let m = model(0.9);
        let ss = samples(500, |i| (i as f64 * 0.13) % 1.0);
        for s in &ss {
            let obs = m.observe(s, 10, 0.9, 1.0);
            assert!(
                obs.entropy > 0.0 || obs.agrees,
                "entropy is almost surely positive"
            );
        }
    }

    #[test]
    fn cv_like_models_exit_much_earlier_than_nlp_like() {
        let cv = model(0.90);
        let nlp = model(0.60);
        let ss = samples(2000, |i| (i as f64 * 0.777) % 1.0);
        let early_agreement = |m: &SemanticsModel| {
            ss.iter()
                .filter(|s| m.observe(s, 20, 0.2, 0.97).agrees)
                .count() as f64
                / ss.len() as f64
        };
        let cv_rate = early_agreement(&cv);
        let nlp_rate = early_agreement(&nlp);
        assert!(
            cv_rate > nlp_rate + 0.15,
            "CV early agreement {cv_rate} should clearly exceed NLP {nlp_rate}"
        );
    }

    #[test]
    fn difficulty_is_clamped() {
        let s = SampleSemantics::new(0, 2.5);
        assert_eq!(s.difficulty, 1.0);
        let s = SampleSemantics::new(0, -1.0);
        assert_eq!(s.difficulty, 0.0);
    }

    #[test]
    fn final_observation_is_perfect() {
        let m = model(0.5);
        let f = m.final_observation();
        assert!(f.agrees);
        assert_eq!(f.entropy, 0.0);
    }

    #[test]
    fn entropy_correlates_with_disagreement() {
        // Across many inputs, the average entropy of disagreeing observations
        // must exceed that of agreeing ones — this is what makes a threshold a
        // useful accuracy knob at all.
        let m = model(0.7);
        let ss = samples(4000, |i| (i as f64 * 0.317) % 1.0);
        let mut agree_e = (0.0, 0usize);
        let mut disagree_e = (0.0, 0usize);
        for s in &ss {
            let obs = m.observe(s, 33, 0.45, 0.97);
            if obs.agrees {
                agree_e = (agree_e.0 + obs.entropy, agree_e.1 + 1);
            } else {
                disagree_e = (disagree_e.0 + obs.entropy, disagree_e.1 + 1);
            }
        }
        let mean_agree = agree_e.0 / agree_e.1.max(1) as f64;
        let mean_disagree = disagree_e.0 / disagree_e.1.max(1) as f64;
        assert!(disagree_e.1 > 0, "some disagreements expected");
        assert!(
            mean_disagree > mean_agree + 0.1,
            "disagreeing entropy {mean_disagree} vs agreeing {mean_agree}"
        );
    }
}
