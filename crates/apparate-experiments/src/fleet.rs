//! Fleet-level comparison runs: one scenario served by N replicas.
//!
//! `apparate-serving::fleet` provides the platform half of scale-out
//! (sharding, per-replica simulation, outcome pooling); this module supplies
//! the experiment half: for one classification scenario it builds a fleet of
//! N identical replicas — **each with its own GPU-half/controller-half pair
//! over its own charged [`FeedbackSender`](apparate_exec::FeedbackSender) /
//! [`FeedbackReceiver`](apparate_exec::FeedbackReceiver) link** — and runs
//! the vanilla, static-EE and Apparate fleets over the *same* shared arrival
//! trace and the same shards, so the resulting [`ComparisonTable`] is a
//! fleet-level analogue of the paper's per-replica win tables. Per-replica
//! coordination charges are summed into one fleet [`OverheadRow`]. Note the
//! §4.5 bill's shape under sharding: uplink messages track *batches*, so the
//! fleet-wide count stays roughly constant as N grows (the same stream, cut
//! into N thinner profiling streams), while downlink updates can *drop* with
//! N — each controller sees only its shard, so tuning windows fill N× more
//! slowly and short shards may never trigger a retune after warm-start.
//!
//! [`run_generative_fleet`] is the decode-loop counterpart: the same three
//! policy families over one shared generative request stream, whole sequences
//! dispatched per replica (decode state cannot migrate), each Apparate
//! replica running its own warm-started *token* controller — full Algorithm 2
//! loop, ramp-set adjustment included — over its own charged link. Its tables
//! read in TPT (time-per-token) instead of response latency.

use apparate_baselines::{
    batch_time_fn, vanilla_policy, RampDeployment, StaticExitPolicy, StaticTokenPolicy,
};
use apparate_core::ApparateConfig;
use apparate_exec::{LinkStats, OverheadReport};
use apparate_serving::{
    available_threads, shard_arrivals, stream_arrivals, AdmissionConfig, FleetDispatch,
    FleetOutcome, FleetOutcomeView, GenerativeFleetOutcome, GenerativeReplicaFleet, IngestSession,
    IngestStats, LatencySummary, ReplicaFleet, ReplicaUnit, RequestShard, ServingOutcome,
    TokenReplicaUnit, TraceShard, VanillaTokenPolicy,
};
use apparate_sim::{Percentiles, SimDuration};
use apparate_telemetry::Telemetry;

use crate::controller::{ApparatePolicy, ApparateTokenPolicy};
use crate::report::{ComparisonTable, OverheadRow};
use crate::scenario::{
    classification_fixture, generative_calibration, generative_fixture, generative_requests,
    scenario_config, total_tokens, ClassificationScenario, GenerativeScenario, WorkloadTokens,
    STATIC_THRESHOLD,
};

/// Result of serving one scenario with a fleet of N replicas.
pub struct FleetRun {
    /// Base scenario name (without the fleet suffix).
    pub scenario: String,
    /// Fleet size.
    pub replicas: usize,
    /// Dispatch policy of the front end.
    pub dispatch: FleetDispatch,
    /// Fleet-level win table: vanilla | static-ee | apparate over the pooled
    /// records, wins against the vanilla *fleet* of the same size.
    pub table: ComparisonTable,
    /// §4.5 coordination charges summed across the N Apparate controllers.
    pub overhead: OverheadRow,
    /// Requests dispatched to each replica (identical across the three
    /// policy families — sharding depends only on arrivals and dispatch).
    pub shard_sizes: Vec<usize>,
}

impl FleetRun {
    /// The Apparate fleet's win row.
    pub fn apparate(&self) -> &crate::report::PolicyRow {
        self.table.row("apparate").expect("apparate fleet row")
    }
}

/// Sum one direction's link statistics across replicas.
fn add_stats(total: &mut LinkStats, part: &LinkStats) {
    total.messages += part.messages;
    total.bytes += part.bytes;
    total.total_latency += part.total_latency;
}

/// Run the vanilla, static-EE and Apparate fleets of `replicas` replicas over
/// a classification scenario's shared arrival trace. Every replica runs the
/// scenario's serving config; each Apparate replica is warm-started on the
/// shared bootstrap validation split and coordinates over its own link.
/// Replicas execute wall-clock parallel on up to [`available_threads`]
/// workers; the merged outcome is identical for any thread count.
pub fn run_classification_fleet(
    scenario: &ClassificationScenario,
    replicas: usize,
    dispatch: FleetDispatch,
) -> FleetRun {
    run_classification_fleet_threaded(scenario, replicas, dispatch, available_threads())
}

/// Like [`run_classification_fleet`], with an explicit worker-thread count
/// (`1` ⇒ the sequential path).
pub fn run_classification_fleet_threaded(
    scenario: &ClassificationScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    threads: usize,
) -> FleetRun {
    run_classification_fleet_with_config(scenario, replicas, dispatch, scenario_config(), threads)
}

/// Like [`run_classification_fleet_threaded`], with an explicit controller
/// config.
pub fn run_classification_fleet_with_config(
    scenario: &ClassificationScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    config: ApparateConfig,
    threads: usize,
) -> FleetRun {
    run_classification_fleet_traced(
        scenario,
        replicas,
        dispatch,
        config,
        &Telemetry::disabled(),
        threads,
    )
}

/// Like [`run_classification_fleet_with_config`], with a telemetry sink
/// attached to the Apparate fleet's run: the dispatcher traces its per-arrival
/// decisions, every replica's serving events land in that replica's buffer
/// (derived via [`Telemetry::for_replica`]), and each replica's controller and
/// links are traced. The vanilla and static-EE fleets stay untraced.
pub fn run_classification_fleet_traced(
    scenario: &ClassificationScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    config: ApparateConfig,
    telemetry: &Telemetry,
    threads: usize,
) -> FleetRun {
    let (_, trace, dep_budget) = classification_fixture(scenario, &config);
    // The dispatcher's per-request service estimate: the batch-1 vanilla
    // execution time (what a production front end knows about the model).
    let service_estimate = classification_service_estimate(&dep_budget);
    // Sharding depends only on arrivals and dispatch, so all three policy
    // families serve these exact shards.
    let shards = shard_arrivals(&trace, replicas, dispatch, service_estimate);
    run_classification_fleet_over_shards(
        scenario, replicas, dispatch, config, telemetry, threads, &shards,
    )
}

/// The front end's per-request service estimate for a classification fleet:
/// the batch-1 vanilla execution time of the deployed model.
fn classification_service_estimate(dep_budget: &RampDeployment) -> SimDuration {
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());
    SimDuration::from_micros_f64(vanilla_plan.vanilla_total_us(1))
}

/// Like [`run_classification_fleet_traced`], with the replay sharding step
/// replaced by streaming ingest: arrivals are consumed one at a time through
/// an [`IngestSession`] in passthrough mode (no admission), which makes
/// *exactly* the batch path's dispatch decisions — so the resulting table is
/// byte-identical to [`run_classification_fleet`] on the same scenario. This
/// is the determinism fence `tests/parallel.rs` diffs at every thread count.
pub fn run_classification_fleet_streamed(
    scenario: &ClassificationScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    threads: usize,
) -> FleetRun {
    let config = scenario_config();
    let (_, trace, dep_budget) = classification_fixture(scenario, &config);
    let service_estimate = classification_service_estimate(&dep_budget);
    let streamed = stream_arrivals(
        &trace,
        replicas,
        dispatch,
        service_estimate,
        None,
        &Telemetry::disabled(),
    );
    run_classification_fleet_over_shards(
        scenario,
        replicas,
        dispatch,
        config,
        &Telemetry::disabled(),
        threads,
        &streamed.shards,
    )
}

/// Serve pre-computed shards with the vanilla, static-EE and Apparate fleets.
/// Both the trace-replay path ([`run_classification_fleet_traced`]) and the
/// streamed-ingest paths ([`run_classification_fleet_streamed`],
/// [`run_admission_fleet`]) funnel through here, so identical shards produce
/// byte-identical tables regardless of how the arrivals were consumed.
#[allow(clippy::too_many_arguments)]
pub fn run_classification_fleet_over_shards(
    scenario: &ClassificationScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    config: ApparateConfig,
    telemetry: &Telemetry,
    threads: usize,
    shards: &[TraceShard],
) -> FleetRun {
    let split = scenario.workload.bootstrap_split();
    let serving_samples = split.serving;
    let n: usize = shards.iter().map(|s| s.indices.len()).sum();
    let (_, _, dep_budget) = classification_fixture(scenario, &config);
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());
    let budget_plan = dep_budget.plan.clone();
    let fleet = ReplicaFleet::new(replicas, dispatch, scenario.serving.clone());

    let mut summaries: Vec<LatencySummary> = Vec::new();

    // Vanilla fleet.
    {
        let mut policies: Vec<_> = (0..replicas)
            .map(|_| vanilla_policy(&vanilla_plan))
            .collect();
        let estimate = batch_time_fn(&vanilla_plan);
        let out = fleet
            .serve(shards, serving_samples)
            .units(
                policies
                    .iter_mut()
                    .enumerate()
                    .map(|(r, p)| ReplicaUnit::new(format!("vanilla-{r}"), p, &estimate)),
            )
            .threads(threads)
            .run();
        summaries.push(out.summary("vanilla"));
    }
    // Static-EE fleet (fixed ramps, fixed threshold, no controller).
    {
        let mut policies: Vec<_> = (0..replicas)
            .map(|_| StaticExitPolicy::uniform(budget_plan.clone(), STATIC_THRESHOLD, "static-ee"))
            .collect();
        let estimate = batch_time_fn(&budget_plan);
        let out = fleet
            .serve(shards, serving_samples)
            .units(
                policies
                    .iter_mut()
                    .enumerate()
                    .map(|(r, p)| ReplicaUnit::new(format!("static-ee-{r}"), p, &estimate)),
            )
            .threads(threads)
            .run();
        summaries.push(out.summary("static-ee"));
    }
    // Apparate fleet: one warm-started controller per replica, each over its
    // own charged link.
    let (apparate_out, overhead) = apparate_fleet(
        &fleet,
        shards,
        serving_samples,
        split.validation,
        &dep_budget,
        config,
        scenario.reference_batch,
        telemetry,
        threads,
    );
    summaries.push(apparate_out.summary("apparate"));

    FleetRun {
        scenario: scenario.name.clone(),
        replicas,
        dispatch,
        table: ComparisonTable::new(
            format!("{} ×{replicas} ({dispatch})", scenario.name),
            "latency",
            summaries,
        ),
        overhead: OverheadRow {
            scenario: format!("{} ×{replicas}", scenario.name),
            requests: n as u64,
            report: overhead,
        },
        shard_sizes: apparate_out.shard_sizes,
    }
}

/// Serve the pre-computed shards with one Apparate controller per replica and
/// sum the per-replica coordination charges.
#[allow(clippy::too_many_arguments)]
fn apparate_fleet(
    fleet: &ReplicaFleet,
    shards: &[TraceShard],
    serving_samples: &[apparate_exec::SampleSemantics],
    validation: &[apparate_exec::SampleSemantics],
    dep_budget: &RampDeployment,
    config: ApparateConfig,
    reference_batch: u32,
    telemetry: &Telemetry,
    threads: usize,
) -> (FleetOutcome<ServingOutcome>, OverheadReport) {
    // Only the Apparate fleet is traced: attach the sink to a clone of the
    // (config-only) fleet handle so the baseline families stay untraced.
    let fleet = fleet.clone().with_telemetry(telemetry.clone());
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());
    let mut policies: Vec<ApparatePolicy> = (0..fleet.replicas)
        .map(|r| {
            let mut policy = ApparatePolicy::warm_started(
                dep_budget.clone(),
                config,
                reference_batch,
                validation,
            );
            // Controller events carry this replica's tag and land in its
            // per-replica buffer, so parallel replicas never contend.
            policy.set_telemetry(telemetry.for_replica(r as u32));
            policy
        })
        .collect();
    // Same ramp-budget-padded estimator contract as the single-replica run:
    // the controller may change its ramp set at runtime, but total ramp
    // overhead never exceeds the user's budget.
    let estimate = |b: u32| {
        SimDuration::from_micros_f64(vanilla_plan.vanilla_total_us(b) * (1.0 + config.ramp_budget))
    };
    let out = fleet
        .serve(shards, serving_samples)
        .units(policies.iter_mut().enumerate().map(|(r, p)| {
            let feedback = p.feedback_sender();
            ReplicaUnit::new(format!("apparate-{r}"), p, &estimate).with_feedback(feedback)
        }))
        .threads(threads)
        .run();
    let mut overhead = OverheadReport::default();
    for policy in &policies {
        let report = policy.overhead_report();
        add_stats(&mut overhead.uplink, &report.uplink);
        add_stats(&mut overhead.downlink, &report.downlink);
    }
    (out, overhead)
}

/// Run the vanilla, static-EE and Apparate token-policy fleets of `replicas`
/// replicas over a generative scenario's shared request stream. Whole
/// sequences are dispatched (decode state cannot migrate); every replica runs
/// the scenario's continuous-batching config, and each Apparate replica
/// carries its own warm-started token controller over its own charged link —
/// running the full Algorithm 2 loop, ramp-set adjustment included. The
/// resulting [`FleetRun`] table is the TPT analogue of the classification
/// fleet's latency table.
pub fn run_generative_fleet(
    scenario: &GenerativeScenario,
    replicas: usize,
    dispatch: FleetDispatch,
) -> FleetRun {
    run_generative_fleet_threaded(scenario, replicas, dispatch, available_threads())
}

/// Like [`run_generative_fleet`], with an explicit worker-thread count
/// (`1` ⇒ the sequential path).
pub fn run_generative_fleet_threaded(
    scenario: &GenerativeScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    threads: usize,
) -> FleetRun {
    run_generative_fleet_traced(
        scenario,
        replicas,
        dispatch,
        &Telemetry::disabled(),
        threads,
    )
}

/// Like [`run_generative_fleet_threaded`], with a telemetry sink attached to
/// the Apparate fleet's run (see [`run_classification_fleet_traced`]).
pub fn run_generative_fleet_traced(
    scenario: &GenerativeScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    telemetry: &Telemetry,
    threads: usize,
) -> FleetRun {
    let config = scenario_config();
    let (_, dep_budget) = generative_fixture(scenario, &config);
    let per_token_estimate = generative_service_estimate(&dep_budget);
    let requests = generative_requests(scenario);
    let fleet = GenerativeReplicaFleet::new(replicas, dispatch, scenario.batching);
    // Sharding depends only on arrivals, output lengths and dispatch, so all
    // three policy families serve these exact shards.
    let shards = fleet.shard(&requests, per_token_estimate);
    run_generative_fleet_over_shards(scenario, replicas, dispatch, telemetry, threads, &shards)
}

/// The front end's per-*token* service estimate for a generative fleet: the
/// batch-1 decode-step time of the deployed model. A request's projected
/// service is this times its output length.
fn generative_service_estimate(dep_budget: &RampDeployment) -> SimDuration {
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());
    SimDuration::from_micros_f64(vanilla_plan.vanilla_total_us(1))
}

/// Like [`run_generative_fleet_threaded`], with the replay sharding step
/// replaced by streaming ingest: whole sequences are offered one at a time
/// through an [`IngestSession`] in passthrough mode, each weighted by its
/// projected decode time (`output_tokens × per-token estimate`), reproducing
/// the batch [`apparate_serving::shard_requests`] decisions exactly — so the
/// resulting table is byte-identical to [`run_generative_fleet`].
pub fn run_generative_fleet_streamed(
    scenario: &GenerativeScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    threads: usize,
) -> FleetRun {
    let config = scenario_config();
    let (_, dep_budget) = generative_fixture(scenario, &config);
    let per_token_estimate = generative_service_estimate(&dep_budget);
    let requests = generative_requests(scenario);
    let mut session = IngestSession::new(replicas, dispatch, per_token_estimate);
    for request in &requests {
        let service = SimDuration::from_micros_f64(
            per_token_estimate.as_micros() as f64 * request.output_tokens.max(1) as f64,
        );
        session.offer_weighted(request.arrival, service);
    }
    let streamed = session.finish();
    // Rebuild whole-sequence shards from the streamed dispatch decisions:
    // the shard carries the actual requests, not just arrival times.
    let shards: Vec<RequestShard> = streamed
        .shards
        .iter()
        .map(|shard| RequestShard {
            requests: shard.indices.iter().map(|&i| requests[i].clone()).collect(),
            indices: shard.indices.clone(),
        })
        .collect();
    run_generative_fleet_over_shards(
        scenario,
        replicas,
        dispatch,
        &Telemetry::disabled(),
        threads,
        &shards,
    )
}

/// Serve pre-computed request shards with the vanilla, static-EE and Apparate
/// token-policy fleets. Both the replay path ([`run_generative_fleet_traced`])
/// and the streamed path ([`run_generative_fleet_streamed`]) funnel through
/// here, so identical shards produce byte-identical tables.
pub fn run_generative_fleet_over_shards(
    scenario: &GenerativeScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    telemetry: &Telemetry,
    threads: usize,
    shards: &[RequestShard],
) -> FleetRun {
    let config = scenario_config();
    let (_, dep_budget) = generative_fixture(scenario, &config);
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());
    let budget_plan = dep_budget.plan.clone();
    let tokens = WorkloadTokens(&scenario.workload);
    let calibration = generative_calibration(&scenario.workload);
    let fleet = GenerativeReplicaFleet::new(replicas, dispatch, scenario.batching);

    let mut summaries: Vec<LatencySummary> = Vec::new();

    // Vanilla fleet.
    {
        let mut policies: Vec<_> = (0..replicas)
            .map(|_| {
                VanillaTokenPolicy::new(|b| {
                    SimDuration::from_micros_f64(vanilla_plan.vanilla_total_us(b))
                })
            })
            .collect();
        let out = fleet
            .serve(shards, &tokens)
            .units(
                policies
                    .iter_mut()
                    .enumerate()
                    .map(|(r, p)| TokenReplicaUnit::new(format!("vanilla-{r}"), p)),
            )
            .threads(threads)
            .run();
        summaries.push(out.summary("vanilla"));
    }
    // Static-EE fleet (fixed ramps, fixed threshold, no controller).
    {
        let mut policies: Vec<_> = (0..replicas)
            .map(|_| StaticTokenPolicy::uniform(budget_plan.clone(), STATIC_THRESHOLD, "static-ee"))
            .collect();
        let out = fleet
            .serve(shards, &tokens)
            .units(
                policies
                    .iter_mut()
                    .enumerate()
                    .map(|(r, p)| TokenReplicaUnit::new(format!("static-ee-{r}"), p)),
            )
            .threads(threads)
            .run();
        summaries.push(out.summary("static-ee"));
    }
    // Apparate fleet: one warm-started token controller per replica, each
    // over its own charged link.
    let (apparate_out, overhead) = apparate_generative_fleet(
        &fleet,
        shards,
        &tokens,
        &calibration,
        &dep_budget,
        config,
        scenario.reference_batch,
        telemetry,
        threads,
    );
    summaries.push(apparate_out.summary("apparate"));

    FleetRun {
        scenario: scenario.name.clone(),
        replicas,
        dispatch,
        table: ComparisonTable::new(
            format!("{} ×{replicas} ({dispatch})", scenario.name),
            "tpt",
            summaries,
        ),
        overhead: OverheadRow {
            scenario: format!("{} ×{replicas}", scenario.name),
            requests: total_tokens(scenario),
            report: overhead,
        },
        shard_sizes: apparate_out.shard_sizes,
    }
}

/// Serve the pre-computed request shards with one Apparate token controller
/// per replica and sum the per-replica coordination charges.
#[allow(clippy::too_many_arguments)]
fn apparate_generative_fleet(
    fleet: &GenerativeReplicaFleet,
    shards: &[RequestShard],
    tokens: &WorkloadTokens<'_>,
    calibration: &[apparate_exec::SampleSemantics],
    dep_budget: &RampDeployment,
    config: ApparateConfig,
    reference_batch: u32,
    telemetry: &Telemetry,
    threads: usize,
) -> (GenerativeFleetOutcome, OverheadReport) {
    let fleet = fleet.clone().with_telemetry(telemetry.clone());
    let mut policies: Vec<ApparateTokenPolicy> = (0..fleet.replicas)
        .map(|r| {
            let mut policy = ApparateTokenPolicy::warm_started(
                dep_budget.clone(),
                config,
                reference_batch,
                calibration,
            );
            // Controller events carry this replica's tag and land in its
            // per-replica buffer, so parallel replicas never contend.
            policy.set_telemetry(telemetry.for_replica(r as u32));
            policy
        })
        .collect();
    let out = fleet
        .serve(shards, tokens)
        .units(policies.iter_mut().enumerate().map(|(r, p)| {
            let feedback = p.feedback_sender();
            TokenReplicaUnit::new(format!("apparate-{r}"), p).with_feedback(feedback)
        }))
        .threads(threads)
        .run();
    let mut overhead = OverheadReport::default();
    for policy in &policies {
        let report = policy.overhead_report();
        add_stats(&mut overhead.uplink, &report.uplink);
        add_stats(&mut overhead.downlink, &report.downlink);
    }
    (out, overhead)
}

/// Result of one overload run: the same scenario served by the Apparate fleet
/// with and without SLO-driven admission control at the front end.
pub struct AdmissionFleetRun {
    /// Scenario name (carries the overload factor, e.g. `load×4`).
    pub scenario: String,
    /// Fleet size.
    pub replicas: usize,
    /// Dispatch policy of the front end.
    pub dispatch: FleetDispatch,
    /// Win table: vanilla | apparate | apparate+admission. The admission
    /// row's latencies and SLO verdicts are **honest**: measured from each
    /// request's *original* arrival (pacing delay included), with shed
    /// requests counting against attainment, never hidden.
    pub table: ComparisonTable,
    /// Front-end counters from the admission-controlled ingest session.
    pub ingest: IngestStats,
    /// Hysteresis oscillations in the admission decision log (pinned at zero
    /// by `tests/admission.rs`).
    pub oscillations: usize,
    /// SLO attainment of the Apparate fleet *without* admission control:
    /// on-time requests over offered requests.
    pub attainment_without: f64,
    /// SLO attainment *with* admission control: on-time requests (measured
    /// from original arrival) over offered requests — shed requests count as
    /// misses.
    pub attainment_with: f64,
    /// Requests dispatched to each replica under admission control.
    pub shard_sizes: Vec<usize>,
}

impl AdmissionFleetRun {
    /// Attainment improvement from admission control, in percentage points.
    pub fn attainment_delta_points(&self) -> f64 {
        (self.attainment_with - self.attainment_without) * 100.0
    }
}

/// Serve one classification scenario — typically an overloaded one, see
/// [`crate::scenario::diurnal_scenario`] and
/// [`ClassificationScenario::with_arrival_scale`] — with the Apparate fleet
/// twice: once over plain replay shards (every arrival dispatched, queues
/// unbounded) and once behind the streaming admission front end
/// ([`stream_arrivals`] with an [`AdmissionConfig`] derived from the
/// scenario's SLO). The vanilla fleet over the replay shards anchors the win
/// table.
///
/// Accounting is honest: admission-run latencies are measured from each
/// request's *original* arrival time (so pacing delay is charged, not
/// hidden), and attainment is on-time requests over *offered* requests, so
/// every shed request counts as a miss. The headline claim this supports:
/// under multi-× overload, shedding the requests the SLO model predicts
/// cannot be served on time keeps the survivors' queueing delay bounded and
/// raises fleet-wide attainment over the admit-everything fleet.
pub fn run_admission_fleet(
    scenario: &ClassificationScenario,
    replicas: usize,
    dispatch: FleetDispatch,
    threads: usize,
) -> AdmissionFleetRun {
    let config = scenario_config();
    let slo = scenario
        .serving
        .slo
        .expect("admission control needs a response SLO");
    let (_, trace, dep_budget) = classification_fixture(scenario, &config);
    let service_estimate = classification_service_estimate(&dep_budget);

    // Pass 1: the admit-everything fleet over plain replay shards (the
    // vanilla row of the same run anchors the table's wins).
    let replay_shards = shard_arrivals(&trace, replicas, dispatch, service_estimate);
    let replay = run_classification_fleet_over_shards(
        scenario,
        replicas,
        dispatch,
        config,
        &Telemetry::disabled(),
        threads,
        &replay_shards,
    );
    let vanilla_summary = replay
        .table
        .row("vanilla")
        .expect("vanilla row")
        .summary
        .clone();
    let apparate_row = replay.table.row("apparate").expect("apparate row");
    let apparate_summary = apparate_row.summary.clone();
    // Replay dispatches every offered arrival, so attainment is just the
    // on-time fraction (records judge SLO against true arrival times).
    let attainment_without = 1.0 - apparate_summary.slo_violation_rate;

    // Pass 2: the same fleet behind the admission front end. Queue bound:
    // the number of batch-1 service slots that fit in one SLO — a request
    // admitted behind a full queue is exactly the request the model predicts
    // cannot finish inside its deadline, so a sustained overload sheds
    // instead of building backlog that defeats the SLO for everyone.
    let service_us = service_estimate.as_micros().max(1);
    let queue_bound = ((slo.as_micros() / service_us) as usize).max(1);
    let admission = AdmissionConfig::for_slo(slo, queue_bound);
    let streamed = stream_arrivals(
        &trace,
        replicas,
        dispatch,
        service_estimate,
        Some(admission),
        &Telemetry::disabled(),
    );

    let split = scenario.workload.bootstrap_split();
    let fleet = ReplicaFleet::new(replicas, dispatch, scenario.serving.clone());
    let (admitted_out, _overhead) = apparate_fleet(
        &fleet,
        &streamed.shards,
        split.serving,
        split.validation,
        &dep_budget,
        config,
        scenario.reference_batch,
        &Telemetry::disabled(),
        threads,
    );

    // Honest admission-row accounting: a record's id is its index within its
    // shard, whose `indices` point back at the offered stream — so recover
    // the original arrival and judge latency and the SLO against it.
    let mut adjusted_ms: Vec<f64> = Vec::new();
    let mut on_time = 0usize;
    let mut served = 0usize;
    for (replica, outcome) in admitted_out.per_replica.iter().enumerate() {
        let shard = &streamed.shards[replica];
        for record in &outcome.records {
            let original = trace.times()[shard.indices[record.id as usize]];
            adjusted_ms.push(record.released.saturating_since(original).as_millis_f64());
            served += 1;
            if record.released <= original + slo {
                on_time += 1;
            }
        }
    }
    let mut admission_summary = admitted_out.summary("apparate+admission");
    admission_summary.latency_ms = Percentiles::from_samples(&adjusted_ms);
    admission_summary.slo_violation_rate = if served == 0 {
        0.0
    } else {
        (served - on_time) as f64 / served as f64
    };
    let offered = streamed.stats.offered.max(1);
    let attainment_with = on_time as f64 / offered as f64;

    AdmissionFleetRun {
        scenario: scenario.name.clone(),
        replicas,
        dispatch,
        table: ComparisonTable::new(
            format!("{} ×{replicas} ({dispatch}) admission", scenario.name),
            "latency",
            vec![vanilla_summary, apparate_summary, admission_summary],
        ),
        ingest: streamed.stats,
        oscillations: streamed.oscillations(),
        attainment_without,
        attainment_with,
        shard_sizes: admitted_out.shard_sizes,
    }
}

/// Render the overload summary across admission runs: one row per
/// [`AdmissionFleetRun`], showing the front-end counters and the attainment
/// of the Apparate fleet with and without admission control. Deterministic,
/// like every other table in [`crate::report`].
pub fn render_admission_summary(runs: &[AdmissionFleetRun]) -> String {
    let mut out = crate::report::title_rule("overload admission summary");
    out.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>7} {:>6} {:>7} {:>4} {:>8} {:>8} {:>7}\n",
        "scenario",
        "offered",
        "shed",
        "shed%",
        "max_q",
        "nudges",
        "osc",
        "att w/o",
        "att w/",
        "Δ pts",
    ));
    for run in runs {
        out.push_str(&format!(
            "{:<24} {:>8} {:>8} {:>6.1}% {:>6} {:>7} {:>4} {:>7.1}% {:>7.1}% {:>+7.1}\n",
            format!("{} ×{}", run.scenario, run.replicas),
            run.ingest.offered,
            run.ingest.shed,
            run.ingest.shed_rate() * 100.0,
            run.ingest.max_depth,
            run.ingest.nudges,
            run.oscillations,
            run.attainment_without * 100.0,
            run.attainment_with * 100.0,
            run.attainment_delta_points(),
        ));
    }
    out
}

/// Render the scale-out summary across fleet sizes: one row per [`FleetRun`],
/// showing the Apparate fleet's pooled latency, its wins against the vanilla
/// fleet of the same size, and the summed coordination bill. Deterministic,
/// like every other table in [`crate::report`].
pub fn render_fleet_summary(runs: &[FleetRun]) -> String {
    let title = match runs.first() {
        Some(run) => format!("fleet scale-out ({}, {})", run.scenario, run.dispatch),
        None => "fleet scale-out".to_string(),
    };
    let mut out = crate::report::title_rule(&title);
    out.push_str(&format!(
        "{:>8} {:>13} {:>9} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8} {:>8}\n",
        "replicas",
        "shard min/max",
        "p50 ms",
        "p95 ms",
        "win@p50",
        "win@p95",
        "acc",
        "up msgs",
        "dn msgs",
        "ms/msg",
    ));
    for run in runs {
        let row = run.apparate();
        let min = run.shard_sizes.iter().copied().min().unwrap_or(0);
        let max = run.shard_sizes.iter().copied().max().unwrap_or(0);
        let report = &run.overhead.report;
        let ms_per_msg = if report.total_messages() == 0 {
            0.0
        } else {
            report.total_latency().as_millis_f64() / report.total_messages() as f64
        };
        out.push_str(&format!(
            "{:>8} {:>13} {:>9.2} {:>9.2} {:>7.1}% {:>7.1}% {:>7.3} {:>8} {:>8} {:>8.3}\n",
            run.replicas,
            format!("{min}/{max}"),
            row.summary.latency_ms.p50,
            row.summary.latency_ms.p95,
            row.wins.p50,
            row.wins.p95,
            row.summary.accuracy,
            report.uplink.messages,
            report.downlink.messages,
            ms_per_msg,
        ));
    }
    out
}
