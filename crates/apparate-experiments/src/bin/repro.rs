//! `repro` — the end-to-end comparison harness.
//!
//! Runs Apparate head-to-head against the baseline family (vanilla,
//! static-ee, uniform-ee, oneshot-tuned, oracle) over the CV, NLP and
//! generative scenarios and prints paper-style latency/accuracy/throughput win
//! tables. Output is deterministic: the same `--seed` always produces the
//! same tables.
//!
//! The actual scenario running lives in
//! [`apparate_experiments::run_scenarios`], so other harnesses (the `e2e`
//! bench suite in particular) can reuse it; this binary only parses arguments
//! and renders the tables.
//!
//! ```text
//! repro [--seed N] [--quick] [--scenario cv|nlp|generative|all] [--sweep]
//! ```
//!
//! `--sweep` switches to the scale-out/sensitivity mode: fleet-level win
//! tables for 1/2/4/8 replicas over the shared CV trace (least-loaded
//! dispatch), then the SLO (Figure 17) and accuracy-constraint (Figure 19)
//! sensitivity grids.

use apparate_experiments::{
    render_fleet_summary, run_classification_fleet, run_scenarios_full, sensitivity_sweeps,
    OverheadTable, ReproSizes, ScenarioSelect, SensitivityGrid,
};
use apparate_serving::FleetDispatch;

struct Args {
    seed: u64,
    quick: bool,
    scenario: Option<ScenarioSelect>,
    sweep: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        quick: false,
        scenario: None,
        sweep: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().ok_or("--seed requires a value")?;
                args.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--quick" => args.quick = true,
            "--sweep" => args.sweep = true,
            "--scenario" => {
                let value = it.next().ok_or("--scenario requires a value")?;
                args.scenario = Some(value.parse()?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--seed N] [--quick] [--scenario cv|nlp|generative|all] [--sweep]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.sweep && args.scenario.is_some() {
        return Err(
            "--sweep runs its own scenario grid (CV fleet + CV/NLP sensitivity) and cannot \
             be combined with --scenario"
                .to_string(),
        );
    }
    Ok(args)
}

/// Print to stdout, exiting quietly when the consumer has gone away
/// (`repro | head` must not panic on the broken pipe).
fn emit(text: &str) {
    use std::io::Write;
    if let Err(error) = std::io::stdout().write_all(text.as_bytes()) {
        if error.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed writing to stdout: {error}");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("repro: {message}");
            std::process::exit(2);
        }
    };
    let sizes = if args.quick {
        ReproSizes::quick()
    } else {
        ReproSizes::full()
    };
    if args.sweep {
        run_sweep(args.seed, args.quick, sizes);
        return;
    }

    emit(&format!(
        "apparate repro  (seed {}, {} mode)\n\
         policies: vanilla | static-ee | uniform-ee | oneshot-tuned | apparate | oracle\n\n",
        args.seed,
        if args.quick { "quick" } else { "full" }
    ));

    let runs = run_scenarios_full(
        args.seed,
        sizes,
        args.scenario.unwrap_or(ScenarioSelect::All),
    );
    let mut overhead_rows = Vec::new();
    for run in runs {
        emit(&format!("{}\n", run.table.render()));
        overhead_rows.push(run.overhead);
    }
    emit(&format!("{}\n", OverheadTable::new(overhead_rows).render()));

    emit(
        "wins are % latency reduction vs. vanilla at the same percentile (higher is better);\n\
         oracle is the zero-overhead hindsight optimal (lower bound), not a realisable policy;\n\
         the overhead table charges the GPU->controller profiling stream (up) and the\n\
         controller->GPU threshold/ramp updates (down) against the PCIe link model (~0.5 ms/msg).\n",
    );
}

/// The `--sweep` mode: fleet scale-out tables (1/2/4/8 replicas over the
/// shared CV trace, least-loaded dispatch, one controller per replica), then
/// the SLO and accuracy-constraint sensitivity grids.
fn run_sweep(seed: u64, quick: bool, sizes: ReproSizes) {
    // Sensitivity points and fleet runs re-simulate the scenario per grid
    // cell, so they run at (at most) quick scale even in full mode.
    let frames = sizes.cv_frames.min(ReproSizes::quick().cv_frames);
    let grid = if quick {
        SensitivityGrid::quick()
    } else {
        SensitivityGrid::paper()
    };
    emit(&format!(
        "apparate repro --sweep  (seed {seed}, {} mode, {frames}-frame CV stream)\n\
         fleet: one GPU-half/controller-half pair per replica, each over its own charged link\n\n",
        if quick { "quick" } else { "full" }
    ));

    // The fleet serves the aggregate stream of six 30 fps cameras: heavy
    // enough that one replica queues without bound, light enough that the
    // 8-replica fleet is comfortably provisioned — the regime where the
    // dispatcher and the per-replica controllers both matter.
    let scenario = apparate_experiments::cv_scenario(seed, frames).with_arrival_scale(6.0);
    let mut runs = Vec::new();
    for replicas in [1usize, 2, 4, 8] {
        let run = run_classification_fleet(&scenario, replicas, FleetDispatch::LeastLoaded);
        emit(&format!("{}\n", run.table.render()));
        runs.push(run);
    }
    emit(&format!("{}\n", render_fleet_summary(&runs)));

    for table in sensitivity_sweeps(seed, frames, &grid) {
        emit(&format!("{}\n", table.render()));
    }
    emit(
        "fleet wins compare each Apparate fleet against the vanilla fleet of the same size\n\
         over the pooled per-replica records; sensitivity rows duel apparate against vanilla\n\
         with one knob moved and everything else (seed, arrivals, semantics draws) held fixed.\n",
    );
}
