//! `repro` — the end-to-end comparison harness.
//!
//! Runs Apparate head-to-head against the baseline family (vanilla,
//! static-ee, uniform-ee, oneshot-tuned, oracle) over the CV, NLP and
//! generative scenarios and prints paper-style latency/accuracy/throughput win
//! tables. Output is deterministic: the same `--seed` always produces the
//! same tables.
//!
//! The actual scenario running lives in
//! [`apparate_experiments::run_scenarios`], so other harnesses (the `e2e`
//! bench suite in particular) can reuse it; this binary only parses arguments
//! and renders the tables.
//!
//! ```text
//! repro [--seed N] [--quick] [--scenario cv|nlp|generative|all] [--sweep]
//!       [--threads N] [--full-retune]
//!       [--trace-out PATH] [--metrics-out PATH] [--chrome-out PATH]
//! ```
//!
//! `--sweep` switches to the scale-out/sensitivity mode: fleet-level win
//! tables for 1/2/4/8 replicas over the shared CV trace *and* the shared
//! generative request stream (least-loaded dispatch), the overload admission
//! tables (the bursty diurnal stream at 2/4/8× capacity, with and without
//! the SLO-driven admission front end), then the SLO (Figure 17) and
//! accuracy-constraint (Figure 19) sensitivity grids.
//! `--threads N` bounds the worker threads fleet replicas run on (default:
//! available parallelism; `1` forces the sequential path). The thread count
//! only changes wall-clock time — tables and telemetry exports are
//! byte-identical for every value.
//!
//! The `--*-out` flags enable telemetry: the Apparate runs (baselines stay
//! untraced) record the structured event trace and the sampled metrics
//! registry, written after the tables as JSON-lines (`--trace-out`,
//! `--metrics-out`) and/or a chrome://tracing array (`--chrome-out`). Without
//! them the sink is the zero-cost no-op and the tables are byte-identical to
//! an untraced build. An unwritable path is a hard error (exit 1) — partial
//! observability must not look like success.
//!
//! `--full-retune` runs every controller tuning round through the full greedy
//! re-tune (the incremental tuner's correctness oracle) instead of the
//! incremental delta tuner. The two are exactly equivalent, so the tables must
//! be byte-identical with and without the flag — CI's `tuning-equivalence`
//! step diffs them. Scenario mode only (`--sweep` pins its own config).

use apparate_experiments::{
    render_admission_summary, render_fleet_summary, run_admission_fleet,
    run_classification_fleet_threaded, run_classification_fleet_traced,
    run_generative_fleet_threaded, run_scenarios_traced_config, scenario_config,
    sensitivity_sweeps, OverheadTable, ReproSizes, ScenarioSelect, SensitivityGrid,
};
use apparate_serving::{available_threads, FleetDispatch};
use apparate_telemetry::{
    render_chrome_trace, render_metrics_json_lines, render_trace_json_lines, Telemetry,
    TelemetryConfig,
};

/// One-line usage synopsis, printed by `--help` and after every argument
/// error (exit code 2).
const USAGE: &str = "usage: repro [--seed N] [--quick] [--scenario cv|nlp|generative|all] \
     [--sweep] [--threads N] [--full-retune] [--trace-out PATH] [--metrics-out PATH] \
     [--chrome-out PATH]";

#[derive(Debug, PartialEq)]
struct Args {
    seed: u64,
    quick: bool,
    scenario: Option<ScenarioSelect>,
    sweep: bool,
    threads: Option<usize>,
    full_retune: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    chrome_out: Option<String>,
}

impl Args {
    /// True when any export flag was given, i.e. the run should record.
    fn wants_telemetry(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.chrome_out.is_some()
    }

    /// The fleet worker-thread count: `--threads N` when given, else the
    /// machine's available parallelism. Never printed — output must not
    /// depend on it.
    fn threads(&self) -> usize {
        self.threads.unwrap_or_else(available_threads)
    }
}

/// Parse command-line arguments (exclusive of the binary name). Pure so the
/// rejection paths are unit-testable; `main` turns `Err` into usage + exit 2.
fn parse_args<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        quick: false,
        scenario: None,
        sweep: false,
        threads: None,
        full_retune: false,
        trace_out: None,
        metrics_out: None,
        chrome_out: None,
    };
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().ok_or("--seed requires a value")?;
                args.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--quick" => args.quick = true,
            "--sweep" => args.sweep = true,
            "--full-retune" => args.full_retune = true,
            "--threads" => {
                let value = it.next().ok_or("--threads requires a value")?;
                let threads: usize = value
                    .parse()
                    .map_err(|_| format!("invalid thread count: {value}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(threads);
            }
            "--scenario" => {
                let value = it.next().ok_or("--scenario requires a value")?;
                args.scenario = Some(value.parse()?);
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().ok_or("--trace-out requires a path")?);
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out requires a path")?);
            }
            "--chrome-out" => {
                args.chrome_out = Some(it.next().ok_or("--chrome-out requires a path")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.sweep && args.scenario.is_some() {
        return Err(
            "--sweep runs its own scenario grid (CV + generative fleets, CV/NLP sensitivity) \
             and cannot be combined with --scenario"
                .to_string(),
        );
    }
    if args.sweep && args.full_retune {
        return Err(
            "--full-retune selects the tuning oracle for the scenario tables and cannot be \
             combined with --sweep (the sweep grid pins its own controller configuration)"
                .to_string(),
        );
    }
    Ok(args)
}

/// Print to stdout, exiting quietly when the consumer has gone away
/// (`repro | head` must not panic on the broken pipe).
fn emit(text: &str) {
    use std::io::Write;
    if let Err(error) = std::io::stdout().write_all(text.as_bytes()) {
        if error.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed writing to stdout: {error}");
    }
}

/// Write one telemetry export file, or die with exit 1: a run that was asked
/// for a trace and silently lost it would read as "nothing noteworthy
/// happened", which is the one lie an observability tool must not tell.
fn write_export(path: &str, contents: &str, what: &str) {
    if let Err(error) = std::fs::write(path, contents) {
        eprintln!("repro: cannot write {what} to {path}: {error}");
        std::process::exit(1);
    }
}

/// Snapshot the recorder and write every requested export, then print an
/// explicit accounting line (captured *and* dropped counts — bounded buffers
/// never truncate silently).
fn export_telemetry(args: &Args, telemetry: &Telemetry) {
    let Some(snapshot) = telemetry.snapshot() else {
        return;
    };
    if let Some(path) = &args.trace_out {
        write_export(path, &render_trace_json_lines(&snapshot), "event trace");
    }
    if let Some(path) = &args.metrics_out {
        write_export(path, &render_metrics_json_lines(&snapshot), "metrics");
    }
    if let Some(path) = &args.chrome_out {
        write_export(path, &render_chrome_trace(&snapshot), "chrome trace");
    }
    let points: usize = snapshot.series.iter().map(|s| s.points.len()).sum();
    emit(&format!(
        "telemetry: {} events captured ({} dropped), {} series / {} points ({} dropped), \
         {} counters, {} histograms\n",
        snapshot.events.len(),
        snapshot.events_dropped,
        snapshot.series.len(),
        points,
        snapshot.series_points_dropped(),
        snapshot.counters.len(),
        snapshot.histograms.len(),
    ));
    for (path, what) in [
        (&args.trace_out, "trace"),
        (&args.metrics_out, "metrics"),
        (&args.chrome_out, "chrome trace"),
    ] {
        if let Some(path) = path {
            emit(&format!("telemetry: {what} written to {path}\n"));
        }
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("repro: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let sizes = if args.quick {
        ReproSizes::quick()
    } else {
        ReproSizes::full()
    };
    let telemetry = if args.wants_telemetry() {
        Telemetry::recording(TelemetryConfig::default())
    } else {
        Telemetry::disabled()
    };
    if args.sweep {
        run_sweep(args.seed, args.quick, sizes, &telemetry, args.threads());
        export_telemetry(&args, &telemetry);
        return;
    }

    emit(&format!(
        "apparate repro  (seed {}, {} mode)\n\
         policies: vanilla | static-ee | uniform-ee | oneshot-tuned | apparate | oracle\n\n",
        args.seed,
        if args.quick { "quick" } else { "full" }
    ));

    let runs = run_scenarios_traced_config(
        args.seed,
        sizes,
        args.scenario.unwrap_or(ScenarioSelect::All),
        &telemetry,
        scenario_config().with_full_retune(args.full_retune),
    );
    let mut overhead_rows = Vec::new();
    for run in runs {
        emit(&format!("{}\n", run.table.render()));
        overhead_rows.push(run.overhead);
    }
    emit(&format!("{}\n", OverheadTable::new(overhead_rows).render()));

    emit(
        "wins are % latency reduction vs. vanilla at the same percentile (higher is better);\n\
         oracle is the zero-overhead hindsight optimal (lower bound), not a realisable policy;\n\
         the overhead table charges the GPU->controller profiling stream (up) and the\n\
         controller->GPU threshold/ramp updates (down) against the PCIe link model (~0.5 ms/msg).\n",
    );
    export_telemetry(&args, &telemetry);
}

/// The `--sweep` mode: fleet scale-out tables (1/2/4/8 replicas over the
/// shared CV trace and the shared generative request stream, least-loaded
/// dispatch, one controller per replica), then the SLO and accuracy-constraint
/// sensitivity grids.
///
/// When recording, only the 8-replica CV fleet's Apparate run is traced: the
/// recorder keys series by `(name, replica)`, so tracing several fleet sizes
/// (or the generative fleet, which reuses replica indices 0..N with its own
/// sim clock) into one snapshot would interleave restarting clocks within a
/// series. One fully-provisioned fleet gives every replica a clean
/// queue-depth/link series.
fn run_sweep(seed: u64, quick: bool, sizes: ReproSizes, telemetry: &Telemetry, threads: usize) {
    // Sensitivity points and fleet runs re-simulate the scenario per grid
    // cell, so they run at (at most) quick scale even in full mode.
    let frames = sizes.cv_frames.min(ReproSizes::quick().cv_frames);
    let nlp_requests = sizes.nlp_requests.min(ReproSizes::quick().nlp_requests);
    let gen_requests = sizes.gen_requests.min(ReproSizes::quick().gen_requests);
    let grid = if quick {
        SensitivityGrid::quick()
    } else {
        SensitivityGrid::paper()
    };
    emit(&format!(
        "apparate repro --sweep  (seed {seed}, {} mode, {frames}-frame CV stream, \
         {gen_requests}-request generative stream)\n\
         fleet: one GPU-half/controller-half pair per replica, each over its own charged link\n\n",
        if quick { "quick" } else { "full" }
    ));

    // The fleet serves the aggregate stream of six 30 fps cameras: heavy
    // enough that one replica queues without bound, light enough that the
    // 8-replica fleet is comfortably provisioned — the regime where the
    // dispatcher and the per-replica controllers both matter.
    let scenario = apparate_experiments::cv_scenario(seed, frames).with_arrival_scale(6.0);
    let mut runs = Vec::new();
    for replicas in [1usize, 2, 4, 8] {
        let run = if replicas == 8 {
            run_classification_fleet_traced(
                &scenario,
                replicas,
                FleetDispatch::LeastLoaded,
                scenario_config(),
                telemetry,
                threads,
            )
        } else {
            run_classification_fleet_threaded(
                &scenario,
                replicas,
                FleetDispatch::LeastLoaded,
                threads,
            )
        };
        emit(&format!("{}\n", run.table.render()));
        runs.push(run);
    }
    emit(&format!("{}\n", render_fleet_summary(&runs)));

    // The generative fleet serves eight tenants' aggregate summarisation
    // stream: one replica's continuous batch pins at its cap (median TPT
    // collapses toward the full-batch step time while sequences queue), two
    // replicas are still transiently overloaded, and ≥4 replicas decode
    // comfortably thin batches — whole sequences dispatched, every replica's
    // token controller running the full Algorithm 2 loop over its own link.
    let generative =
        apparate_experiments::generative_scenario(seed, gen_requests).with_arrival_scale(8.0);
    let mut gen_runs = Vec::new();
    for replicas in [1usize, 2, 4, 8] {
        let run = run_generative_fleet_threaded(
            &generative,
            replicas,
            FleetDispatch::LeastLoaded,
            threads,
        );
        emit(&format!("{}\n", run.table.render()));
        gen_runs.push(run);
    }
    emit(&format!("{}\n", render_fleet_summary(&gen_runs)));

    // Overload sections: the bursty diurnal stream pushed 2–8× past fleet
    // capacity, served by the Apparate fleet with and without the SLO-driven
    // admission front end (bounded queues + rate-slew pacing + shedding).
    // Accounting is honest: admission latencies are judged from original
    // arrivals and shed requests count against attainment.
    let mut admission_runs = Vec::new();
    for scale in [2.0, 4.0, 8.0] {
        let diurnal =
            apparate_experiments::diurnal_scenario(seed, frames).with_arrival_scale(scale);
        let run = run_admission_fleet(&diurnal, 2, FleetDispatch::LeastLoaded, threads);
        emit(&format!("{}\n", run.table.render()));
        admission_runs.push(run);
    }
    emit(&format!("{}\n", render_admission_summary(&admission_runs)));

    for table in sensitivity_sweeps(seed, frames, nlp_requests, &grid) {
        emit(&format!("{}\n", table.render()));
    }
    emit(
        "fleet wins compare each Apparate fleet against the vanilla fleet of the same size\n\
         over the pooled per-replica records (response latency for CV, time-per-token for\n\
         the generative stream); sensitivity rows duel apparate against vanilla with one\n\
         knob moved and everything else (seed, arrivals, semantics draws) held fixed.\n",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_parse_empty_argv() {
        let args = parse(&[]).expect("defaults");
        assert_eq!(args.seed, 42);
        assert!(!args.quick);
        assert!(!args.sweep);
        assert_eq!(args.scenario, None);
    }

    #[test]
    fn flags_and_values_parse() {
        let args = parse(&["--quick", "--seed", "7", "--scenario", "nlp"]).expect("valid argv");
        assert_eq!(args.seed, 7);
        assert!(args.quick);
        assert_eq!(args.scenario, Some(ScenarioSelect::Nlp));
        let args = parse(&["--sweep"]).expect("valid argv");
        assert!(args.sweep);
    }

    #[test]
    fn sweep_rejects_scenario_with_an_explanation() {
        // The regression this guards: `repro --sweep --scenario cv` used to
        // die with a bare error; the parser must return a message explaining
        // the conflict (main appends the usage line and exits 2).
        let error = parse(&["--sweep", "--scenario", "cv"]).expect_err("conflicting argv");
        assert!(
            error.contains("--sweep") && error.contains("--scenario"),
            "error must name the conflicting flags: {error}"
        );
        // Order must not matter.
        assert!(parse(&["--scenario", "cv", "--sweep"]).is_err());
    }

    #[test]
    fn full_retune_parses_and_conflicts_with_sweep() {
        let args = parse(&[]).expect("defaults");
        assert!(!args.full_retune, "incremental tuning is the default");
        let args = parse(&["--quick", "--full-retune"]).expect("valid argv");
        assert!(args.full_retune);
        // Composes with an explicit scenario selection.
        assert!(parse(&["--full-retune", "--scenario", "cv"]).is_ok());
        // The sweep grid pins its own controller configuration.
        let error = parse(&["--sweep", "--full-retune"]).expect_err("conflicting argv");
        assert!(
            error.contains("--full-retune") && error.contains("--sweep"),
            "error must name the conflicting flags: {error}"
        );
        assert!(parse(&["--full-retune", "--sweep"]).is_err());
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "not-a-number"]).is_err());
        assert!(parse(&["--scenario"]).is_err());
        assert!(parse(&["--scenario", "no-such-scenario"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn threads_flag_parses_and_defaults_to_available_parallelism() {
        let args = parse(&[]).expect("defaults");
        assert_eq!(args.threads, None);
        assert!(args.threads() >= 1, "default must be a usable thread count");

        let args = parse(&["--threads", "4"]).expect("valid argv");
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.threads(), 4);

        // Composes with both modes.
        assert!(parse(&["--sweep", "--threads", "1"]).is_ok());
        assert!(parse(&["--quick", "--threads", "8"]).is_ok());
    }

    #[test]
    fn threads_flag_rejects_zero_and_garbage() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
    }

    #[test]
    fn telemetry_flags_parse_and_toggle_recording() {
        let args = parse(&[]).expect("defaults");
        assert!(!args.wants_telemetry(), "telemetry is opt-in");

        let args = parse(&["--trace-out", "/tmp/trace.jsonl"]).expect("valid argv");
        assert_eq!(args.trace_out.as_deref(), Some("/tmp/trace.jsonl"));
        assert!(args.wants_telemetry());

        let args = parse(&[
            "--quick",
            "--metrics-out",
            "m.jsonl",
            "--chrome-out",
            "c.json",
        ])
        .expect("valid argv");
        assert_eq!(args.metrics_out.as_deref(), Some("m.jsonl"));
        assert_eq!(args.chrome_out.as_deref(), Some("c.json"));
        assert!(args.wants_telemetry());

        // Export flags compose with sweep mode.
        assert!(parse(&["--sweep", "--trace-out", "t.jsonl"]).is_ok());
    }

    #[test]
    fn telemetry_flags_require_paths() {
        for flag in ["--trace-out", "--metrics-out", "--chrome-out"] {
            let error = parse(&[flag]).expect_err("missing path");
            assert!(error.contains(flag), "error must name the flag: {error}");
        }
    }
}
