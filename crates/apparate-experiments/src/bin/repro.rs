fn main() {}
