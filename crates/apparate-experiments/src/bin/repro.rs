//! `repro` — the end-to-end comparison harness.
//!
//! Runs Apparate head-to-head against the baseline family (vanilla,
//! static-ee, uniform-ee, oneshot-tuned, oracle) over the CV, NLP and
//! generative scenarios and prints paper-style latency/accuracy/throughput win
//! tables. Output is deterministic: the same `--seed` always produces the
//! same tables.
//!
//! ```text
//! repro [--seed N] [--quick] [--scenario cv|nlp|generative|all]
//! ```

use apparate_experiments::{
    cv_scenario, generative_scenario, nlp_scenario, run_classification, run_generative,
};

struct Args {
    seed: u64,
    quick: bool,
    scenario: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        quick: false,
        scenario: "all".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().ok_or("--seed requires a value")?;
                args.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--quick" => args.quick = true,
            "--scenario" => {
                let value = it.next().ok_or("--scenario requires a value")?;
                match value.as_str() {
                    "cv" | "nlp" | "generative" | "all" => args.scenario = value,
                    other => return Err(format!("unknown scenario: {other}")),
                }
            }
            "--help" | "-h" => {
                println!("usage: repro [--seed N] [--quick] [--scenario cv|nlp|generative|all]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Print to stdout, exiting quietly when the consumer has gone away
/// (`repro | head` must not panic on the broken pipe).
fn emit(text: &str) {
    use std::io::Write;
    if let Err(error) = std::io::stdout().write_all(text.as_bytes()) {
        if error.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed writing to stdout: {error}");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("repro: {message}");
            std::process::exit(2);
        }
    };
    // Workload sizes: the serving split is 90 % of these counts (§3.1's
    // bootstrap takes the first 10 %).
    let (cv_frames, nlp_requests, gen_requests) = if args.quick {
        (3_000, 3_000, 60)
    } else {
        (9_000, 9_000, 150)
    };

    emit(&format!(
        "apparate repro  (seed {}, {} mode)\n\
         policies: vanilla | static-ee | uniform-ee | oneshot-tuned | apparate | oracle\n\n",
        args.seed,
        if args.quick { "quick" } else { "full" }
    ));

    if args.scenario == "all" || args.scenario == "cv" {
        let table = run_classification(&cv_scenario(args.seed, cv_frames));
        emit(&format!("{}\n", table.render()));
    }
    if args.scenario == "all" || args.scenario == "nlp" {
        let table = run_classification(&nlp_scenario(args.seed, nlp_requests));
        emit(&format!("{}\n", table.render()));
    }
    if args.scenario == "all" || args.scenario == "generative" {
        let table = run_generative(&generative_scenario(args.seed, gen_requests));
        emit(&format!("{}\n", table.render()));
    }

    emit(
        "wins are % latency reduction vs. vanilla at the same percentile (higher is better);\n\
         oracle is the zero-overhead hindsight optimal (lower bound), not a realisable policy.\n",
    );
}
