//! `repro` — the end-to-end comparison harness.
//!
//! Runs Apparate head-to-head against the baseline family (vanilla,
//! static-ee, uniform-ee, oneshot-tuned, oracle) over the CV, NLP and
//! generative scenarios and prints paper-style latency/accuracy/throughput win
//! tables. Output is deterministic: the same `--seed` always produces the
//! same tables.
//!
//! The actual scenario running lives in
//! [`apparate_experiments::run_scenarios`], so other harnesses (the `e2e`
//! bench suite in particular) can reuse it; this binary only parses arguments
//! and renders the tables.
//!
//! ```text
//! repro [--seed N] [--quick] [--scenario cv|nlp|generative|all]
//! ```

use apparate_experiments::{run_scenarios_full, OverheadTable, ReproSizes, ScenarioSelect};

struct Args {
    seed: u64,
    quick: bool,
    scenario: ScenarioSelect,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        quick: false,
        scenario: ScenarioSelect::All,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().ok_or("--seed requires a value")?;
                args.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--quick" => args.quick = true,
            "--scenario" => {
                let value = it.next().ok_or("--scenario requires a value")?;
                args.scenario = value.parse()?;
            }
            "--help" | "-h" => {
                println!("usage: repro [--seed N] [--quick] [--scenario cv|nlp|generative|all]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Print to stdout, exiting quietly when the consumer has gone away
/// (`repro | head` must not panic on the broken pipe).
fn emit(text: &str) {
    use std::io::Write;
    if let Err(error) = std::io::stdout().write_all(text.as_bytes()) {
        if error.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed writing to stdout: {error}");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("repro: {message}");
            std::process::exit(2);
        }
    };
    let sizes = if args.quick {
        ReproSizes::quick()
    } else {
        ReproSizes::full()
    };

    emit(&format!(
        "apparate repro  (seed {}, {} mode)\n\
         policies: vanilla | static-ee | uniform-ee | oneshot-tuned | apparate | oracle\n\n",
        args.seed,
        if args.quick { "quick" } else { "full" }
    ));

    let runs = run_scenarios_full(args.seed, sizes, args.scenario);
    let mut overhead_rows = Vec::new();
    for run in runs {
        emit(&format!("{}\n", run.table.render()));
        overhead_rows.push(run.overhead);
    }
    emit(&format!("{}\n", OverheadTable::new(overhead_rows).render()));

    emit(
        "wins are % latency reduction vs. vanilla at the same percentile (higher is better);\n\
         oracle is the zero-overhead hindsight optimal (lower bound), not a realisable policy;\n\
         the overhead table charges the GPU->controller profiling stream (up) and the\n\
         controller->GPU threshold/ramp updates (down) against the PCIe link model (~0.5 ms/msg).\n",
    );
}
