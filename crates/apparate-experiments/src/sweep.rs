//! SLO- and accuracy-constraint sensitivity sweeps (Figures 17 and 19).
//!
//! The paper asks two robustness questions of the controller: does the win
//! survive tighter/looser SLOs (Figure 17, which also stresses SLO-aware
//! batching), and how does it trade against the user's accuracy budget
//! (Figure 19)? Each sweep point is a cheap vanilla-vs-Apparate duel
//! ([`crate::scenario::run_classification_duel`]) over the same scenario with
//! one knob moved; everything else — seed, arrivals, semantics draws — is
//! held fixed, so a grid column isolates the knob's effect. The grids
//! themselves come from [`crate::scenario::SensitivityGrid`].

use apparate_serving::LatencyWins;

use crate::scenario::{
    cv_scenario, nlp_scenario, run_classification_duel, scenario_config, SensitivityGrid,
};

/// One sensitivity point: Apparate against vanilla with one knob moved.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable knob setting, e.g. `"slo ×0.5 (37.5 ms)"`.
    pub label: String,
    /// Apparate's median latency win against vanilla (%).
    pub win_p50: f64,
    /// Apparate's p95 latency win against vanilla (%).
    pub win_p95: f64,
    /// Apparate's realised accuracy.
    pub accuracy: f64,
    /// Apparate's SLO violation rate.
    pub slo_violation_rate: f64,
    /// Vanilla's SLO violation rate at the same knob setting.
    pub vanilla_slo_violation_rate: f64,
    /// Apparate's early-exit rate.
    pub exit_rate: f64,
}

/// A rendered sensitivity sweep over one knob.
#[derive(Debug, Clone)]
pub struct SweepTable {
    /// Table title, e.g. `"SLO sensitivity (Figure 17)"`.
    pub title: String,
    /// One point per knob setting, in grid order.
    pub points: Vec<SweepPoint>,
}

impl SweepTable {
    /// The point with the given label, if present.
    pub fn point(&self, label: &str) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.label == label)
    }

    /// Render as fixed-width text (deterministic).
    pub fn render(&self) -> String {
        let mut out = crate::report::title_rule(&self.title);
        out.push_str(&format!(
            "{:<24} {:>8} {:>8} {:>7} {:>6} {:>10} {:>10}\n",
            "knob", "win@p50", "win@p95", "acc", "exit%", "slo-viol", "(vanilla)",
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:<24} {:>7.1}% {:>7.1}% {:>7.3} {:>6.1} {:>9.1}% {:>9.1}%\n",
                p.label,
                p.win_p50,
                p.win_p95,
                p.accuracy,
                p.exit_rate * 100.0,
                p.slo_violation_rate * 100.0,
                p.vanilla_slo_violation_rate * 100.0,
            ));
        }
        out
    }
}

/// The SLO sensitivity sweep (Figure 17): the CV scenario with its SLO scaled
/// by each factor in `scales`, controller config held at the defaults.
pub fn slo_sweep(seed: u64, frames: usize, scales: &[f64]) -> SweepTable {
    let points = scales
        .iter()
        .map(|&scale| {
            let scenario = cv_scenario(seed, frames).with_slo_scale(scale);
            let slo_ms = scenario
                .serving
                .slo
                .map(|slo| slo.as_millis_f64())
                .unwrap_or(0.0);
            let duel = run_classification_duel(&scenario, scenario_config());
            let wins = LatencyWins::of(&duel.vanilla, &duel.apparate);
            SweepPoint {
                label: format!("slo ×{scale} ({slo_ms:.1} ms)"),
                win_p50: wins.p50,
                win_p95: wins.p95,
                accuracy: duel.apparate.accuracy,
                slo_violation_rate: duel.apparate.slo_violation_rate,
                vanilla_slo_violation_rate: duel.vanilla.slo_violation_rate,
                exit_rate: duel.apparate.exit_rate,
            }
        })
        .collect();
    SweepTable {
        title: "SLO sensitivity (Figure 17)".to_string(),
        points,
    }
}

/// The accuracy-constraint sensitivity sweep (Figure 19): the NLP scenario —
/// where exits are genuinely accuracy-limited, unlike the high-continuity CV
/// stream — with the controller's accuracy-loss budget moved through
/// `constraints`.
pub fn accuracy_sweep(seed: u64, requests: usize, constraints: &[f64]) -> SweepTable {
    let points = constraints
        .iter()
        .map(|&constraint| {
            let scenario = nlp_scenario(seed, requests);
            let config = scenario_config().with_accuracy_constraint(constraint);
            let duel = run_classification_duel(&scenario, config);
            let wins = LatencyWins::of(&duel.vanilla, &duel.apparate);
            SweepPoint {
                label: format!("acc budget {:.1}%", constraint * 100.0),
                win_p50: wins.p50,
                win_p95: wins.p95,
                accuracy: duel.apparate.accuracy,
                slo_violation_rate: duel.apparate.slo_violation_rate,
                vanilla_slo_violation_rate: duel.vanilla.slo_violation_rate,
                exit_rate: duel.apparate.exit_rate,
            }
        })
        .collect();
    SweepTable {
        title: "accuracy-constraint sensitivity (Figure 19)".to_string(),
        points,
    }
}

/// Run both sweeps on the given grid: the SLO sweep over a `frames`-frame CV
/// stream, the accuracy sweep over an `nlp_requests`-request NLP stream. The
/// sizes are independent — the two sweeps run different scenarios.
pub fn sensitivity_sweeps(
    seed: u64,
    frames: usize,
    nlp_requests: usize,
    grid: &SensitivityGrid,
) -> Vec<SweepTable> {
    vec![
        slo_sweep(seed, frames, &grid.slo_scales),
        accuracy_sweep(seed, nlp_requests, &grid.accuracy_constraints),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_tables_render_deterministically() {
        let build = || slo_sweep(42, 1_500, &[0.5, 1.0]).render();
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("slo ×0.5"));
        assert!(a.contains("slo ×1"));
    }

    #[test]
    fn looser_accuracy_budget_never_reduces_exit_aggressiveness() {
        let table = accuracy_sweep(42, 1_500, &[0.005, 0.05]);
        let tight = &table.points[0];
        let loose = &table.points[1];
        // A 10× larger budget lets the tuner accept at least as many exits.
        assert!(
            loose.exit_rate >= tight.exit_rate - 0.02,
            "loose budget exit rate {} fell below tight {}",
            loose.exit_rate,
            tight.exit_rate
        );
        // And both must respect their own constraint with margin.
        assert!(tight.accuracy >= 1.0 - 0.005 - 0.02);
        assert!(loose.accuracy >= 1.0 - 0.05 - 0.02);
    }
}
