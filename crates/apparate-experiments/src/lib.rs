//! End-to-end repro harness for the Apparate reproduction.
//!
//! This crate turns the workspace's library pieces into a runnable system:
//!
//! * [`controller`] — the live Apparate controller: `apparate-core`'s
//!   threshold/adjust/monitor loop wired into the serving platform's
//!   [`ExitPolicy`](apparate_serving::ExitPolicy) /
//!   [`TokenPolicy`](apparate_serving::TokenPolicy) hooks.
//! * [`scenario`] — CV, NLP and generative comparison scenarios: workload →
//!   model → execution plan → serving simulation, with Apparate running
//!   head-to-head against every baseline in `apparate-baselines` under
//!   identical arrivals and semantics draws.
//! * [`fleet`] — multi-replica scale-out runs: N replicas behind one
//!   dispatcher, one warm-started controller per replica over its own
//!   charged link, fleet-level win tables.
//! * [`sweep`] — the SLO and accuracy-constraint sensitivity sweeps
//!   (Figures 17/19) over the grids in [`SensitivityGrid`].
//! * [`report`] — deterministic paper-style win tables.
//!
//! The `repro` binary (`cargo run --release -p apparate-experiments --bin
//! repro`) runs all three scenarios and prints the comparison tables; `repro
//! --sweep` prints the fleet scale-out tables (1/2/4/8 replicas) and both
//! sensitivity grids. The same seed always produces byte-identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod fleet;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use controller::{ApparatePolicy, ApparateTokenPolicy, ControllerStats};
pub use fleet::{
    render_admission_summary, render_fleet_summary, run_admission_fleet, run_classification_fleet,
    run_classification_fleet_over_shards, run_classification_fleet_streamed,
    run_classification_fleet_threaded, run_classification_fleet_traced,
    run_classification_fleet_with_config, run_generative_fleet, run_generative_fleet_over_shards,
    run_generative_fleet_streamed, run_generative_fleet_threaded, run_generative_fleet_traced,
    AdmissionFleetRun, FleetRun,
};
pub use report::{ComparisonTable, OverheadRow, OverheadTable, PolicyRow};
pub use scenario::{
    cv_scenario, diurnal_scenario, generative_calibration, generative_requests,
    generative_scenario, nlp_scenario, run_classification, run_classification_duel,
    run_classification_full, run_classification_overhead, run_classification_traced,
    run_classification_traced_config, run_generative, run_generative_full, run_generative_overhead,
    run_generative_traced, run_generative_traced_config, run_overhead, run_scenarios,
    run_scenarios_full, run_scenarios_traced, run_scenarios_traced_config, scenario_config,
    ClassificationScenario, DuelRun, GenerativeScenario, ReproSizes, ScenarioCdfs, ScenarioRun,
    ScenarioSelect, SensitivityGrid, TraceKind, WorkloadTokens, STATIC_THRESHOLD,
};
pub use sweep::{accuracy_sweep, sensitivity_sweeps, slo_sweep, SweepPoint, SweepTable};
