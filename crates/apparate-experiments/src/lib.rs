//! End-to-end repro harness for the Apparate reproduction.
//!
//! This crate turns the workspace's library pieces into a runnable system:
//!
//! * [`controller`] — the live Apparate controller: `apparate-core`'s
//!   threshold/adjust/monitor loop wired into the serving platform's
//!   [`ExitPolicy`](apparate_serving::ExitPolicy) /
//!   [`TokenPolicy`](apparate_serving::TokenPolicy) hooks.
//! * [`scenario`] — CV, NLP and generative comparison scenarios: workload →
//!   model → execution plan → serving simulation, with Apparate running
//!   head-to-head against every baseline in `apparate-baselines` under
//!   identical arrivals and semantics draws.
//! * [`report`] — deterministic paper-style win tables.
//!
//! The `repro` binary (`cargo run --release -p apparate-experiments --bin
//! repro`) runs all three scenarios and prints the comparison tables; the same
//! seed always produces byte-identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod report;
pub mod scenario;

pub use controller::{ApparatePolicy, ApparateTokenPolicy, ControllerStats};
pub use report::{ComparisonTable, OverheadRow, OverheadTable, PolicyRow};
pub use scenario::{
    cv_scenario, generative_scenario, nlp_scenario, run_classification, run_classification_full,
    run_classification_overhead, run_generative, run_generative_full, run_generative_overhead,
    run_overhead, run_scenarios, run_scenarios_full, scenario_config, ClassificationScenario,
    GenerativeScenario, ReproSizes, ScenarioRun, ScenarioSelect, TraceKind, STATIC_THRESHOLD,
};
