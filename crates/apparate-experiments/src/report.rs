//! Paper-style comparison tables.
//!
//! The headline artefacts of the paper are tables/figures of *latency wins at
//! unchanged throughput and bounded accuracy loss* (Figures 12–16, Table 2).
//! This module renders one table per scenario: a row per policy with its
//! latency percentiles, accuracy, throughput and exit rate, plus its p50/p95
//! wins against vanilla serving. Rendering is fully deterministic — the same
//! summaries always format to the same bytes — which is what the repro
//! binary's same-seed ⇒ same-table guarantee rests on.

use apparate_exec::OverheadReport;
use apparate_serving::{LatencySummary, LatencyWins};

/// The table-title line every deterministic table shares: `== title ===…`
/// padded to 96 display columns. Counted in characters, not bytes, so the
/// multi-byte `×` in fleet/sweep scenario names doesn't shorten the rule.
pub(crate) fn title_rule(title: &str) -> String {
    let text = format!("== {title} ");
    let width = text.chars().count();
    format!("{text}{}\n", "=".repeat(96usize.saturating_sub(width)))
}

/// One policy's row: its summary and its wins against the vanilla row.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// The run summary.
    pub summary: LatencySummary,
    /// Wins against vanilla (zero for the vanilla row itself).
    pub wins: LatencyWins,
}

/// A rendered comparison for one scenario.
#[derive(Debug, Clone)]
pub struct ComparisonTable {
    /// Scenario identifier, e.g. `"cv/resnet50/urban-night"`.
    pub scenario: String,
    /// What the latency column measures (`"latency"` or `"tpt"`).
    pub latency_label: String,
    /// Policy rows, vanilla first.
    pub rows: Vec<PolicyRow>,
}

impl ComparisonTable {
    /// Build a table from summaries; the first summary must be the vanilla
    /// baseline all wins are computed against.
    pub fn new(
        scenario: impl Into<String>,
        latency_label: impl Into<String>,
        summaries: Vec<LatencySummary>,
    ) -> ComparisonTable {
        assert!(
            !summaries.is_empty(),
            "at least the vanilla row is required"
        );
        let vanilla = summaries[0].clone();
        let rows = summaries
            .into_iter()
            .map(|summary| PolicyRow {
                wins: LatencyWins::of(&vanilla, &summary),
                summary,
            })
            .collect();
        ComparisonTable {
            scenario: scenario.into(),
            latency_label: latency_label.into(),
            rows,
        }
    }

    /// The row for a given policy name, if present.
    pub fn row(&self, policy: &str) -> Option<&PolicyRow> {
        self.rows.iter().find(|r| r.summary.policy == policy)
    }

    /// Render the table as fixed-width text.
    pub fn render(&self) -> String {
        let mut out = title_rule(&self.scenario);
        out.push_str(&format!(
            "{:<14} {:>11} {:>11} {:>11} {:>7} {:>9} {:>6} {:>9} {:>9}\n",
            "policy",
            format!("p50 {}", unit(&self.latency_label)),
            format!("p95 {}", unit(&self.latency_label)),
            format!("mean {}", unit(&self.latency_label)),
            "acc",
            "thrpt",
            "exit%",
            "win@p50",
            "win@p95",
        ));
        for row in &self.rows {
            let s = &row.summary;
            out.push_str(&format!(
                "{:<14} {:>11.2} {:>11.2} {:>11.2} {:>7.3} {:>9.2} {:>6.1} {:>8.1}% {:>8.1}%\n",
                s.policy,
                s.latency_ms.p50,
                s.latency_ms.p95,
                s.latency_ms.mean,
                s.accuracy,
                s.throughput,
                s.exit_rate * 100.0,
                row.wins.p50,
                row.wins.p95,
            ));
        }
        out
    }
}

fn unit(label: &str) -> &'static str {
    match label {
        "tpt" => "ms/tok",
        _ => "ms",
    }
}

/// One scenario's coordination charges (the Apparate run's GPU ↔ controller
/// link traffic).
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Scenario identifier, e.g. `"cv/resnet50/urban-night"`.
    pub scenario: String,
    /// Requests (or tokens) the Apparate policy served.
    pub requests: u64,
    /// Link charges, both directions.
    pub report: OverheadReport,
}

/// The §4.5-style coordination-overhead table: per scenario, the messages and
/// bytes exchanged in each direction and the coordination latency paid.
#[derive(Debug, Clone)]
pub struct OverheadTable {
    /// One row per scenario, in run order.
    pub rows: Vec<OverheadRow>,
}

impl OverheadTable {
    /// Build a table from per-scenario rows.
    pub fn new(rows: Vec<OverheadRow>) -> OverheadTable {
        OverheadTable { rows }
    }

    /// The row for a scenario, if present.
    pub fn row(&self, scenario: &str) -> Option<&OverheadRow> {
        self.rows.iter().find(|r| r.scenario == scenario)
    }

    /// Mean per-message coordination latency across every row (ms); the §4.5
    /// headline number (~0.5 ms per message).
    pub fn mean_latency_ms(&self) -> f64 {
        let messages: u64 = self.rows.iter().map(|r| r.report.total_messages()).sum();
        if messages == 0 {
            return 0.0;
        }
        let total: f64 = self
            .rows
            .iter()
            .map(|r| r.report.total_latency().as_millis_f64())
            .sum();
        total / messages as f64
    }

    /// Render the table as fixed-width text (deterministic, like
    /// [`ComparisonTable::render`]).
    pub fn render(&self) -> String {
        let mut out = title_rule("coordination overhead (§4.5)");
        out.push_str(&format!(
            "{:<35} {:>8} {:>9} {:>8} {:>9} {:>8} {:>9}\n",
            "scenario", "up msgs", "up KiB", "dn msgs", "dn KiB", "ms/msg", "total ms",
        ));
        for row in &self.rows {
            let up = &row.report.uplink;
            let down = &row.report.downlink;
            out.push_str(&format!(
                "{:<35} {:>8} {:>9.1} {:>8} {:>9.1} {:>8.3} {:>9.1}\n",
                row.scenario,
                up.messages,
                up.bytes as f64 / 1024.0,
                down.messages,
                down.bytes as f64 / 1024.0,
                if row.report.total_messages() == 0 {
                    0.0
                } else {
                    row.report.total_latency().as_millis_f64() / row.report.total_messages() as f64
                },
                row.report.total_latency().as_millis_f64(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_sim::Percentiles;

    fn summary(policy: &str, p50: f64) -> LatencySummary {
        LatencySummary {
            policy: policy.to_string(),
            latency_ms: Percentiles {
                p25: p50 * 0.8,
                p50,
                p75: p50 * 1.2,
                p95: p50 * 1.5,
                p99: p50 * 1.7,
                mean: p50 * 1.05,
                max: p50 * 2.0,
                count: 100,
            },
            accuracy: 0.995,
            throughput: 50.0,
            mean_batch_size: 4.0,
            slo_violation_rate: 0.0,
            exit_rate: 0.5,
        }
    }

    #[test]
    fn wins_are_relative_to_first_row() {
        let table = ComparisonTable::new(
            "test",
            "latency",
            vec![summary("vanilla", 20.0), summary("fast", 10.0)],
        );
        assert!(table.row("vanilla").unwrap().wins.p50.abs() < 1e-9);
        assert!((table.row("fast").unwrap().wins.p50 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rendering_is_deterministic_and_aligned() {
        let build = || {
            ComparisonTable::new(
                "cv/resnet50",
                "latency",
                vec![summary("vanilla", 20.0), summary("apparate", 9.0)],
            )
            .render()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("apparate"));
        // Header and data rows must all share one width, for both latency
        // tables and tpt tables (whose "ms/tok" unit makes headers wider).
        for label in ["latency", "tpt"] {
            let rendered = ComparisonTable::new(
                "scenario",
                label,
                vec![summary("vanilla", 20.0), summary("apparate", 9.0)],
            )
            .render();
            let widths: Vec<usize> = rendered.lines().skip(1).map(|l| l.len()).collect();
            assert!(
                widths.windows(2).all(|w| w[0] == w[1]),
                "columns align for {label}: {rendered}"
            );
        }
    }
}
