//! The live Apparate controller: the threshold/adjust/monitor loop of §3
//! wired into the serving platform's policy hooks — with the GPU ↔ controller
//! coordination path charged for real.
//!
//! `apparate-core` provides the individual algorithms (greedy threshold
//! tuning, utility-driven ramp adjustment, monitoring windows); this module
//! composes them into a closed loop that runs *against* a serving simulation,
//! split exactly the way the paper deploys it (§3, §4.5):
//!
//! * the **GPU half** (`GpuHalf`) executes batches under the thresholds and
//!   ramp set it currently has deployed, and hands the platform a per-batch
//!   [`BatchProfile`] which the platform streams over the uplink as a
//!   [`ProfileRecord`] when the batch completes;
//! * the **controller half** (`ControllerHalf`) runs on the CPU: at each
//!   batch boundary it polls the uplink for records whose simulated delivery
//!   time has arrived, feeds its monitor, and runs any triggered threshold
//!   tuning / ramp adjustment; configuration changes are shipped back as
//!   [`ThresholdUpdate`]s over the downlink (~10 KB of ramp definitions when
//!   the ramp set changes) and take effect on the GPU only after delivery.
//!
//! Both directions are charged against the [`LinkCost`] model, so every
//! adaptation decision lags reality by the coordination latency — the §4.5
//! overhead experiment reads those charges back via
//! [`ApparatePolicy::overhead_report`]. The controller half never reads the
//! live plan's observations directly: everything it learns arrives through
//! [`FeedbackReceiver::poll`], which only surfaces messages already delivered
//! at the poll time.

use apparate_baselines::{
    exit_outcome, offline_tuned_thresholds, per_ramp_savings_us, RampDeployment,
};
use apparate_core::{
    adjust_ramps, greedy_tune, ramp_utilities, AdjustInput, ApparateConfig, GreedyParams,
    IncrementalTuner, Monitor, ThresholdEvaluator, TrainedRamp,
};
use apparate_exec::{
    feedback_link, ExecutionPlan, FeedbackReceiver, FeedbackSender, LinkCost, OverheadReport,
    ProfileRecord, RequestRelease, SampleSemantics, ThresholdUpdate,
};
use apparate_serving::{
    BatchOutcome, BatchProfile, ExitPolicy, Request, StepOutcome, TokenPolicy, TokenSlot,
};
use apparate_sim::{SimDuration, SimTime};
use apparate_telemetry::{EventKind, LinkDirection, Telemetry};

/// Counters describing what the controller did during a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// Threshold-tuning rounds executed.
    pub tuning_rounds: usize,
    /// Ramp-adjustment rounds executed.
    pub adjustment_rounds: usize,
    /// Adjustment rounds that changed the active ramp set.
    pub ramp_changes: usize,
    /// Threshold/ramp updates shipped over the downlink.
    pub updates_sent: usize,
    /// Profiling records ingested from the uplink.
    pub records_ingested: usize,
    /// Profiling records discarded because they predate a ramp-set change
    /// (their per-ramp observations no longer line up with the active ramps).
    pub records_dropped: usize,
}

/// Fraction of the accuracy budget the tuner may spend *in-window*; the rest
/// absorbs generalisation error and drift between retunes.
const TUNING_SAFETY: f64 = 0.6;

/// Cap on tuned thresholds at the default 1 % accuracy budget: an exit is
/// only taken on genuinely confident ramp output. Uncapped tuning saturates
/// deep-ramp thresholds whenever the window happens to contain no hard inputs
/// at that depth (censoring), which is exactly where drift then bites
/// hardest. The effective cap scales with the fourth root of the user's
/// budget relative to 1 % (see `ControllerHalf::tuning_params`): the
/// confidence bar an exit must clear is part of the same safety margin the
/// budget buys, which is what makes the Figure 19 sensitivity knob bite.
const MAX_TUNED_THRESHOLD: f64 = 0.35;

/// The accuracy budget [`MAX_TUNED_THRESHOLD`] is calibrated at.
const REFERENCE_ACCURACY_BUDGET: f64 = 0.01;

/// The GPU-resident half: executes batches under the configuration it has
/// *received*, which trails the controller's decisions by the downlink
/// latency.
struct GpuHalf {
    plan: ExecutionPlan,
    thresholds: Vec<f64>,
    config_epoch: u64,
    update_rx: FeedbackReceiver<ThresholdUpdate>,
    telemetry: Telemetry,
}

impl GpuHalf {
    /// Apply every configuration update delivered by `now` (later updates
    /// win; each bumps the configuration epoch stamped on outgoing profiles).
    fn sync(&mut self, now: SimTime) {
        for update in self.update_rx.poll(now) {
            let ramps_changed = update.ramps.is_some();
            self.telemetry.emit(now, || EventKind::UpdateDelivered {
                epoch: update.config_epoch,
                ramps_changed,
            });
            if let Some(ramps) = update.ramps {
                self.plan = self.plan.with_ramps(ramps);
            }
            self.thresholds = update.thresholds;
            self.config_epoch = update.config_epoch;
        }
        self.telemetry.gauge(
            now,
            "link_down_in_flight",
            self.update_rx.in_flight() as f64,
        );
    }

    /// Execute one batch under the deployed configuration: release decisions
    /// for the platform plus the profiling data to stream to the controller.
    fn execute(
        &self,
        samples: &[SampleSemantics],
    ) -> (
        SimDuration,
        Vec<apparate_serving::RequestOutcome>,
        BatchProfile,
    ) {
        let exec = self.plan.execute_batch(samples);
        let b = samples.len() as u32;
        let outcomes: Vec<apparate_serving::RequestOutcome> = exec
            .per_request
            .iter()
            .map(|obs| exit_outcome(&self.plan, obs, &self.thresholds, b))
            .collect();
        let num_ramps = self.plan.num_ramps();
        let mut observations = Vec::with_capacity(samples.len() * num_ramps);
        for obs in &exec.per_request {
            observations.extend_from_slice(&obs.ramp_observations);
        }
        let profile = BatchProfile {
            num_ramps,
            observations,
            releases: outcomes
                .iter()
                .map(|o| RequestRelease {
                    id: 0,
                    exit: o.exit_ramp,
                    correct: o.correct,
                })
                .collect(),
            config_epoch: self.config_epoch,
        };
        (
            SimDuration::from_micros_f64(self.plan.gpu_batch_time_us(b)),
            outcomes,
            profile,
        )
    }
}

/// The CPU-resident half: monitors delivered profiling records and runs the
/// adaptation algorithms, publishing configuration changes on the downlink.
struct ControllerHalf {
    /// The controller's mirror of the configuration it has *issued* (the GPU
    /// converges to it one downlink delivery later). Used for savings and
    /// overhead arithmetic, never for observations.
    plan: ExecutionPlan,
    config: ApparateConfig,
    thresholds: Vec<f64>,
    monitor: Monitor,
    /// Feasible-site bookkeeping for ramp adjustment.
    all_sites: Vec<apparate_core::RampSite>,
    active_sites: Vec<usize>,
    max_active: usize,
    capacity: f64,
    /// Reference batch size for savings/overhead accounting.
    reference_batch: u32,
    /// Per-feasible-site per-exit savings (µs) at the reference batch.
    site_savings_us: Vec<f64>,
    /// Whether ramp adjustment is enabled. Both the classification and the
    /// token controller run it by default; tests disable it to isolate
    /// threshold tuning.
    adjust_enabled: bool,
    /// Per-active-ramp exit counts since the last adjustment round. Tracked
    /// here (not via the monitor) so a no-op adjustment round does not have to
    /// clear the threshold-tuning window.
    adjust_exits: Vec<u64>,
    /// Requests observed since the last adjustment round.
    adjust_requests: u64,
    needs_tune: bool,
    records_since_tune: usize,
    /// The incremental Algorithm 1 implementation (delta evaluation over the
    /// monitor's columnar window). Produces the exact configurations the
    /// full greedy re-tune would; `config.full_retune` switches tuning back
    /// to the materialising oracle path.
    tuner: IncrementalTuner,
    /// Epoch of the last issued update; every publish bumps it.
    config_epoch: u64,
    /// Records stamped with an epoch below this predate a ramp-set change and
    /// are discarded (their observation vectors index the old ramp set).
    min_ingest_epoch: u64,
    profile_rx: FeedbackReceiver<ProfileRecord>,
    update_tx: FeedbackSender<ThresholdUpdate>,
    stats: ControllerStats,
    telemetry: Telemetry,
}

impl ControllerHalf {
    /// The (conservative) greedy-search parameters every tuning round uses.
    fn tuning_params(&self) -> GreedyParams {
        GreedyParams {
            // Tune against a fraction of the user's budget: the greedy search
            // picks the savings-maximal configuration that scrapes the
            // in-window floor, so its out-of-window accuracy is systematically
            // below the floor (winner's curse). Spending only part of the
            // budget in-window keeps the *realised* loss within the
            // constraint.
            accuracy_loss_budget: self.config.accuracy_constraint * TUNING_SAFETY,
            initial_step: self.config.initial_step,
            smallest_step: self.config.smallest_step,
            // Budget-relative confidence cap, ∜-scaled: wrong-exit mass is
            // strongly super-linear in the entropy bar around the calibrated
            // 0.35 point, so the bar must move much more slowly than the
            // budget for realised loss to stay inside the constraint at every
            // grid point. The upper clamp (0.45) marks where wrong-exit mass
            // explodes under the synthetic semantics model regardless of
            // budget; the lower keeps a tiny budget from disabling exits.
            max_threshold: (MAX_TUNED_THRESHOLD
                * (self.config.accuracy_constraint / REFERENCE_ACCURACY_BUDGET).powf(0.25))
            .clamp(0.05, 0.45),
        }
    }

    fn accuracy_floor(&self) -> f64 {
        1.0 - self.config.accuracy_constraint
    }

    /// Ship the current configuration to the GPU over the downlink, charging
    /// the transfer. `ramps_changed` additionally ships the new ramp
    /// definitions (~10 KB each, §4.5) and fences off stale profiling records.
    fn publish(&mut self, now: SimTime, ramps_changed: bool) {
        self.config_epoch += 1;
        if ramps_changed {
            self.min_ingest_epoch = self.config_epoch;
        }
        let update = ThresholdUpdate {
            issued_at: now,
            config_epoch: self.config_epoch,
            thresholds: self.thresholds.clone(),
            ramps: ramps_changed.then(|| self.plan.ramps().to_vec()),
        };
        self.update_tx.send(update, now);
        self.stats.updates_sent += 1;
        let epoch = self.config_epoch;
        self.telemetry.emit(now, || EventKind::UpdateIssued {
            epoch,
            ramps_changed,
        });
        self.telemetry
            .gauge(now, "active_ramps", self.active_sites.len() as f64);
    }

    /// Ingest every profiling record delivered by `now`, then run any
    /// triggered adaptation. This is the *only* path observations reach the
    /// controller: nothing the GPU produced after `now` (or still on the wire
    /// at `now`) can influence decisions made here.
    fn ingest(&mut self, now: SimTime) {
        for record in self.profile_rx.poll(now) {
            if record.config_epoch < self.min_ingest_epoch {
                self.stats.records_dropped += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.emit(now, || EventKind::StaleRecordDropped {
                        record_epoch: record.config_epoch,
                        min_epoch: self.min_ingest_epoch,
                    });
                    self.telemetry.counter("stale_records_dropped", 1);
                }
                continue;
            }
            self.stats.records_ingested += 1;
            // Batched ingestion: the whole record lands in the monitor's
            // columnar window via slice copies, then the adjustment counters
            // absorb the per-request exits as plain integer loops.
            self.monitor.record_batch(&record);
            for release in &record.releases {
                if let Some(ramp) = release.exit {
                    if ramp < self.adjust_exits.len() {
                        self.adjust_exits[ramp] += 1;
                    }
                }
            }
            self.adjust_requests += record.releases.len() as u64;
            self.records_since_tune += record.releases.len();
        }
        self.telemetry
            .gauge(now, "link_up_in_flight", self.profile_rx.in_flight() as f64);
        self.maybe_adjust(now);
        self.maybe_tune(now);
    }

    fn maybe_tune(&mut self, now: SimTime) {
        // Tuning only ever runs on a *full* window: with the 0.99 accuracy
        // floor, a short window accepts threshold configurations with zero
        // in-window errors that generalise poorly (saturated thresholds),
        // which is precisely the over-aggressiveness the floor is meant to
        // prevent.
        if self.plan.num_ramps() == 0
            || self.monitor.tuning_window_len() < self.config.tuning_window
        {
            return;
        }
        let initial_due = self.needs_tune;
        let violation_due = self.monitor.accuracy_window_full()
            && self.monitor.windowed_accuracy() + 1e-12 < self.accuracy_floor()
            && self.records_since_tune >= self.config.accuracy_window;
        if !initial_due && !violation_due {
            return;
        }
        if self.monitor.tuning_window_len() == 0 {
            return;
        }
        let savings = per_ramp_savings_us(&self.plan, self.reference_batch);
        let outcome = if self.config.full_retune {
            // The materialising oracle: rebuild per-request records and run
            // the reference greedy search over them.
            let records = self.monitor.tuning_records();
            let evaluator = ThresholdEvaluator::new(&records, &savings);
            greedy_tune(&evaluator, self.tuning_params())
        } else {
            self.tuner
                .tune(self.monitor.window(), &savings, self.tuning_params())
        };
        let thresholds_changed = self.thresholds != outcome.thresholds;
        self.thresholds = outcome.thresholds;
        self.needs_tune = false;
        self.records_since_tune = 0;
        // Restart the adjustment window: utilities must describe the ramps'
        // behaviour under the thresholds actually deployed.
        self.adjust_exits = vec![0; self.plan.num_ramps()];
        self.adjust_requests = 0;
        self.stats.tuning_rounds += 1;
        self.publish(now, false);
        let epoch = self.config_epoch;
        self.telemetry.emit(now, || EventKind::TuningRound {
            epoch,
            thresholds_changed,
        });
    }

    fn maybe_adjust(&mut self, now: SimTime) {
        // Never adjust ramps that have not been threshold-tuned yet: with
        // all-zero thresholds nothing exits, every ramp's utility is pure
        // overhead, and the adjuster would (correctly, but uselessly)
        // deactivate the entire deployment before it ever got a chance.
        if !self.adjust_enabled
            || self.needs_tune
            || self.plan.num_ramps() == 0
            || self.adjust_requests < self.config.ramp_adjust_period as u64
        {
            return;
        }
        self.stats.adjustment_rounds += 1;
        let active_savings = per_ramp_savings_us(&self.plan, self.reference_batch);
        let active_overheads: Vec<f64> = self
            .plan
            .ramps()
            .iter()
            .map(|r| r.cost.latency_us(self.reference_batch))
            .collect();
        let utilities = ramp_utilities(
            &self.adjust_exits,
            self.adjust_requests,
            &active_savings,
            &active_overheads,
        );
        let nets: Vec<f64> = utilities.iter().map(|u| u.net_us()).collect();
        let per_request_overhead_us = active_overheads.iter().copied().fold(0.0f64, f64::max);
        let exit_rates: Vec<f64> = self
            .adjust_exits
            .iter()
            .map(|&e| e as f64 / self.adjust_requests.max(1) as f64)
            .collect();
        let decision = adjust_ramps(&AdjustInput {
            num_sites: self.all_sites.len(),
            active_sites: &self.active_sites,
            utilities_us: &nets,
            exit_rates: &exit_rates,
            window_requests: self.adjust_requests,
            per_exit_saving_us: &self.site_savings_us,
            per_request_overhead_us,
            max_active: self.max_active,
        });
        if decision.new_active != self.active_sites {
            // Carry thresholds for retained ramps; newly added ramps start at 0
            // until the post-adjustment tuning round (§3.3).
            let old: Vec<(usize, f64)> = self
                .active_sites
                .iter()
                .copied()
                .zip(self.thresholds.iter().copied())
                .collect();
            let placements = decision
                .new_active
                .iter()
                .map(|&idx| {
                    TrainedRamp {
                        site: self.all_sites[idx],
                        capacity: self.capacity,
                    }
                    .placement()
                })
                .collect();
            self.plan = self.plan.with_ramps(placements);
            self.thresholds = decision
                .new_active
                .iter()
                .map(|&idx| {
                    old.iter()
                        .find(|(site, _)| *site == idx)
                        .map(|(_, thr)| *thr)
                        .unwrap_or(0.0)
                })
                .collect();
            if self.telemetry.is_enabled() {
                let activated: Vec<usize> = decision
                    .new_active
                    .iter()
                    .copied()
                    .filter(|s| !self.active_sites.contains(s))
                    .collect();
                let deactivated: Vec<usize> = self
                    .active_sites
                    .iter()
                    .copied()
                    .filter(|s| !decision.new_active.contains(s))
                    .collect();
                let active_count = decision.new_active.len();
                self.telemetry.emit(now, || EventKind::RampSetChanged {
                    activated,
                    deactivated,
                    active_count,
                });
            }
            self.active_sites = decision.new_active;
            self.needs_tune = true;
            self.stats.ramp_changes += 1;
            // Recorded observations no longer line up with the new ramp
            // indices; the tuning window must refill (with new-epoch records)
            // before the next tune.
            self.monitor.reset_for_new_ramps(self.plan.num_ramps());
            self.publish(now, true);
        }
        self.adjust_exits = vec![0; self.plan.num_ramps()];
        self.adjust_requests = 0;
    }
}

/// Both halves plus the uplink producer handle the serving platform publishes
/// through.
struct CoordinatedCore {
    gpu: GpuHalf,
    controller: ControllerHalf,
    /// Clone-able producer half of the uplink, handed to the platform.
    profile_tx: FeedbackSender<ProfileRecord>,
}

impl CoordinatedCore {
    fn new(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        adjust_enabled: bool,
        link: LinkCost,
    ) -> CoordinatedCore {
        config.validate().expect("valid Apparate configuration");
        let RampDeployment {
            plan,
            all_sites,
            active_sites,
            max_active,
            capacity,
        } = deployment;
        let site_savings_us = all_sites
            .iter()
            .map(|s| {
                (plan.vanilla_total_us(reference_batch)
                    - plan.site_prefix_us(s.site, reference_batch))
                .max(0.0)
            })
            .collect();
        let num_ramps = plan.num_ramps();
        let (profile_tx, profile_rx) = feedback_link::<ProfileRecord>(link);
        let (update_tx, update_rx) = feedback_link::<ThresholdUpdate>(link);
        CoordinatedCore {
            gpu: GpuHalf {
                plan: plan.clone(),
                thresholds: vec![0.0; num_ramps],
                config_epoch: 0,
                update_rx,
                telemetry: Telemetry::disabled(),
            },
            controller: ControllerHalf {
                thresholds: vec![0.0; num_ramps],
                monitor: Monitor::new(num_ramps, config.accuracy_window, config.tuning_window),
                plan,
                config,
                all_sites,
                active_sites,
                max_active,
                capacity,
                reference_batch,
                site_savings_us,
                adjust_enabled,
                adjust_exits: vec![0; num_ramps],
                adjust_requests: 0,
                needs_tune: true,
                records_since_tune: 0,
                tuner: IncrementalTuner::new(),
                config_epoch: 0,
                min_ingest_epoch: 0,
                profile_rx,
                update_tx,
                stats: ControllerStats::default(),
                telemetry: Telemetry::disabled(),
            },
            profile_tx,
        }
    }

    /// Attach a telemetry sink to both halves and both link directions. Must
    /// be called before [`CoordinatedCore::step`] runs and before the uplink
    /// producer is cloned out, so every message of the run is traced.
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.profile_tx
            .set_telemetry(telemetry.clone(), LinkDirection::Up);
        self.controller
            .update_tx
            .set_telemetry(telemetry.clone(), LinkDirection::Down);
        self.gpu.telemetry = telemetry.clone();
        self.controller.telemetry = telemetry;
    }

    /// Warm-start thresholds from offline calibration samples (the bootstrap
    /// validation split, §3.1): the paper tunes initial thresholds on
    /// bootstrap data before serving begins, so the controller does not have
    /// to serve a whole tuning window at thresholds 0 first. This happens
    /// offline — the initial configuration is loaded onto the GPU together
    /// with the model, so no link transfer is charged.
    fn warm_start(&mut self, calibration: &[SampleSemantics]) {
        if calibration.is_empty() || self.controller.plan.num_ramps() == 0 {
            return;
        }
        let outcome = offline_tuned_thresholds(
            &self.controller.plan,
            calibration,
            self.controller.tuning_params(),
            self.controller.reference_batch,
        );
        self.controller.thresholds = outcome.thresholds.clone();
        // lint:allow(W001, reason = "offline warm start: the initial configuration is loaded onto the GPU together with the model, before serving begins — no wire delivery exists to poll")
        self.gpu.thresholds = outcome.thresholds;
        self.controller.needs_tune = false;
        self.controller.stats.tuning_rounds += 1;
    }

    /// One batch/step at simulated time `now`: the controller half acts on
    /// everything delivered by `now`, the GPU half applies every
    /// configuration update delivered by `now`, then executes.
    fn step(
        &mut self,
        samples: &[SampleSemantics],
        now: SimTime,
    ) -> (
        SimDuration,
        Vec<apparate_serving::RequestOutcome>,
        BatchProfile,
    ) {
        self.controller.ingest(now);
        self.gpu.sync(now);
        self.gpu.execute(samples)
    }

    fn overhead_report(&self) -> OverheadReport {
        OverheadReport {
            uplink: self.profile_tx.stats(),
            downlink: self.controller.update_tx.stats(),
        }
    }
}

/// Apparate's adaptive [`ExitPolicy`] for classification serving.
pub struct ApparatePolicy {
    core: CoordinatedCore,
    name: String,
    /// Reusable per-batch semantics buffer: `process_batch` runs once per
    /// served batch, so its staging allocation must not be per-call.
    samples_scratch: Vec<SampleSemantics>,
}

impl ApparatePolicy {
    /// Deploy Apparate over a prepared ramp deployment with all-zero initial
    /// thresholds (the first tune happens online, once the window fills) and
    /// the paper's default PCIe link cost.
    pub fn new(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
    ) -> ApparatePolicy {
        ApparatePolicy::with_link(deployment, config, reference_batch, LinkCost::default())
    }

    /// Deploy Apparate with an explicit GPU ↔ controller link cost model.
    pub fn with_link(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        link: LinkCost,
    ) -> ApparatePolicy {
        ApparatePolicy {
            core: CoordinatedCore::new(deployment, config, reference_batch, true, link),
            name: "apparate".to_string(),
            samples_scratch: Vec::new(),
        }
    }

    /// Deploy Apparate with thresholds warm-started on offline calibration
    /// samples (the bootstrap validation split, §3.1), then adapt online.
    pub fn warm_started(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        calibration: &[SampleSemantics],
    ) -> ApparatePolicy {
        ApparatePolicy::warm_started_with_link(
            deployment,
            config,
            reference_batch,
            calibration,
            LinkCost::default(),
        )
    }

    /// Warm-started deployment with an explicit link cost model.
    pub fn warm_started_with_link(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        calibration: &[SampleSemantics],
        link: LinkCost,
    ) -> ApparatePolicy {
        let mut policy = ApparatePolicy::with_link(deployment, config, reference_batch, link);
        policy.core.warm_start(calibration);
        policy
    }

    /// Current per-ramp thresholds *as deployed on the GPU* (the controller's
    /// latest decision may still be on the wire).
    pub fn thresholds(&self) -> &[f64] {
        &self.core.gpu.thresholds
    }

    /// Currently active feasible-site indices (controller view).
    pub fn active_sites(&self) -> &[usize] {
        &self.core.controller.active_sites
    }

    /// Number of ramps in the plan the GPU is *currently executing* — trails
    /// [`ApparatePolicy::active_sites`] by the downlink latency after a
    /// ramp-set change.
    pub fn deployed_ramps(&self) -> usize {
        self.core.gpu.plan.num_ramps()
    }

    /// Adaptation counters.
    pub fn stats(&self) -> ControllerStats {
        self.core.controller.stats
    }

    /// Attach a telemetry sink: the controller traces ramp-set changes,
    /// update issue/delivery, stale-record drops and tuning rounds, and both
    /// link directions trace their messages. Call *before*
    /// [`ApparatePolicy::feedback_sender`] so the uplink clone the platform
    /// holds is traced too.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.core.set_telemetry(telemetry);
    }

    /// The uplink producer handle: pass this to
    /// [`apparate_serving::ServingSimulator::run_with_feedback`] so the
    /// platform streams each batch's profile to the controller.
    pub fn feedback_sender(&self) -> FeedbackSender<ProfileRecord> {
        self.core.profile_tx.clone()
    }

    /// Coordination charges accumulated so far, both directions (§4.5).
    pub fn overhead_report(&self) -> OverheadReport {
        self.core.overhead_report()
    }
}

impl ExitPolicy for ApparatePolicy {
    fn process_batch(&mut self, batch: &[Request], batch_start: SimTime) -> BatchOutcome {
        self.samples_scratch.clear();
        self.samples_scratch
            .extend(batch.iter().map(|r| r.semantics));
        let (gpu_time, per_request, profile) = self.core.step(&self.samples_scratch, batch_start);
        BatchOutcome {
            gpu_time,
            per_request,
            profile: Some(profile),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Apparate's adaptive [`TokenPolicy`] for generative serving.
///
/// Token-level adaptation runs the full Algorithm 2 loop, exactly as the
/// classification controller does: decode-step [`ProfileRecord`]s arrive over
/// the charged uplink, and every `ramp_adjust_period` delivered token
/// observations the controller re-selects the active ramp set by hindsight
/// latency savings vs. overhead — deactivating negative-utility ramps,
/// trialling replacements, probing earlier sites. Generative ramps reuse the
/// decoder head at every block (§3.1), so the *training* of a candidate is
/// free, but the placement question is real: which decoder depths pay for
/// their evaluation overhead depends on the token stream. Every ramp-set
/// change ships over the downlink with the same epoch gating as the
/// classification path (decode steps completed before delivery still ran the
/// old set; stale-epoch records are dropped), and is followed by a threshold
/// re-tune once the window refills with new-epoch records.
pub struct ApparateTokenPolicy {
    core: CoordinatedCore,
    name: String,
    /// Reusable per-step semantics buffer: the decode loop calls
    /// `process_step` once per token step, so staging must not allocate.
    samples_scratch: Vec<SampleSemantics>,
}

impl ApparateTokenPolicy {
    /// Deploy the token controller over a prepared ramp deployment with the
    /// paper's default PCIe link cost.
    pub fn new(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
    ) -> ApparateTokenPolicy {
        ApparateTokenPolicy::with_link(deployment, config, reference_batch, LinkCost::default())
    }

    /// Deploy the token controller with an explicit link cost model.
    pub fn with_link(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        link: LinkCost,
    ) -> ApparateTokenPolicy {
        ApparateTokenPolicy {
            core: CoordinatedCore::new(deployment, config, reference_batch, true, link),
            name: "apparate".to_string(),
            samples_scratch: Vec::new(),
        }
    }

    /// Deploy the token controller with thresholds warm-started on offline
    /// calibration tokens, then adapt online.
    pub fn warm_started(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        calibration: &[SampleSemantics],
    ) -> ApparateTokenPolicy {
        ApparateTokenPolicy::warm_started_with_link(
            deployment,
            config,
            reference_batch,
            calibration,
            LinkCost::default(),
        )
    }

    /// Warm-started token controller with an explicit link cost model.
    pub fn warm_started_with_link(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        calibration: &[SampleSemantics],
        link: LinkCost,
    ) -> ApparateTokenPolicy {
        let mut policy = ApparateTokenPolicy::with_link(deployment, config, reference_batch, link);
        policy.core.warm_start(calibration);
        policy
    }

    /// Current per-ramp thresholds as deployed on the GPU.
    pub fn thresholds(&self) -> &[f64] {
        &self.core.gpu.thresholds
    }

    /// Currently active feasible-site indices (controller view; the GPU
    /// converges one downlink delivery later).
    pub fn active_sites(&self) -> &[usize] {
        &self.core.controller.active_sites
    }

    /// Number of ramps in the plan the GPU is *currently executing* — trails
    /// [`ApparateTokenPolicy::active_sites`] by the downlink latency after a
    /// ramp-set change.
    pub fn deployed_ramps(&self) -> usize {
        self.core.gpu.plan.num_ramps()
    }

    /// Adaptation counters.
    pub fn stats(&self) -> ControllerStats {
        self.core.controller.stats
    }

    /// Attach a telemetry sink (see [`ApparatePolicy::set_telemetry`]); call
    /// before [`ApparateTokenPolicy::feedback_sender`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.core.set_telemetry(telemetry);
    }

    /// The uplink producer handle for
    /// [`apparate_serving::GenerativeSimulator::run_with_feedback`].
    pub fn feedback_sender(&self) -> FeedbackSender<ProfileRecord> {
        self.core.profile_tx.clone()
    }

    /// Coordination charges accumulated so far, both directions (§4.5).
    pub fn overhead_report(&self) -> OverheadReport {
        self.core.overhead_report()
    }
}

impl TokenPolicy for ApparateTokenPolicy {
    fn process_step(&mut self, slots: &[TokenSlot], step_start: SimTime) -> StepOutcome {
        self.samples_scratch.clear();
        self.samples_scratch
            .extend(slots.iter().map(|s| s.semantics));
        let (_full_pass, outcomes, profile) = self.core.step(&self.samples_scratch, step_start);
        let per_token: Vec<apparate_serving::TokenOutcome> = outcomes
            .into_iter()
            .map(|o| apparate_serving::TokenOutcome {
                release_offset: o.release_offset,
                exit_ramp: o.exit_ramp,
                correct: o.correct,
            })
            .collect();
        StepOutcome {
            // §3.4 parallel decoding: the step advances once every token has
            // released; the non-exited suffix overlaps subsequent steps.
            gpu_time: apparate_baselines::step_gpu_time(&per_token),
            per_token,
            profile: Some(profile),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_baselines::deploy_budget_sites;
    use apparate_core::RampArchitecture;
    use apparate_exec::SemanticsModel;
    use apparate_model::zoo;

    fn deployment(seed: u64) -> RampDeployment {
        let model = zoo::resnet(50);
        let semantics = SemanticsModel::new(seed, model.descriptor.overparameterization);
        deploy_budget_sites(
            &model,
            &semantics,
            &ApparateConfig::default(),
            RampArchitecture::Lightweight,
            400,
        )
    }

    fn request(i: u64, difficulty: f64) -> Request {
        Request::classification(
            i,
            SimTime::ZERO,
            SampleSemantics::new(i * 977, difficulty),
            None,
        )
    }

    /// Serve one batch the way the platform does: process it at `now`, then
    /// stream its profile over the uplink at batch completion. Returns the
    /// outcome and the batch completion time (serial GPU: the next batch
    /// starts there).
    fn drive(
        policy: &mut ApparatePolicy,
        batch: &[Request],
        now: SimTime,
    ) -> (BatchOutcome, SimTime) {
        let sender = policy.feedback_sender();
        let out = policy.process_batch(batch, now);
        let completed = now + out.gpu_time;
        if let Some(profile) = out.profile.clone() {
            let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
            sender.send(profile.into_record(completed, &ids), completed);
        }
        (out, completed)
    }

    #[test]
    fn controller_starts_conservative_then_tunes_up() {
        let mut policy = ApparatePolicy::new(deployment(3), ApparateConfig::default(), 4);
        assert!(policy.thresholds().iter().all(|&t| t == 0.0));
        // Feed easy traffic in batches of 8 until past the first tuning round.
        let mut exited_late = 0usize;
        let mut now = SimTime::ZERO;
        for round in 0..40u64 {
            let batch: Vec<Request> = (0..8)
                .map(|i| request(round * 8 + i, 0.15 + 0.1 * ((i % 4) as f64 / 4.0)))
                .collect();
            let (out, completed) = drive(&mut policy, &batch, now);
            now = completed;
            if round >= 10 {
                exited_late += out
                    .per_request
                    .iter()
                    .filter(|o| o.exit_ramp.is_some())
                    .count();
            }
        }
        assert!(policy.stats().tuning_rounds >= 1, "tuning should have run");
        assert!(
            policy.stats().updates_sent >= 1,
            "the tuned thresholds must have been shipped over the downlink"
        );
        assert!(
            policy.thresholds().iter().any(|&t| t > 0.0),
            "the tuned thresholds should have reached the GPU"
        );
        assert!(exited_late > 0, "easy inputs should exit after tuning");
    }

    #[test]
    fn controller_runs_ramp_adjustment_rounds() {
        let config = ApparateConfig::default();
        let mut policy = ApparatePolicy::new(deployment(9), config, 4);
        let mut now = SimTime::ZERO;
        for round in 0..150u64 {
            let batch: Vec<Request> = (0..8)
                .map(|i| request(round * 8 + i, 0.3 + 0.2 * ((i % 5) as f64 / 5.0)))
                .collect();
            let (_, completed) = drive(&mut policy, &batch, now);
            now = completed;
        }
        // 1 200 requests with a 128-request adjustment period (each tuning
        // round restarts the window): several rounds must have run.
        assert!(policy.stats().adjustment_rounds >= 2);
        // The active set stays within budget and sorted.
        let sites = policy.active_sites();
        assert!(sites.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn accuracy_stays_near_constraint_under_drift() {
        let mut policy = ApparatePolicy::new(deployment(11), ApparateConfig::default(), 4);
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut now = SimTime::ZERO;
        for round in 0..150u64 {
            // Difficulty drifts upward mid-run (scene change).
            let base = if round < 75 { 0.2 } else { 0.45 };
            let batch: Vec<Request> = (0..8)
                .map(|i| request(round * 8 + i, base + 0.05 * ((i % 3) as f64)))
                .collect();
            let (out, completed) = drive(&mut policy, &batch, now);
            now = completed;
            correct += out.per_request.iter().filter(|o| o.correct).count();
            total += out.per_request.len();
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy >= 0.97,
            "released accuracy {accuracy} should track the 1 % constraint"
        );
    }

    #[test]
    fn tuning_never_uses_observations_delivered_after_decision_time() {
        // A pathologically slow uplink: records take 10 s to arrive. The
        // controller keeps deciding at batch boundaries but must see nothing,
        // so thresholds stay at zero on both halves — even though, with a fast
        // link, the same traffic tunes within 40 rounds (see
        // controller_starts_conservative_then_tunes_up).
        let slow = LinkCost {
            fixed_us: 10_000_000.0,
            per_kib_us: 0.0,
        };
        let mut policy =
            ApparatePolicy::with_link(deployment(3), ApparateConfig::default(), 4, slow);
        let mut now = SimTime::ZERO;
        for round in 0..40u64 {
            let batch: Vec<Request> = (0..8)
                .map(|i| request(round * 8 + i, 0.15 + 0.1 * ((i % 4) as f64 / 4.0)))
                .collect();
            let (_, completed) = drive(&mut policy, &batch, now);
            now = completed;
        }
        assert_eq!(
            policy.stats().records_ingested,
            0,
            "records still on the wire must be invisible to the controller"
        );
        assert_eq!(policy.stats().tuning_rounds, 0);
        assert!(policy.thresholds().iter().all(|&t| t == 0.0));
        // Once simulated time passes the delivery horizon, the backlog lands
        // and the controller acts on it — proving the records were queued, not
        // lost, and that delivery time alone gated their visibility.
        let batch: Vec<Request> = (0..8).map(|i| request(10_000 + i, 0.2)).collect();
        let late = now + SimDuration::from_secs(11);
        drive(&mut policy, &batch, late);
        assert!(policy.stats().records_ingested > 0);
        assert!(policy.stats().tuning_rounds >= 1);
    }

    /// A generative-style deployment: decoder-head ramps, no bootstrap
    /// training set (§3.1).
    fn token_deployment(seed: u64) -> RampDeployment {
        let model = zoo::llama2_7b();
        let semantics = SemanticsModel::new(seed, model.descriptor.overparameterization);
        deploy_budget_sites(
            &model,
            &semantics,
            &ApparateConfig::default(),
            RampArchitecture::Lightweight,
            0,
        )
    }

    /// Offline calibration tokens (uniformly easy-to-moderate) for
    /// warm-starting the token controller.
    fn token_calibration(n: u64) -> Vec<SampleSemantics> {
        (0..n)
            .map(|i| SampleSemantics::new(i * 131, 0.2 + 0.2 * ((i % 5) as f64 / 5.0)))
            .collect()
    }

    fn slots(step: u64, batch: u64) -> Vec<TokenSlot> {
        (0..batch)
            .map(|i| TokenSlot {
                request_id: i,
                token_index: step as u32,
                semantics: SampleSemantics::new(step * 977 + i, 0.3 + 0.2 * ((i % 5) as f64 / 5.0)),
            })
            .collect()
    }

    /// Serve one decode step the way the platform does: process it at `now`,
    /// then stream its profile over the uplink at step completion. Returns
    /// the outcome and the step completion time.
    fn drive_token(
        policy: &mut ApparateTokenPolicy,
        step_slots: &[TokenSlot],
        now: SimTime,
    ) -> (StepOutcome, SimTime) {
        let sender = policy.feedback_sender();
        let out = policy.process_step(step_slots, now);
        let completed = now + out.gpu_time;
        if let Some(profile) = out.profile.clone() {
            let ids: Vec<u64> = step_slots.iter().map(|s| s.request_id).collect();
            sender.send(profile.into_record(completed, &ids), completed);
        }
        (out, completed)
    }

    #[test]
    fn token_controller_activates_and_deactivates_ramps_at_runtime() {
        // The Algorithm 2 loop on the decode path: with enough delivered
        // token observations the controller must re-select its active ramp
        // set at least once (activate/deactivate by hindsight savings vs.
        // overhead), re-tune thresholds afterwards, and drop the profiling
        // records that predate the change (their observation vectors index
        // the old ramp set).
        let calibration = token_calibration(256);
        let mut policy = ApparateTokenPolicy::warm_started(
            token_deployment(3),
            ApparateConfig::default(),
            8,
            &calibration,
        );
        let initial_sites = policy.active_sites().to_vec();
        let mut now = SimTime::ZERO;
        for step in 0..400u64 {
            let (_, completed) = drive_token(&mut policy, &slots(step, 8), now);
            now = completed;
        }
        let stats = policy.stats();
        assert!(
            stats.adjustment_rounds >= 1,
            "the token controller must run Algorithm 2 rounds"
        );
        assert!(
            stats.ramp_changes >= 1,
            "the token controller must change the active ramp set at least once"
        );
        assert_ne!(
            policy.active_sites(),
            initial_sites.as_slice(),
            "the active set should differ from the initial deployment"
        );
        assert!(
            stats.records_dropped >= 1,
            "records in flight across a ramp-set change must be dropped, not misread"
        );
        assert!(
            stats.tuning_rounds >= 2,
            "each ramp-set change must be followed by a threshold re-tune \
             (warm start counts as the first round)"
        );
        // The active set stays sorted and within the site space.
        let sites = policy.active_sites();
        assert!(sites.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn traced_controller_events_reconcile_with_stats() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let calibration = token_calibration(256);
        let mut policy = ApparateTokenPolicy::warm_started(
            token_deployment(3),
            ApparateConfig::default(),
            8,
            &calibration,
        );
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        policy.set_telemetry(telemetry.clone());
        let mut now = SimTime::ZERO;
        for step in 0..400u64 {
            let (_, completed) = drive_token(&mut policy, &slots(step, 8), now);
            now = completed;
        }
        let stats = policy.stats();
        let snap = telemetry.snapshot().expect("recording");
        assert_eq!(snap.count_kind("ramp-set-changed"), stats.ramp_changes);
        assert_eq!(snap.count_kind("update-issued"), stats.updates_sent);
        assert_eq!(
            snap.count_kind("stale-record-dropped"),
            stats.records_dropped
        );
        assert_eq!(
            snap.counter_total("stale_records_dropped") as usize,
            stats.records_dropped
        );
        assert!(stats.ramp_changes >= 1, "run must exercise a ramp change");
        // Every issued update is eventually delivered except those still on
        // the wire when the run ended.
        assert!(snap.count_kind("update-delivered") <= snap.count_kind("update-issued"));
        assert!(snap.count_kind("update-delivered") >= stats.ramp_changes);
        // The uplink trace reconciles with the charged link statistics.
        let report = policy.overhead_report();
        assert_eq!(
            snap.counter_total("link_up_messages"),
            report.uplink.messages
        );
        assert_eq!(snap.counter_total("link_up_bytes"), report.uplink.bytes);
        assert_eq!(
            snap.counter_total("link_down_messages"),
            report.downlink.messages
        );
        assert_eq!(snap.counter_total("link_down_bytes"), report.downlink.bytes);
        // The active-ramp gauge tracked the controller's decisions.
        assert!(!snap.series_named("active_ramps").is_empty());
    }

    #[test]
    fn token_ramp_set_changes_take_effect_only_after_downlink_delivery() {
        // A link slow enough (0.25 s each way) that many decode steps complete
        // between the controller's ramp-set decision and its delivery: every
        // one of those steps must still execute the old ramp set — a ramp-set
        // change never affects decode steps that completed before its
        // delivery time.
        let slow = LinkCost {
            fixed_us: 250_000.0,
            per_kib_us: 0.0,
        };
        let calibration = token_calibration(256);
        let mut policy = ApparateTokenPolicy::warm_started_with_link(
            token_deployment(3),
            ApparateConfig::default(),
            8,
            &calibration,
            slow,
        );
        let mut now = SimTime::ZERO;
        let mut decision: Option<(SimTime, usize)> = None;
        for step in 0..3_000u64 {
            let before_changes = policy.stats().ramp_changes;
            let deployed_before = policy.deployed_ramps();
            let (_, completed) = drive_token(&mut policy, &slots(step, 8), now);
            if decision.is_none() && policy.stats().ramp_changes > before_changes {
                // The controller decided during this step's poll; the GPU
                // plan it executed with was synced *before* any downlink
                // delivery of that decision could exist.
                decision = Some((now, deployed_before));
                assert_eq!(
                    policy.deployed_ramps(),
                    deployed_before,
                    "the GPU ramp set must not change in the decision step"
                );
            }
            if let Some((t0, old_ramps)) = decision {
                if policy.deployed_ramps() != old_ramps {
                    let lag = now.saturating_since(t0);
                    assert!(
                        lag >= SimDuration::from_micros(250_000),
                        "ramp set reached the GPU after {lag:?}, before the 0.25 s downlink latency"
                    );
                    return;
                }
            }
            now = completed;
        }
        panic!(
            "no GPU-visible ramp-set change observed (decision: {:?})",
            decision.map(|(t, _)| t)
        );
    }

    #[test]
    fn threshold_updates_take_effect_only_after_downlink_delivery() {
        // A link slow enough (0.5 s each way) that the GPU keeps serving with
        // zero thresholds for many batches after the controller has tuned.
        let slow = LinkCost {
            fixed_us: 500_000.0,
            per_kib_us: 0.0,
        };
        let mut policy =
            ApparatePolicy::with_link(deployment(3), ApparateConfig::default(), 4, slow);
        let mut now = SimTime::ZERO;
        let mut tuned_at: Option<SimTime> = None;
        for round in 0..200u64 {
            let batch: Vec<Request> = (0..8)
                .map(|i| request(round * 8 + i, 0.15 + 0.1 * ((i % 4) as f64 / 4.0)))
                .collect();
            let before_rounds = policy.stats().tuning_rounds;
            let (_, completed) = drive(&mut policy, &batch, now);
            if tuned_at.is_none() && policy.stats().tuning_rounds > before_rounds {
                tuned_at = Some(now);
                // The controller has decided, but the GPU copy is still zero:
                // the update is on the wire for the next 0.5 s.
                assert!(
                    policy.thresholds().iter().all(|&t| t == 0.0),
                    "GPU thresholds must not change before downlink delivery"
                );
            }
            if let Some(t0) = tuned_at {
                if policy.thresholds().iter().any(|&t| t > 0.0) {
                    let lag = now.saturating_since(t0);
                    assert!(
                        lag >= SimDuration::from_micros(500_000),
                        "thresholds applied after {lag:?}, before the 0.5 s downlink latency"
                    );
                    return;
                }
            }
            now = completed;
        }
        panic!("tuned thresholds never reached the GPU");
    }
}
