//! The live Apparate controller: the threshold/adjust/monitor loop of §3
//! wired into the serving platform's policy hooks.
//!
//! `apparate-core` provides the individual algorithms (greedy threshold
//! tuning, utility-driven ramp adjustment, monitoring windows); this module
//! composes them into a closed loop that runs *inside* a serving simulation:
//!
//! 1. every batch/decode step produces per-ramp observations for every
//!    request (free, because inputs run to the model head, §3.2);
//! 2. the monitor ingests them; an accuracy violation over the 16-sample
//!    window triggers threshold re-tuning on the recorded tuning window;
//! 3. every `ramp_adjust_period` requests the utility-based ramp adjuster
//!    (Algorithm 2) deactivates harmful ramps, trials replacements, or probes
//!    earlier positions, after which thresholds are re-tuned.

use apparate_baselines::{
    exit_outcome, offline_tuned_thresholds, per_ramp_savings_us, RampDeployment,
};
use apparate_core::{
    adjust_ramps, greedy_tune, ramp_utilities, AdjustInput, ApparateConfig, GreedyParams, Monitor,
    RequestFeedback, ThresholdEvaluator, TrainedRamp,
};
use apparate_exec::{ExecutionPlan, SampleSemantics};
use apparate_serving::{BatchOutcome, ExitPolicy, Request, StepOutcome, TokenPolicy, TokenSlot};
use apparate_sim::{SimDuration, SimTime};

/// Counters describing what the controller did during a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// Threshold-tuning rounds executed.
    pub tuning_rounds: usize,
    /// Ramp-adjustment rounds executed.
    pub adjustment_rounds: usize,
    /// Adjustment rounds that changed the active ramp set.
    pub ramp_changes: usize,
}

/// The shared controller core driving both the classification and the
/// generative policy wrappers.
struct ControllerCore {
    plan: ExecutionPlan,
    config: ApparateConfig,
    thresholds: Vec<f64>,
    monitor: Monitor,
    /// Feasible-site bookkeeping for ramp adjustment.
    all_sites: Vec<apparate_core::RampSite>,
    active_sites: Vec<usize>,
    max_active: usize,
    capacity: f64,
    /// Reference batch size for savings/overhead accounting.
    reference_batch: u32,
    /// Per-feasible-site per-exit savings (µs) at the reference batch.
    site_savings_us: Vec<f64>,
    /// Whether ramp adjustment is enabled (classification: yes; the token
    /// controller currently adapts thresholds only).
    adjust_enabled: bool,
    /// Per-active-ramp exit counts since the last adjustment round. Tracked
    /// here (not via the monitor) so a no-op adjustment round does not have to
    /// clear the threshold-tuning window.
    adjust_exits: Vec<u64>,
    /// Requests observed since the last adjustment round.
    adjust_requests: u64,
    needs_tune: bool,
    records_since_tune: usize,
    stats: ControllerStats,
}

/// Fraction of the accuracy budget the tuner may spend *in-window*; the rest
/// absorbs generalisation error and drift between retunes.
const TUNING_SAFETY: f64 = 0.6;

/// Cap on tuned thresholds: an exit is only taken on genuinely confident ramp
/// output. Uncapped tuning saturates deep-ramp thresholds whenever the window
/// happens to contain no hard inputs at that depth (censoring), which is
/// exactly where drift then bites hardest.
const MAX_TUNED_THRESHOLD: f64 = 0.35;

impl ControllerCore {
    /// Warm-start thresholds from offline calibration samples (the bootstrap
    /// validation split, §3.1): the paper tunes initial thresholds on
    /// bootstrap data before serving begins, so the controller does not have
    /// to serve a whole tuning window at thresholds 0 first.
    fn warm_start(&mut self, calibration: &[SampleSemantics]) {
        if calibration.is_empty() || self.plan.num_ramps() == 0 {
            return;
        }
        let outcome = offline_tuned_thresholds(
            &self.plan,
            calibration,
            self.tuning_params(),
            self.reference_batch,
        );
        self.thresholds = outcome.thresholds;
        self.needs_tune = false;
        self.stats.tuning_rounds += 1;
    }

    /// The (conservative) greedy-search parameters every tuning round uses.
    fn tuning_params(&self) -> GreedyParams {
        GreedyParams {
            // Tune against a fraction of the user's budget: the greedy search
            // picks the savings-maximal configuration that scrapes the
            // in-window floor, so its out-of-window accuracy is systematically
            // below the floor (winner's curse). Spending only part of the
            // budget in-window keeps the *realised* loss within the
            // constraint.
            accuracy_loss_budget: self.config.accuracy_constraint * TUNING_SAFETY,
            initial_step: self.config.initial_step,
            smallest_step: self.config.smallest_step,
            max_threshold: MAX_TUNED_THRESHOLD,
        }
    }

    fn new(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        adjust_enabled: bool,
    ) -> ControllerCore {
        config.validate().expect("valid Apparate configuration");
        let RampDeployment {
            plan,
            all_sites,
            active_sites,
            max_active,
            capacity,
        } = deployment;
        let site_savings_us = all_sites
            .iter()
            .map(|s| {
                (plan.vanilla_total_us(reference_batch)
                    - plan.site_prefix_us(s.site, reference_batch))
                .max(0.0)
            })
            .collect();
        let num_ramps = plan.num_ramps();
        ControllerCore {
            thresholds: vec![0.0; num_ramps],
            monitor: Monitor::new(num_ramps, config.accuracy_window, config.tuning_window),
            plan,
            config,
            all_sites,
            active_sites,
            max_active,
            capacity,
            reference_batch,
            site_savings_us,
            adjust_enabled,
            adjust_exits: vec![0; num_ramps],
            adjust_requests: 0,
            needs_tune: true,
            records_since_tune: 0,
            stats: ControllerStats::default(),
        }
    }

    /// Process one batch of samples: produce release decisions, feed the
    /// monitor, and run any triggered adaptation.
    fn step(
        &mut self,
        samples: &[SampleSemantics],
    ) -> (SimDuration, Vec<apparate_serving::RequestOutcome>) {
        let exec = self.plan.execute_batch(samples);
        let b = samples.len() as u32;
        let outcomes: Vec<apparate_serving::RequestOutcome> = exec
            .per_request
            .iter()
            .map(|obs| exit_outcome(&self.plan, obs, &self.thresholds, b))
            .collect();
        for (obs, outcome) in exec.per_request.iter().zip(outcomes.iter()) {
            self.monitor.record(RequestFeedback {
                observations: obs.ramp_observations.clone(),
                exited: outcome.exit_ramp,
                correct: outcome.correct,
                batch_size: b,
            });
            if let Some(ramp) = outcome.exit_ramp {
                self.adjust_exits[ramp] += 1;
            }
            self.adjust_requests += 1;
            self.records_since_tune += 1;
        }
        self.maybe_adjust();
        self.maybe_tune();
        (
            SimDuration::from_micros_f64(self.plan.gpu_batch_time_us(b)),
            outcomes,
        )
    }

    fn accuracy_floor(&self) -> f64 {
        1.0 - self.config.accuracy_constraint
    }

    fn maybe_tune(&mut self) {
        // Tuning only ever runs on a *full* window: with the 0.99 accuracy
        // floor, a short window accepts threshold configurations with zero
        // in-window errors that generalise poorly (saturated thresholds),
        // which is precisely the over-aggressiveness the floor is meant to
        // prevent.
        if self.plan.num_ramps() == 0
            || self.monitor.tuning_window_len() < self.config.tuning_window
        {
            return;
        }
        let initial_due = self.needs_tune;
        let violation_due = self.monitor.accuracy_window_full()
            && self.monitor.windowed_accuracy() + 1e-12 < self.accuracy_floor()
            && self.records_since_tune >= self.config.accuracy_window;
        if !initial_due && !violation_due {
            return;
        }
        let records = self.monitor.tuning_records();
        if records.is_empty() {
            return;
        }
        let savings = per_ramp_savings_us(&self.plan, self.reference_batch);
        let evaluator = ThresholdEvaluator::new(&records, &savings);
        let outcome = greedy_tune(&evaluator, self.tuning_params());
        self.thresholds = outcome.thresholds;
        self.needs_tune = false;
        self.records_since_tune = 0;
        // Restart the adjustment window: utilities must describe the ramps'
        // behaviour under the thresholds actually deployed.
        self.adjust_exits = vec![0; self.plan.num_ramps()];
        self.adjust_requests = 0;
        self.stats.tuning_rounds += 1;
    }

    fn maybe_adjust(&mut self) {
        // Never adjust ramps that have not been threshold-tuned yet: with
        // all-zero thresholds nothing exits, every ramp's utility is pure
        // overhead, and the adjuster would (correctly, but uselessly)
        // deactivate the entire deployment before it ever got a chance.
        if !self.adjust_enabled
            || self.needs_tune
            || self.plan.num_ramps() == 0
            || self.adjust_requests < self.config.ramp_adjust_period as u64
        {
            return;
        }
        self.stats.adjustment_rounds += 1;
        let active_savings = per_ramp_savings_us(&self.plan, self.reference_batch);
        let active_overheads: Vec<f64> = self
            .plan
            .ramps()
            .iter()
            .map(|r| r.cost.latency_us(self.reference_batch))
            .collect();
        let utilities = ramp_utilities(
            &self.adjust_exits,
            self.adjust_requests,
            &active_savings,
            &active_overheads,
        );
        let nets: Vec<f64> = utilities.iter().map(|u| u.net_us()).collect();
        let per_request_overhead_us = active_overheads.iter().copied().fold(0.0f64, f64::max);
        let exit_rates: Vec<f64> = self
            .adjust_exits
            .iter()
            .map(|&e| e as f64 / self.adjust_requests.max(1) as f64)
            .collect();
        let decision = adjust_ramps(&AdjustInput {
            num_sites: self.all_sites.len(),
            active_sites: &self.active_sites,
            utilities_us: &nets,
            exit_rates: &exit_rates,
            window_requests: self.adjust_requests,
            per_exit_saving_us: &self.site_savings_us,
            per_request_overhead_us,
            max_active: self.max_active,
        });
        if decision.new_active != self.active_sites {
            // Carry thresholds for retained ramps; newly added ramps start at 0
            // until the post-adjustment tuning round (§3.3).
            let old: Vec<(usize, f64)> = self
                .active_sites
                .iter()
                .copied()
                .zip(self.thresholds.iter().copied())
                .collect();
            let placements = decision
                .new_active
                .iter()
                .map(|&idx| {
                    TrainedRamp {
                        site: self.all_sites[idx],
                        capacity: self.capacity,
                    }
                    .placement()
                })
                .collect();
            self.plan = self.plan.with_ramps(placements);
            self.thresholds = decision
                .new_active
                .iter()
                .map(|&idx| {
                    old.iter()
                        .find(|(site, _)| *site == idx)
                        .map(|(_, thr)| *thr)
                        .unwrap_or(0.0)
                })
                .collect();
            self.active_sites = decision.new_active;
            self.needs_tune = true;
            self.stats.ramp_changes += 1;
            // Recorded observations no longer line up with the new ramp
            // indices; the tuning window must refill before the next tune.
            self.monitor.reset_for_new_ramps(self.plan.num_ramps());
        }
        self.adjust_exits = vec![0; self.plan.num_ramps()];
        self.adjust_requests = 0;
    }
}

/// Apparate's adaptive [`ExitPolicy`] for classification serving.
pub struct ApparatePolicy {
    core: ControllerCore,
    name: String,
}

impl ApparatePolicy {
    /// Deploy Apparate over a prepared ramp deployment with all-zero initial
    /// thresholds (the first tune happens online, once the window fills).
    pub fn new(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
    ) -> ApparatePolicy {
        ApparatePolicy {
            core: ControllerCore::new(deployment, config, reference_batch, true),
            name: "apparate".to_string(),
        }
    }

    /// Deploy Apparate with thresholds warm-started on offline calibration
    /// samples (the bootstrap validation split, §3.1), then adapt online.
    pub fn warm_started(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        calibration: &[SampleSemantics],
    ) -> ApparatePolicy {
        let mut policy = ApparatePolicy::new(deployment, config, reference_batch);
        policy.core.warm_start(calibration);
        policy
    }

    /// Current per-ramp thresholds (for reports and tests).
    pub fn thresholds(&self) -> &[f64] {
        &self.core.thresholds
    }

    /// Currently active feasible-site indices.
    pub fn active_sites(&self) -> &[usize] {
        &self.core.active_sites
    }

    /// Adaptation counters.
    pub fn stats(&self) -> ControllerStats {
        self.core.stats
    }
}

impl ExitPolicy for ApparatePolicy {
    fn process_batch(&mut self, batch: &[Request], _batch_start: SimTime) -> BatchOutcome {
        let samples: Vec<SampleSemantics> = batch.iter().map(|r| r.semantics).collect();
        let (gpu_time, per_request) = self.core.step(&samples);
        BatchOutcome {
            gpu_time,
            per_request,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Apparate's adaptive [`TokenPolicy`] for generative serving.
///
/// Token-level adaptation re-tunes thresholds continuously exactly as the
/// classification controller does; ramp-set adjustment is left static for now
/// (generative ramps reuse the decoder head at every block, §3.1, so the
/// placement search space is uniform to begin with).
pub struct ApparateTokenPolicy {
    core: ControllerCore,
    name: String,
}

impl ApparateTokenPolicy {
    /// Deploy the token controller over a prepared ramp deployment.
    pub fn new(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
    ) -> ApparateTokenPolicy {
        ApparateTokenPolicy {
            core: ControllerCore::new(deployment, config, reference_batch, false),
            name: "apparate".to_string(),
        }
    }

    /// Deploy the token controller with thresholds warm-started on offline
    /// calibration tokens, then adapt online.
    pub fn warm_started(
        deployment: RampDeployment,
        config: ApparateConfig,
        reference_batch: u32,
        calibration: &[SampleSemantics],
    ) -> ApparateTokenPolicy {
        let mut policy = ApparateTokenPolicy::new(deployment, config, reference_batch);
        policy.core.warm_start(calibration);
        policy
    }

    /// Current per-ramp thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.core.thresholds
    }

    /// Adaptation counters.
    pub fn stats(&self) -> ControllerStats {
        self.core.stats
    }
}

impl TokenPolicy for ApparateTokenPolicy {
    fn process_step(&mut self, slots: &[TokenSlot], _step_start: SimTime) -> StepOutcome {
        let samples: Vec<SampleSemantics> = slots.iter().map(|s| s.semantics).collect();
        let (_full_pass, outcomes) = self.core.step(&samples);
        let per_token: Vec<apparate_serving::TokenOutcome> = outcomes
            .into_iter()
            .map(|o| apparate_serving::TokenOutcome {
                release_offset: o.release_offset,
                exit_ramp: o.exit_ramp,
                correct: o.correct,
            })
            .collect();
        StepOutcome {
            // §3.4 parallel decoding: the step advances once every token has
            // released; the non-exited suffix overlaps subsequent steps.
            gpu_time: apparate_baselines::step_gpu_time(&per_token),
            per_token,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_baselines::deploy_budget_sites;
    use apparate_core::RampArchitecture;
    use apparate_exec::SemanticsModel;
    use apparate_model::zoo;

    fn deployment(seed: u64) -> RampDeployment {
        let model = zoo::resnet(50);
        let semantics = SemanticsModel::new(seed, model.descriptor.overparameterization);
        deploy_budget_sites(
            &model,
            &semantics,
            &ApparateConfig::default(),
            RampArchitecture::Lightweight,
            400,
        )
    }

    fn request(i: u64, difficulty: f64) -> Request {
        Request::classification(
            i,
            SimTime::ZERO,
            SampleSemantics::new(i * 977, difficulty),
            None,
        )
    }

    #[test]
    fn controller_starts_conservative_then_tunes_up() {
        let mut policy = ApparatePolicy::new(deployment(3), ApparateConfig::default(), 4);
        assert!(policy.thresholds().iter().all(|&t| t == 0.0));
        // Feed easy traffic in batches of 8 until past the first tuning round.
        let mut exited_late = 0usize;
        for round in 0..40u64 {
            let batch: Vec<Request> = (0..8)
                .map(|i| request(round * 8 + i, 0.15 + 0.1 * ((i % 4) as f64 / 4.0)))
                .collect();
            let out = policy.process_batch(&batch, SimTime::ZERO);
            if round >= 10 {
                exited_late += out
                    .per_request
                    .iter()
                    .filter(|o| o.exit_ramp.is_some())
                    .count();
            }
        }
        assert!(policy.stats().tuning_rounds >= 1, "tuning should have run");
        assert!(
            policy.thresholds().iter().any(|&t| t > 0.0),
            "tuning should open at least one ramp"
        );
        assert!(exited_late > 0, "easy inputs should exit after tuning");
    }

    #[test]
    fn controller_runs_ramp_adjustment_rounds() {
        let config = ApparateConfig::default();
        let mut policy = ApparatePolicy::new(deployment(9), config, 4);
        for round in 0..150u64 {
            let batch: Vec<Request> = (0..8)
                .map(|i| request(round * 8 + i, 0.3 + 0.2 * ((i % 5) as f64 / 5.0)))
                .collect();
            policy.process_batch(&batch, SimTime::ZERO);
        }
        // 1 200 requests with a 128-request adjustment period (each tuning
        // round restarts the window): several rounds must have run.
        assert!(policy.stats().adjustment_rounds >= 2);
        // The active set stays within budget and sorted.
        let sites = policy.active_sites();
        assert!(sites.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn accuracy_stays_near_constraint_under_drift() {
        let mut policy = ApparatePolicy::new(deployment(11), ApparateConfig::default(), 4);
        let mut correct = 0usize;
        let mut total = 0usize;
        for round in 0..150u64 {
            // Difficulty drifts upward mid-run (scene change).
            let base = if round < 75 { 0.2 } else { 0.45 };
            let batch: Vec<Request> = (0..8)
                .map(|i| request(round * 8 + i, base + 0.05 * ((i % 3) as f64)))
                .collect();
            let out = policy.process_batch(&batch, SimTime::ZERO);
            correct += out.per_request.iter().filter(|o| o.correct).count();
            total += out.per_request.len();
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy >= 0.97,
            "released accuracy {accuracy} should track the 1 % constraint"
        );
    }
}
