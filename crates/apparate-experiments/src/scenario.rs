//! Scenario wiring: workload generator → model zoo → execution plan → serving
//! simulator → policies → comparison table.
//!
//! Each scenario pins one model from the zoo to one synthetic workload and one
//! arrival process, then runs Apparate head-to-head against the full baseline
//! family under identical arrivals, identical semantics draws (courtesy of the
//! splittable RNG) and an identical serving platform. Everything is derived
//! from a single experiment seed, so a scenario is reproducible end to end.

use apparate_baselines::{
    batch_time_fn, deploy_all_sites, deploy_budget_sites, offline_tuned_thresholds, vanilla_policy,
    OracleExitPolicy, OracleTokenPolicy, RampDeployment, StaticExitPolicy, StaticTokenPolicy,
};
use apparate_core::{ApparateConfig, GreedyParams, RampArchitecture};
use apparate_exec::{ExecutionPlan, OverheadReport, SampleSemantics, SemanticsModel};
use apparate_model::{zoo, LayerId, ZooModel};
use apparate_serving::{
    latency_cdf, tpt_cdf, ArrivalTrace, ContinuousBatchingConfig, GenerativeSimulator,
    LatencySummary, Request, ServingConfig, ServingSimulator, TokenSemantics, VanillaTokenPolicy,
};
use apparate_sim::{Cdf, DeterministicRng, SimDuration};
use apparate_telemetry::Telemetry;
use apparate_workload::{
    amazon_reviews, video_workload, AmazonConfig, GenerativeConfig, GenerativeTask,
    GenerativeWorkload, VideoConfig, Workload,
};

use crate::controller::{ApparatePolicy, ApparateTokenPolicy};
use crate::report::{ComparisonTable, OverheadRow, OverheadTable};

/// Fixed threshold used by the static baselines: conservative enough to hold
/// accuracy on every scenario, which makes the latency comparison against the
/// adaptive controller an equal-accuracy comparison.
pub const STATIC_THRESHOLD: f64 = 0.2;

/// Controller configuration used by the comparison scenarios: the paper's
/// knobs and trigger windows, with larger tuning/adjustment windows (256/512
/// instead of 64/128). The synthetic semantics model is noisier per ramp than
/// trained ramps, and with the 1 % accuracy floor a 64-record window accepts
/// zero-in-window-error threshold configurations that generalise poorly; the
/// wider windows restore the intended safety margin without touching the two
/// user-facing knobs.
pub fn scenario_config() -> ApparateConfig {
    ApparateConfig {
        tuning_window: 512,
        ramp_adjust_period: 512,
        ..ApparateConfig::default()
    }
}

/// Workload sizes for one repro pass. The serving split is 90 % of these
/// counts (§3.1's bootstrap takes the first 10 %).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReproSizes {
    /// Frames in the CV video stream.
    pub cv_frames: usize,
    /// Requests in the NLP sentiment stream.
    pub nlp_requests: usize,
    /// Requests in the generative summarisation workload.
    pub gen_requests: usize,
}

impl ReproSizes {
    /// The paper-scale run (`repro` without `--quick`).
    pub fn full() -> ReproSizes {
        ReproSizes {
            cv_frames: 9_000,
            nlp_requests: 9_000,
            gen_requests: 150,
        }
    }

    /// The CI-friendly run (`repro --quick`): same structure, a third of the
    /// stream.
    pub fn quick() -> ReproSizes {
        ReproSizes {
            cv_frames: 3_000,
            nlp_requests: 3_000,
            gen_requests: 60,
        }
    }

    /// Bench-sized streams: big enough that the controller tunes and adjusts
    /// at least once, small enough to sample repeatedly in a benchmark loop.
    pub fn bench() -> ReproSizes {
        ReproSizes {
            cv_frames: 1_200,
            nlp_requests: 1_200,
            gen_requests: 24,
        }
    }
}

/// Which scenarios a repro pass covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioSelect {
    /// CV only (ResNet-50 over the urban-night video stream).
    Cv,
    /// NLP only (BERT-base over Amazon reviews).
    Nlp,
    /// Generative only (Llama2-7B summarisation).
    Generative,
    /// All three, in CV → NLP → generative order.
    All,
}

impl std::str::FromStr for ScenarioSelect {
    type Err = String;

    fn from_str(s: &str) -> Result<ScenarioSelect, String> {
        match s {
            "cv" => Ok(ScenarioSelect::Cv),
            "nlp" => Ok(ScenarioSelect::Nlp),
            "generative" => Ok(ScenarioSelect::Generative),
            "all" => Ok(ScenarioSelect::All),
            other => Err(format!("unknown scenario: {other}")),
        }
    }
}

/// Latency CDFs of the two headline policies, for CDF-style figures
/// (Figures 2, 4, 14, 16): vanilla serving against the Apparate run.
pub struct ScenarioCdfs {
    /// Vanilla serving latency (or TPT) CDF in milliseconds.
    pub vanilla: Cdf,
    /// Apparate latency (or TPT) CDF in milliseconds.
    pub apparate: Cdf,
}

/// One scenario's full result: the policy comparison table plus the §4.5
/// coordination-overhead charges of the Apparate run inside it.
pub struct ScenarioRun {
    /// The paper-style win table.
    pub table: ComparisonTable,
    /// GPU ↔ controller link charges of the Apparate policy.
    pub overhead: OverheadRow,
    /// Vanilla/Apparate latency CDFs (for the examples' CDF dumps).
    pub cdfs: ScenarioCdfs,
}

/// Run the selected comparison scenarios at the given sizes and return their
/// tables in a fixed order. This is the reusable entry point behind the
/// `repro` binary and the `e2e` bench suite: everything is derived from
/// `seed`, so the same arguments always produce the same tables.
pub fn run_scenarios(seed: u64, sizes: ReproSizes, select: ScenarioSelect) -> Vec<ComparisonTable> {
    run_scenarios_full(seed, sizes, select)
        .into_iter()
        .map(|run| run.table)
        .collect()
}

/// Like [`run_scenarios`], but additionally returns each scenario's §4.5
/// overhead charges (the `overhead` experiment).
pub fn run_scenarios_full(
    seed: u64,
    sizes: ReproSizes,
    select: ScenarioSelect,
) -> Vec<ScenarioRun> {
    run_scenarios_traced(seed, sizes, select, &Telemetry::disabled())
}

/// Like [`run_scenarios_full`], with a telemetry sink attached to each
/// scenario's *Apparate* run (baselines stay untraced — the trace describes
/// the system under study, not the comparison family). Scenario `i` is tagged
/// as replica lane `i`, so per-scenario series never interleave; fleet runs
/// re-tag per actual replica instead.
pub fn run_scenarios_traced(
    seed: u64,
    sizes: ReproSizes,
    select: ScenarioSelect,
    telemetry: &Telemetry,
) -> Vec<ScenarioRun> {
    run_scenarios_traced_config(seed, sizes, select, telemetry, scenario_config())
}

/// Like [`run_scenarios_traced`] with an explicit controller configuration —
/// the hook `repro --full-retune` uses to run every scenario with the
/// full-retune tuning oracle instead of the incremental tuner.
pub fn run_scenarios_traced_config(
    seed: u64,
    sizes: ReproSizes,
    select: ScenarioSelect,
    telemetry: &Telemetry,
    config: ApparateConfig,
) -> Vec<ScenarioRun> {
    let mut runs = Vec::new();
    let mut lane = 0u32;
    // Scenario lanes are derived handles over the same session: lane `i`
    // records into its own per-replica buffer and the merged snapshot keys
    // series/counters by `(name, lane)`.
    let mut next_lane = || {
        let handle = telemetry.for_replica(lane);
        lane += 1;
        handle
    };
    if matches!(select, ScenarioSelect::Cv | ScenarioSelect::All) {
        let lane = next_lane();
        runs.push(run_classification_traced_config(
            &cv_scenario(seed, sizes.cv_frames),
            &lane,
            config,
        ));
    }
    if matches!(select, ScenarioSelect::Nlp | ScenarioSelect::All) {
        let lane = next_lane();
        runs.push(run_classification_traced_config(
            &nlp_scenario(seed, sizes.nlp_requests),
            &lane,
            config,
        ));
    }
    if matches!(select, ScenarioSelect::Generative | ScenarioSelect::All) {
        let lane = next_lane();
        runs.push(run_generative_traced_config(
            &generative_scenario(seed, sizes.gen_requests),
            &lane,
            config,
        ));
    }
    runs
}

/// The `overhead` scenario: run *only* the Apparate policy over the selected
/// workloads and collect its coordination charges, rendered as one §4.5-style
/// table. Much cheaper than [`run_scenarios_full`] — the baseline family pays
/// no link cost, so it is not simulated here.
pub fn run_overhead(seed: u64, sizes: ReproSizes, select: ScenarioSelect) -> OverheadTable {
    let mut rows = Vec::new();
    if matches!(select, ScenarioSelect::Cv | ScenarioSelect::All) {
        rows.push(run_classification_overhead(&cv_scenario(
            seed,
            sizes.cv_frames,
        )));
    }
    if matches!(select, ScenarioSelect::Nlp | ScenarioSelect::All) {
        rows.push(run_classification_overhead(&nlp_scenario(
            seed,
            sizes.nlp_requests,
        )));
    }
    if matches!(select, ScenarioSelect::Generative | ScenarioSelect::All) {
        rows.push(run_generative_overhead(&generative_scenario(
            seed,
            sizes.gen_requests,
        )));
    }
    OverheadTable::new(rows)
}

/// How arrivals are generated for a classification scenario.
#[derive(Debug, Clone, Copy)]
pub enum TraceKind {
    /// Fixed-rate arrivals (video frames at a given fps).
    FixedRate(f64),
    /// MAF-like bursty arrivals with the given mean rate.
    MafLike(f64),
}

/// A classification comparison scenario.
pub struct ClassificationScenario {
    /// Scenario identifier used in reports.
    pub name: String,
    /// The served model.
    pub model: ZooModel,
    /// The difficulty stream.
    pub workload: Workload,
    /// Arrival process for the serving split.
    pub trace: TraceKind,
    /// Platform configuration (batching + SLO).
    pub serving: ServingConfig,
    /// Reference batch size for savings accounting.
    pub reference_batch: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl ClassificationScenario {
    /// The scenario with its mean arrival rate scaled by `factor` — e.g. the
    /// aggregate stream of `factor` cameras feeding one fleet. This is what
    /// makes scale-out experiments meaningful: a shared trace heavy enough
    /// that a single replica queues without bound while N replicas are
    /// comfortably provisioned.
    pub fn with_arrival_scale(mut self, factor: f64) -> ClassificationScenario {
        assert!(factor > 0.0, "arrival scale must be positive");
        self.trace = match self.trace {
            TraceKind::FixedRate(hz) => TraceKind::FixedRate(hz * factor),
            TraceKind::MafLike(hz) => TraceKind::MafLike(hz * factor),
        };
        self.name = format!("{} load×{factor}", self.name);
        self
    }

    /// The scenario with its SLO scaled by `factor` (the Figure 17 knob):
    /// 0.5 halves the deadline, 2.0 doubles it. Batching stays SLO-aware, so
    /// tighter SLOs force smaller batches and stress the latency/throughput
    /// tension. Panics on a scenario without an SLO — scaling nothing would
    /// render a fake flat sensitivity grid.
    pub fn with_slo_scale(mut self, factor: f64) -> ClassificationScenario {
        assert!(factor > 0.0, "SLO scale must be positive");
        let slo = self
            .serving
            .slo
            .expect("with_slo_scale requires a scenario with an SLO");
        let scaled = SimDuration::from_micros_f64(slo.as_micros() as f64 * factor);
        self.serving.slo = Some(scaled);
        self.name = format!("{} slo×{factor}", self.name);
        self
    }
}

/// Knob grids for the sensitivity sweeps: the SLO scales of Figure 17 and the
/// accuracy constraints of Figure 19, applied to one base scenario each.
#[derive(Debug, Clone)]
pub struct SensitivityGrid {
    /// Multipliers applied to the scenario's default SLO.
    pub slo_scales: Vec<f64>,
    /// Accuracy-loss budgets handed to the controller (0.01 = 1 %).
    pub accuracy_constraints: Vec<f64>,
}

impl SensitivityGrid {
    /// The paper's grids: SLO from half to double the default (Figure 17),
    /// accuracy budgets from 0.5 % to 5 % (Figure 19).
    pub fn paper() -> SensitivityGrid {
        SensitivityGrid {
            slo_scales: vec![0.5, 0.75, 1.0, 1.5, 2.0],
            accuracy_constraints: vec![0.005, 0.01, 0.02, 0.05],
        }
    }

    /// A three-point version of each grid for CI smoke runs.
    pub fn quick() -> SensitivityGrid {
        SensitivityGrid {
            slo_scales: vec![0.5, 1.0, 2.0],
            accuracy_constraints: vec![0.005, 0.01, 0.02],
        }
    }
}

/// A generative comparison scenario.
pub struct GenerativeScenario {
    /// Scenario identifier used in reports.
    pub name: String,
    /// The served model (decode pass).
    pub model: ZooModel,
    /// The token workload.
    pub workload: GenerativeWorkload,
    /// Mean Poisson arrival rate (requests per second).
    pub arrival_rate: f64,
    /// Continuous-batching configuration.
    pub batching: ContinuousBatchingConfig,
    /// Reference batch size for savings accounting.
    pub reference_batch: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl GenerativeScenario {
    /// The scenario with its mean arrival rate scaled by `factor` — e.g. the
    /// aggregate stream of `factor` tenants feeding one decode fleet. Like
    /// [`ClassificationScenario::with_arrival_scale`], this is what makes
    /// generative scale-out meaningful: a stream heavy enough that a single
    /// replica's continuous batch pins at its cap (and sequences queue) while
    /// N replicas decode comfortably thinner batches.
    pub fn with_arrival_scale(mut self, factor: f64) -> GenerativeScenario {
        assert!(factor > 0.0, "arrival scale must be positive");
        self.arrival_rate *= factor;
        self.name = format!("{} load×{factor}", self.name);
        self
    }
}

/// The paper's CV scenario: ResNet-50 over a night-time urban video stream
/// (strong continuity, hard lighting, scene changes) at 60 fps aggregate.
pub fn cv_scenario(seed: u64, frames: usize) -> ClassificationScenario {
    let model = zoo::resnet(50);
    let workload = video_workload(
        "urban-night",
        VideoConfig {
            frames,
            night: true,
            ..VideoConfig::default()
        },
        DeterministicRng::new(seed).child(0xC0).seed(),
    );
    let slo_ms = model.descriptor.default_slo_ms;
    ClassificationScenario {
        name: format!("cv/resnet50/{}", workload.name),
        model,
        workload,
        trace: TraceKind::FixedRate(30.0),
        serving: ServingConfig::clockwork(slo_ms, 8),
        reference_batch: 4,
        seed,
    }
}

/// The overload scenario for the streaming-ingest experiments: the CV
/// comparison workload under a *bursty diurnal* arrival stream instead of
/// fixed-fps frames — a MAF-like process whose slow sinusoidal baseline and
/// 2–4× multiplicative bursts model an aggregate camera feed over a day.
/// At its base mean rate one replica keeps up with headroom; scaled by
/// [`ClassificationScenario::with_arrival_scale`] (the 2–8× overload axis)
/// the bursts pile queueing delay far past the SLO, which is exactly the
/// regime the admission controller is judged in.
pub fn diurnal_scenario(seed: u64, frames: usize) -> ClassificationScenario {
    let mut scenario = cv_scenario(seed, frames);
    scenario.name = "cv/resnet50/diurnal".to_string();
    scenario.trace = TraceKind::MafLike(30.0);
    scenario
}

/// The paper's NLP scenario: BERT-base sentiment over the Amazon-reviews
/// stream (weak continuity, block structure) under bursty MAF-like arrivals.
pub fn nlp_scenario(seed: u64, requests: usize) -> ClassificationScenario {
    let model = zoo::bert_base();
    let workload = amazon_reviews(
        AmazonConfig {
            requests,
            ..AmazonConfig::default()
        },
        DeterministicRng::new(seed).child(0x41).seed(),
    );
    let slo_ms = model.descriptor.default_slo_ms;
    ClassificationScenario {
        name: format!("nlp/bert-base/{}", workload.name),
        model,
        workload,
        // Moderate mean load (the paper's latency experiments), with the
        // MAF-like 2–4x bursts supplying the transient queueing that makes
        // the p95 interesting: BERT-base serves ~34 rps at batch 1, so 5 rps
        // keeps the median in the serving-dominated regime while bursts still
        // overload the GPU transiently.
        trace: TraceKind::MafLike(5.0),
        serving: ServingConfig::clockwork(slo_ms, 8),
        reference_batch: 8,
        seed,
    }
}

/// The paper's generative scenario: Llama2-7B summarisation (CNN/DailyMail
/// style) under continuous batching near GPU saturation. Llama2's lower
/// overparameterisation (0.62 vs. T5's 0.85) makes token exits genuinely
/// depth-dependent, so the scenario separates adaptive from static policies.
pub fn generative_scenario(seed: u64, requests: usize) -> GenerativeScenario {
    let model = zoo::llama2_7b();
    let workload = GenerativeWorkload::generate(
        GenerativeConfig::for_task(GenerativeTask::Summarization, requests),
        DeterministicRng::new(seed).child(0x6E).seed(),
    );
    // The decoder's default SLO is its time-between-tokens target (§2.1's
    // per-token deadline); holding every token to it is what makes the
    // generative violation-rate column real instead of hardcoded zero.
    let tbt_slo = SimDuration::from_micros_f64(model.descriptor.default_slo_ms * 1_000.0);
    GenerativeScenario {
        name: format!("generative/llama2-7b/{}", workload.task.dataset_name()),
        model,
        workload,
        arrival_rate: 1.0,
        batching: ContinuousBatchingConfig {
            max_batch_size: 16,
            tbt_slo: Some(tbt_slo),
        },
        reference_batch: 8,
        seed,
    }
}

/// The per-scenario fixtures every classification runner derives from the
/// experiment seed: the calibrated semantics model, the arrival trace over
/// the serving split, and Apparate's budgeted ramp deployment. Centralised so
/// the "identical arrivals, identical semantics draws" guarantee cannot drift
/// between the full family run, the overhead path, the sensitivity duels and
/// the fleet runner — they all build from here.
pub(crate) fn classification_fixture(
    scenario: &ClassificationScenario,
    config: &ApparateConfig,
) -> (SemanticsModel, ArrivalTrace, RampDeployment) {
    let semantics = SemanticsModel::new(
        DeterministicRng::new(scenario.seed).child(0x5E).seed(),
        scenario.model.descriptor.overparameterization,
    );
    let split = scenario.workload.bootstrap_split();
    let n = split.serving.len();
    let trace = match scenario.trace {
        TraceKind::FixedRate(hz) => ArrivalTrace::fixed_rate(n, hz),
        TraceKind::MafLike(hz) => ArrivalTrace::maf_like(
            n,
            hz,
            DeterministicRng::new(scenario.seed).child(0x7A).seed(),
        ),
    };
    let dep_budget = deploy_budget_sites(
        &scenario.model,
        &semantics,
        config,
        RampArchitecture::Lightweight,
        split.train.len(),
    );
    (semantics, trace, dep_budget)
}

/// Run the full policy family on a classification scenario.
pub fn run_classification(scenario: &ClassificationScenario) -> ComparisonTable {
    run_classification_full(scenario).table
}

/// Run the full policy family on a classification scenario, also returning
/// the Apparate run's coordination charges.
pub fn run_classification_full(scenario: &ClassificationScenario) -> ScenarioRun {
    run_classification_traced(scenario, &Telemetry::disabled())
}

/// Like [`run_classification_full`], with a telemetry sink attached to the
/// Apparate run (platform events, controller events and both link
/// directions). Baseline runs stay untraced.
pub fn run_classification_traced(
    scenario: &ClassificationScenario,
    telemetry: &Telemetry,
) -> ScenarioRun {
    run_classification_traced_config(scenario, telemetry, scenario_config())
}

/// Like [`run_classification_traced`] with an explicit controller
/// configuration (see [`run_scenarios_traced_config`]).
pub fn run_classification_traced_config(
    scenario: &ClassificationScenario,
    telemetry: &Telemetry,
    config: ApparateConfig,
) -> ScenarioRun {
    let split = scenario.workload.bootstrap_split();
    let serving_samples = split.serving;
    let n = serving_samples.len();
    let (semantics, trace, dep_budget) = classification_fixture(scenario, &config);
    let sim = ServingSimulator::new(scenario.serving.clone());

    let dep_all = deploy_all_sites(
        &scenario.model,
        &semantics,
        RampArchitecture::Lightweight,
        split.train.len(),
    );
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());
    let budget_plan = dep_budget.plan.clone();
    let all_plan = dep_all.plan.clone();

    let mut summaries = Vec::new();

    let vanilla_cdf = {
        let mut policy = vanilla_policy(&vanilla_plan);
        let estimate = batch_time_fn(&vanilla_plan);
        let out = sim.run(&trace, serving_samples, &mut policy, &estimate);
        summaries.push(LatencySummary::from_outcome("vanilla", &out));
        latency_cdf(&out)
    };
    {
        let mut policy =
            StaticExitPolicy::uniform(budget_plan.clone(), STATIC_THRESHOLD, "static-ee");
        let estimate = batch_time_fn(&budget_plan);
        let out = sim.run(&trace, serving_samples, &mut policy, &estimate);
        summaries.push(LatencySummary::from_outcome("static-ee", &out));
    }
    {
        let mut policy =
            StaticExitPolicy::uniform(all_plan.clone(), STATIC_THRESHOLD, "uniform-ee");
        let estimate = batch_time_fn(&all_plan);
        let out = sim.run(&trace, serving_samples, &mut policy, &estimate);
        summaries.push(LatencySummary::from_outcome("uniform-ee", &out));
    }
    {
        let tuned = offline_tuned_thresholds(
            &budget_plan,
            split.validation,
            GreedyParams {
                accuracy_loss_budget: config.accuracy_constraint,
                initial_step: config.initial_step,
                smallest_step: config.smallest_step,
                max_threshold: 1.0,
            },
            scenario.reference_batch,
        );
        let mut policy =
            StaticExitPolicy::new(budget_plan.clone(), tuned.thresholds, "oneshot-tuned");
        let estimate = batch_time_fn(&budget_plan);
        let out = sim.run(&trace, serving_samples, &mut policy, &estimate);
        summaries.push(LatencySummary::from_outcome("oneshot-tuned", &out));
    }
    let (apparate_out, overhead) = apparate_classification(
        scenario,
        config,
        &trace,
        serving_samples,
        split.validation,
        &dep_budget,
        &vanilla_plan,
        telemetry,
    );
    summaries.push(LatencySummary::from_outcome("apparate", &apparate_out));
    let apparate_cdf = latency_cdf(&apparate_out);
    {
        let sites: Vec<LayerId> = dep_budget.all_sites.iter().map(|s| s.site).collect();
        let mut policy =
            OracleExitPolicy::new(vanilla_plan.clone(), sites, dep_budget.capacity, "oracle");
        let estimate = batch_time_fn(&vanilla_plan);
        let out = sim.run(&trace, serving_samples, &mut policy, &estimate);
        summaries.push(LatencySummary::from_outcome("oracle", &out));
    }

    ScenarioRun {
        table: ComparisonTable::new(scenario.name.clone(), "latency", summaries),
        overhead: OverheadRow {
            scenario: scenario.name.clone(),
            requests: n as u64,
            report: overhead,
        },
        cdfs: ScenarioCdfs {
            vanilla: vanilla_cdf,
            apparate: apparate_cdf,
        },
    }
}

/// Serve a classification scenario with the Apparate policy over the charged
/// GPU↔CPU link: the platform streams one ProfileRecord per batch and
/// threshold/ramp updates ride the downlink (§4.5).
#[allow(clippy::too_many_arguments)]
fn apparate_classification(
    scenario: &ClassificationScenario,
    config: ApparateConfig,
    trace: &ArrivalTrace,
    serving_samples: &[SampleSemantics],
    validation: &[SampleSemantics],
    dep_budget: &RampDeployment,
    vanilla_plan: &ExecutionPlan,
    telemetry: &Telemetry,
) -> (apparate_serving::ServingOutcome, OverheadReport) {
    // The simulator is config + sink only, so building a private instance
    // here (rather than sharing the baselines') changes nothing about the
    // run while keeping the baselines untraced.
    let sim = ServingSimulator::new(scenario.serving.clone()).with_telemetry(telemetry.clone());
    let mut policy = ApparatePolicy::warm_started(
        dep_budget.clone(),
        config,
        scenario.reference_batch,
        validation,
    );
    policy.set_telemetry(telemetry.clone());
    // Apparate's ramp set changes at runtime, so a plan-pinned estimator
    // would go stale after the first adjustment. The platform instead
    // relies on the one contract the controller never violates: total
    // ramp overhead stays within the user's ramp budget.
    let estimate = |b: u32| {
        SimDuration::from_micros_f64(vanilla_plan.vanilla_total_us(b) * (1.0 + config.ramp_budget))
    };
    let uplink = policy.feedback_sender();
    let out = sim.run_with_feedback(
        trace,
        serving_samples,
        &mut policy,
        &estimate,
        Some(&uplink),
    );
    let overhead = policy.overhead_report();
    (out, overhead)
}

/// Run only the Apparate policy on a classification scenario and return its
/// §4.5 coordination charges (the cheap path behind [`run_overhead`]).
pub fn run_classification_overhead(scenario: &ClassificationScenario) -> OverheadRow {
    let config = scenario_config();
    let split = scenario.workload.bootstrap_split();
    let n = split.serving.len();
    let (_, trace, dep_budget) = classification_fixture(scenario, &config);
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());
    let (_, report) = apparate_classification(
        scenario,
        config,
        &trace,
        split.serving,
        split.validation,
        &dep_budget,
        &vanilla_plan,
        &Telemetry::disabled(),
    );
    OverheadRow {
        scenario: scenario.name.clone(),
        requests: n as u64,
        report,
    }
}

/// Result of a vanilla-vs-Apparate duel under an explicit controller
/// configuration — the cheap runner behind the sensitivity sweeps. The rest
/// of the baseline family never reads the swept knobs, so it is not simulated
/// on the grid.
pub struct DuelRun {
    /// Vanilla serving under the scenario's (possibly scaled) SLO.
    pub vanilla: LatencySummary,
    /// Apparate under the given controller configuration.
    pub apparate: LatencySummary,
    /// The Apparate run's §4.5 coordination charges.
    pub overhead: OverheadReport,
}

/// Run only vanilla serving and the Apparate controller on a classification
/// scenario, with an explicit [`ApparateConfig`] (the Figure 17/19 sweeps
/// vary the SLO on the scenario and the accuracy constraint here).
pub fn run_classification_duel(
    scenario: &ClassificationScenario,
    config: ApparateConfig,
) -> DuelRun {
    let split = scenario.workload.bootstrap_split();
    let serving_samples = split.serving;
    let (_, trace, dep_budget) = classification_fixture(scenario, &config);
    let sim = ServingSimulator::new(scenario.serving.clone());
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());

    let vanilla = {
        let mut policy = vanilla_policy(&vanilla_plan);
        let estimate = batch_time_fn(&vanilla_plan);
        let out = sim.run(&trace, serving_samples, &mut policy, &estimate);
        LatencySummary::from_outcome("vanilla", &out)
    };
    let (out, overhead) = apparate_classification(
        scenario,
        config,
        &trace,
        serving_samples,
        split.validation,
        &dep_budget,
        &vanilla_plan,
        &Telemetry::disabled(),
    );
    DuelRun {
        vanilla,
        apparate: LatencySummary::from_outcome("apparate", &out),
        overhead,
    }
}

/// Adapter exposing a [`GenerativeWorkload`]'s deterministic token semantics
/// to the continuous-batching simulator. Public so examples and external
/// harnesses drive the *same* token stream the comparison runners do.
pub struct WorkloadTokens<'a>(pub &'a GenerativeWorkload);

impl TokenSemantics for WorkloadTokens<'_> {
    fn token(&self, request_id: u64, token_index: u32) -> SampleSemantics {
        self.0.token_semantics(request_id, token_index)
    }
}

/// Offline calibration tokens for warm-starting a token policy: the first
/// 10 % of the workload's sequences, fully decoded in hindsight (§3.1's
/// bootstrap, at token granularity). Shared by the comparison runners and
/// the examples so their warm-starts cannot diverge.
pub fn generative_calibration(workload: &GenerativeWorkload) -> Vec<SampleSemantics> {
    let boot = (workload.len() / 10).max(1);
    workload
        .sequences()
        .iter()
        .take(boot)
        .flat_map(|spec| {
            (0..spec.output_tokens).map(|t| workload.token_semantics(spec.request_id, t))
        })
        .collect()
}

/// The scenario's arrival-timed generative requests: Poisson arrivals (seed
/// child `0x7B`) zipped with the workload's sequence specs.
pub fn generative_requests(scenario: &GenerativeScenario) -> Vec<Request> {
    let trace = ArrivalTrace::poisson(
        scenario.workload.len(),
        scenario.arrival_rate,
        DeterministicRng::new(scenario.seed).child(0x7B).seed(),
    );
    trace
        .times()
        .iter()
        .zip(scenario.workload.sequences())
        .map(|(&at, spec)| {
            Request::generative(
                spec.request_id,
                at,
                scenario.workload.token_semantics(spec.request_id, 0),
                spec.output_tokens,
            )
        })
        .collect()
}

/// The per-scenario fixtures every generative runner derives from the
/// experiment seed: the calibrated semantics model and Apparate's budgeted
/// ramp deployment. Generative ramps reuse the decoder head, so no bootstrap
/// training data is needed (§3.1). Centralised like
/// [`classification_fixture`] so the full family run, the overhead path and
/// the fleet runner all deploy the identical ramp set.
pub(crate) fn generative_fixture(
    scenario: &GenerativeScenario,
    config: &ApparateConfig,
) -> (SemanticsModel, RampDeployment) {
    let semantics = SemanticsModel::new(
        DeterministicRng::new(scenario.seed).child(0x5E).seed(),
        scenario.model.descriptor.overparameterization,
    );
    let dep_budget = deploy_budget_sites(
        &scenario.model,
        &semantics,
        config,
        RampArchitecture::Lightweight,
        0,
    );
    (semantics, dep_budget)
}

/// Run the full policy family on a generative scenario.
pub fn run_generative(scenario: &GenerativeScenario) -> ComparisonTable {
    run_generative_full(scenario).table
}

/// Run the full policy family on a generative scenario, also returning the
/// Apparate run's coordination charges.
pub fn run_generative_full(scenario: &GenerativeScenario) -> ScenarioRun {
    run_generative_traced(scenario, &Telemetry::disabled())
}

/// Like [`run_generative_full`], with a telemetry sink attached to the
/// Apparate run (decode-step events, controller events and both link
/// directions). Baseline runs stay untraced.
pub fn run_generative_traced(scenario: &GenerativeScenario, telemetry: &Telemetry) -> ScenarioRun {
    run_generative_traced_config(scenario, telemetry, scenario_config())
}

/// Like [`run_generative_traced`] with an explicit controller configuration
/// (see [`run_scenarios_traced_config`]).
pub fn run_generative_traced_config(
    scenario: &GenerativeScenario,
    telemetry: &Telemetry,
    config: ApparateConfig,
) -> ScenarioRun {
    let requests = generative_requests(scenario);
    let tokens = WorkloadTokens(&scenario.workload);
    let sim = GenerativeSimulator::new(scenario.batching);

    let (semantics, dep_budget) = generative_fixture(scenario, &config);
    let dep_all = deploy_all_sites(
        &scenario.model,
        &semantics,
        RampArchitecture::Lightweight,
        0,
    );
    let vanilla_plan = dep_budget.plan.with_ramps(Vec::new());
    let budget_plan = dep_budget.plan.clone();
    let all_plan = dep_all.plan.clone();

    // Offline calibration tokens for the oneshot baseline and Apparate's
    // warm start.
    let calibration = generative_calibration(&scenario.workload);

    let mut summaries = Vec::new();

    let vanilla_cdf = {
        let mut policy = VanillaTokenPolicy::new(|b| {
            SimDuration::from_micros_f64(vanilla_plan.vanilla_total_us(b))
        });
        let out = sim.run(&requests, &tokens, &mut policy);
        summaries.push(LatencySummary::from_generative("vanilla", &out));
        tpt_cdf(&out)
    };
    {
        let mut policy =
            StaticTokenPolicy::uniform(budget_plan.clone(), STATIC_THRESHOLD, "static-ee");
        let out = sim.run(&requests, &tokens, &mut policy);
        summaries.push(LatencySummary::from_generative("static-ee", &out));
    }
    {
        let mut policy =
            StaticTokenPolicy::uniform(all_plan.clone(), STATIC_THRESHOLD, "uniform-ee");
        let out = sim.run(&requests, &tokens, &mut policy);
        summaries.push(LatencySummary::from_generative("uniform-ee", &out));
    }
    {
        let tuned = offline_tuned_thresholds(
            &budget_plan,
            &calibration,
            GreedyParams {
                accuracy_loss_budget: config.accuracy_constraint,
                initial_step: config.initial_step,
                smallest_step: config.smallest_step,
                max_threshold: 1.0,
            },
            scenario.reference_batch,
        );
        let mut policy =
            StaticTokenPolicy::new(budget_plan.clone(), tuned.thresholds, "oneshot-tuned");
        let out = sim.run(&requests, &tokens, &mut policy);
        summaries.push(LatencySummary::from_generative("oneshot-tuned", &out));
    }
    let (apparate_out, overhead) = apparate_generative(
        scenario,
        config,
        &requests,
        &tokens,
        &calibration,
        &dep_budget,
        telemetry,
    );
    summaries.push(LatencySummary::from_generative("apparate", &apparate_out));
    let apparate_cdf = tpt_cdf(&apparate_out);
    {
        let sites: Vec<LayerId> = dep_budget.all_sites.iter().map(|s| s.site).collect();
        let mut policy =
            OracleTokenPolicy::new(vanilla_plan.clone(), sites, dep_budget.capacity, "oracle");
        let out = sim.run(&requests, &tokens, &mut policy);
        summaries.push(LatencySummary::from_generative("oracle", &out));
    }

    ScenarioRun {
        table: ComparisonTable::new(scenario.name.clone(), "tpt", summaries),
        overhead: OverheadRow {
            scenario: scenario.name.clone(),
            requests: total_tokens(scenario),
            report: overhead,
        },
        cdfs: ScenarioCdfs {
            vanilla: vanilla_cdf,
            apparate: apparate_cdf,
        },
    }
}

/// Total tokens a generative scenario emits (the per-token denominator for
/// its overhead row).
pub(crate) fn total_tokens(scenario: &GenerativeScenario) -> u64 {
    scenario
        .workload
        .sequences()
        .iter()
        .map(|s| s.output_tokens as u64)
        .sum()
}

/// Serve a generative scenario with the Apparate token policy over the
/// charged link (one ProfileRecord per decode step).
fn apparate_generative(
    scenario: &GenerativeScenario,
    config: ApparateConfig,
    requests: &[Request],
    tokens: &WorkloadTokens<'_>,
    calibration: &[SampleSemantics],
    dep_budget: &RampDeployment,
    telemetry: &Telemetry,
) -> (apparate_serving::GenerativeOutcome, OverheadReport) {
    let sim = GenerativeSimulator::new(scenario.batching).with_telemetry(telemetry.clone());
    let mut policy = ApparateTokenPolicy::warm_started(
        dep_budget.clone(),
        config,
        scenario.reference_batch,
        calibration,
    );
    policy.set_telemetry(telemetry.clone());
    let uplink = policy.feedback_sender();
    let out = sim.run_with_feedback(requests, tokens, &mut policy, Some(&uplink));
    let overhead = policy.overhead_report();
    (out, overhead)
}

/// Run only the Apparate token policy on a generative scenario and return its
/// §4.5 coordination charges (the cheap path behind [`run_overhead`]).
pub fn run_generative_overhead(scenario: &GenerativeScenario) -> OverheadRow {
    let config = scenario_config();
    let requests = generative_requests(scenario);
    let tokens = WorkloadTokens(&scenario.workload);
    let (_, dep_budget) = generative_fixture(scenario, &config);
    let calibration = generative_calibration(&scenario.workload);
    let (_, report) = apparate_generative(
        scenario,
        config,
        &requests,
        &tokens,
        &calibration,
        &dep_budget,
        &Telemetry::disabled(),
    );
    OverheadRow {
        scenario: scenario.name.clone(),
        requests: total_tokens(scenario),
        report,
    }
}
