//! End-to-end acceptance tests for the comparison subsystem: the claims the
//! repro harness makes must hold on fixed seeds.

use apparate_experiments::{
    cv_scenario, generative_scenario, nlp_scenario, run_classification, run_classification_full,
    run_generative, ComparisonTable,
};

/// Quick but non-trivial CV scenario: 2 500 frames → 2 250 served requests
/// after the bootstrap split.
fn cv_table() -> ComparisonTable {
    run_classification(&cv_scenario(42, 2_500))
}

#[test]
fn apparate_beats_static_threshold_on_cv_median_latency_at_equal_accuracy() {
    let table = cv_table();
    let apparate = table.row("apparate").expect("apparate row");
    let static_ee = table.row("static-ee").expect("static-ee row");
    // Equal accuracy: both policies hold (close to) the original model's
    // accuracy — within a couple of points of the 1 % constraint.
    assert!(
        apparate.summary.accuracy >= 0.97,
        "apparate accuracy {} violates the constraint",
        apparate.summary.accuracy
    );
    assert!(
        static_ee.summary.accuracy >= 0.97,
        "static-ee accuracy {} violates the constraint",
        static_ee.summary.accuracy
    );
    // The adaptive controller must beat the fixed-threshold deployment on
    // median latency.
    assert!(
        apparate.summary.latency_ms.p50 < static_ee.summary.latency_ms.p50,
        "apparate p50 {} should beat static-ee p50 {}",
        apparate.summary.latency_ms.p50,
        static_ee.summary.latency_ms.p50
    );
    // And both must win against vanilla at the median.
    assert!(apparate.wins.p50 > 0.0);
    assert!(static_ee.wins.p50 > 0.0);
}

#[test]
fn oracle_lower_bounds_every_policy_on_cv() {
    let table = cv_table();
    let oracle = table.row("oracle").expect("oracle row");
    assert!(
        (oracle.summary.accuracy - 1.0).abs() < 1e-12,
        "the hindsight oracle never releases a wrong result"
    );
    for row in &table.rows {
        assert!(
            oracle.summary.latency_ms.p50 <= row.summary.latency_ms.p50 + 1e-9,
            "oracle p50 {} must lower-bound {} ({})",
            oracle.summary.latency_ms.p50,
            row.summary.latency_ms.p50,
            row.summary.policy
        );
        assert!(
            oracle.summary.latency_ms.mean <= row.summary.latency_ms.mean + 1e-9,
            "oracle mean must lower-bound {} ({})",
            row.summary.latency_ms.mean,
            row.summary.policy
        );
    }
}

#[test]
fn cv_tables_are_deterministic_per_seed() {
    let a = cv_table().render();
    let b = cv_table().render();
    assert_eq!(a, b, "same seed must render byte-identical tables");
    let other = run_classification(&cv_scenario(7, 2_500)).render();
    assert_ne!(a, other, "a different seed should change the numbers");
}

#[test]
fn nlp_median_win_lands_in_papers_band() {
    // Regression for the NLP win gap (ROADMAP): with the calibrated semantics
    // (agreement noise vs. temperature) and Amazon difficulty scale, the
    // adaptive controller's median latency win on BERT-base must land in the
    // paper's 40–90 % band (Figure 13) — not collapse onto deep-ramp exits.
    let run = run_classification_full(&nlp_scenario(42, 3_000));
    let apparate = run.table.row("apparate").expect("apparate row");
    assert!(
        apparate.summary.accuracy >= 0.97,
        "NLP accuracy {} violates the constraint",
        apparate.summary.accuracy
    );
    assert!(
        (40.0..=90.0).contains(&apparate.wins.p50),
        "NLP median win {}% outside the paper's 40–90% band",
        apparate.wins.p50
    );
    // The win is earned with the coordination path charged: profiling records
    // flowed over the uplink and updates over the downlink at §4.5 cost.
    assert!(run.overhead.report.uplink.messages > 0);
    assert!(run.overhead.report.downlink.messages > 0);
    let mean_ms = run.overhead.report.mean_latency().as_millis_f64();
    assert!(
        (0.3..=0.7).contains(&mean_ms),
        "mean per-message link latency {mean_ms} ms outside the §4.5 envelope"
    );
}

#[test]
fn controller_in_the_loop_is_deterministic_with_charged_link() {
    // Same seed ⇒ identical win tables *and* identical coordination charges,
    // with the nonzero default LinkCost delaying every feedback/update
    // delivery. Nondeterministic channel draining or time-dependent tuning
    // would show up here.
    let run = || run_classification_full(&cv_scenario(42, 2_500));
    let a = run();
    let b = run();
    assert_eq!(
        a.table.render(),
        b.table.render(),
        "win tables must be byte-identical per seed"
    );
    assert_eq!(
        a.overhead.report.uplink.messages,
        b.overhead.report.uplink.messages
    );
    assert_eq!(
        a.overhead.report.uplink.bytes,
        b.overhead.report.uplink.bytes
    );
    assert_eq!(
        a.overhead.report.downlink.messages,
        b.overhead.report.downlink.messages
    );
    assert_eq!(
        a.overhead.report.downlink.bytes,
        b.overhead.report.downlink.bytes
    );
    assert_eq!(
        a.overhead.report.total_latency(),
        b.overhead.report.total_latency()
    );
    assert!(a.overhead.report.uplink.messages > 0, "link was exercised");
}

#[test]
fn generative_comparison_holds_and_is_deterministic() {
    let build = || run_generative(&generative_scenario(42, 40));
    let table = build();
    assert_eq!(table.rows.len(), 6, "six policies are compared");
    let apparate = table.row("apparate").expect("apparate row");
    let static_ee = table.row("static-ee").expect("static-ee row");
    let oracle = table.row("oracle").expect("oracle row");
    assert!(
        apparate.summary.accuracy >= 0.97,
        "token accuracy {} violates the constraint",
        apparate.summary.accuracy
    );
    assert!(
        apparate.summary.latency_ms.p50 < static_ee.summary.latency_ms.p50,
        "adaptive token exits ({}) should beat the static ramp ({}) on median TPT",
        apparate.summary.latency_ms.p50,
        static_ee.summary.latency_ms.p50
    );
    for row in &table.rows {
        assert!(
            oracle.summary.latency_ms.p50 <= row.summary.latency_ms.p50 + 1e-9,
            "token oracle must lower-bound {} on median TPT",
            row.summary.policy
        );
    }
    assert_eq!(table.render(), build().render(), "deterministic per seed");
}
