//! Overload regression suite, pinned at seed 42 (the repo's pin-table idiom:
//! numeric bands, not golden files). The headline acceptance claim: under a
//! 4× bursty diurnal overload, the Apparate fleet behind the SLO-driven
//! admission front end holds attainment ≥ 20 percentage points above the
//! admit-everything Apparate fleet — with honest accounting (latency and SLO
//! judged from *original* arrivals, shed requests counted as misses) and
//! zero hysteresis oscillations.

use apparate_experiments::{
    diurnal_scenario, render_admission_summary, run_admission_fleet, AdmissionFleetRun,
    ClassificationScenario,
};
use apparate_serving::FleetDispatch;

fn overload(scale: f64) -> ClassificationScenario {
    diurnal_scenario(42, 1_500).with_arrival_scale(scale)
}

fn run(scale: f64) -> AdmissionFleetRun {
    run_admission_fleet(&overload(scale), 2, FleetDispatch::LeastLoaded, 1)
}

#[test]
fn admission_wins_at_least_twenty_points_under_4x_overload() {
    let run = run(4.0);
    // Without admission the fleet is saturated: backlog compounds through
    // every burst and nearly nothing is released inside the SLO.
    assert!(
        run.attainment_without < 0.10,
        "without admission: attainment {:.3} — scenario is no longer overloaded",
        run.attainment_without
    );
    // With admission, shedding what the SLO model predicts cannot finish on
    // time keeps the survivors inside their deadline.
    assert!(
        (0.45..=0.75).contains(&run.attainment_with),
        "with admission: attainment {:.3} left the pinned band",
        run.attainment_with
    );
    assert!(
        run.attainment_delta_points() >= 20.0,
        "admission win {:.1} points < the 20-point acceptance floor",
        run.attainment_delta_points()
    );
    // The shed fraction tracks the overload: ~1/3 of a 4× diurnal stream.
    let shed = run.ingest.shed_rate();
    assert!(
        (0.30..=0.50).contains(&shed),
        "shed rate {shed:.3} left the pinned band"
    );
    assert_eq!(run.oscillations, 0, "hysteresis oscillated");
    assert!(
        run.ingest.max_depth <= 4,
        "queue depth {} exceeded the SLO-derived bound",
        run.ingest.max_depth
    );
    // Honest accounting invariant: offered = admitted + shed, and every
    // replica shard is made of admitted requests only.
    assert_eq!(run.ingest.offered, run.ingest.admitted + run.ingest.shed);
    assert_eq!(run.shard_sizes.iter().sum::<usize>(), run.ingest.admitted);
}

#[test]
fn admission_wins_at_2x_and_degrades_gracefully_at_8x() {
    let at_2x = run(2.0);
    assert!(
        at_2x.attainment_delta_points() >= 20.0,
        "2× overload: admission win {:.1} points < 20",
        at_2x.attainment_delta_points()
    );
    assert_eq!(at_2x.oscillations, 0);

    // At 8× the offered load is far beyond fleet capacity: most of the
    // stream must be shed, and admission can only save a sliver — but it
    // must never do *worse* than admitting everything, and the controller
    // must stay stable.
    let at_8x = run(8.0);
    assert!(
        at_8x.ingest.shed_rate() >= 0.60,
        "8× overload shed only {:.3}",
        at_8x.ingest.shed_rate()
    );
    assert!(at_8x.attainment_with >= at_8x.attainment_without);
    assert_eq!(at_8x.oscillations, 0);
}

#[test]
fn overload_tables_are_deterministic_at_seed_42() {
    let first = run(4.0);
    let second = run(4.0);
    assert_eq!(first.table.render(), second.table.render());
    assert_eq!(
        render_admission_summary(&[first]),
        render_admission_summary(&[second])
    );
}

#[test]
fn admission_table_reads_like_the_other_win_tables() {
    let run = run(4.0);
    let table = run.table.render();
    assert!(table.contains("cv/resnet50/diurnal load×4 ×2 (least-loaded) admission"));
    for policy in ["vanilla", "apparate", "apparate+admission"] {
        assert!(table.contains(policy), "missing row {policy}:\n{table}");
    }
    let summary = render_admission_summary(&[run]);
    assert!(summary.contains("overload admission summary"));
    assert!(summary.contains("att w/o"));
}
