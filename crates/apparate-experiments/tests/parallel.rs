//! Parallelism determinism suite: the fleet worker-thread count must never
//! leak into any observable output. Same seed + any `threads` value ⇒
//! byte-identical win tables, byte-identical telemetry exports (event trace
//! and metrics JSON-lines), identical coordination bills — for both the
//! classification fleet and the generative (decode-loop) fleet.
//!
//! This is the acceptance contract of the `--threads` knob: parallel fleet
//! execution buys wall-clock time only.

use apparate_experiments::{
    cv_scenario, generative_scenario, run_classification_fleet_streamed,
    run_classification_fleet_threaded, run_classification_fleet_traced,
    run_generative_fleet_streamed, run_generative_fleet_threaded, run_generative_fleet_traced,
    scenario_config,
};
use apparate_serving::FleetDispatch;
use apparate_telemetry::{
    render_metrics_json_lines, render_trace_json_lines, Telemetry, TelemetryConfig,
};

/// Render everything observable about one traced classification fleet run at
/// the given thread count: the win table plus both JSON-lines exports.
fn classification_artifacts(threads: usize) -> (String, String, String) {
    let telemetry = Telemetry::recording(TelemetryConfig::default());
    let run = run_classification_fleet_traced(
        &cv_scenario(42, 1_500),
        4,
        FleetDispatch::LeastLoaded,
        scenario_config(),
        &telemetry,
        threads,
    );
    let snapshot = telemetry.snapshot().expect("recording sink");
    (
        run.table.render(),
        render_trace_json_lines(&snapshot),
        render_metrics_json_lines(&snapshot),
    )
}

/// Same, for the generative fleet (TPT tables, decode-loop telemetry).
fn generative_artifacts(threads: usize) -> (String, String, String) {
    let telemetry = Telemetry::recording(TelemetryConfig::default());
    let run = run_generative_fleet_traced(
        &generative_scenario(42, 48),
        4,
        FleetDispatch::LeastLoaded,
        &telemetry,
        threads,
    );
    let snapshot = telemetry.snapshot().expect("recording sink");
    (
        run.table.render(),
        render_trace_json_lines(&snapshot),
        render_metrics_json_lines(&snapshot),
    )
}

#[test]
fn classification_artifacts_are_byte_identical_across_thread_counts() {
    let (table1, trace1, metrics1) = classification_artifacts(1);
    assert!(!trace1.is_empty(), "the traced run must record events");
    for threads in [2, 8] {
        let (table, trace, metrics) = classification_artifacts(threads);
        assert_eq!(
            table1, table,
            "win table diverged from sequential at {threads} threads"
        );
        assert_eq!(
            trace1, trace,
            "event-trace export diverged from sequential at {threads} threads"
        );
        assert_eq!(
            metrics1, metrics,
            "metrics export diverged from sequential at {threads} threads"
        );
    }
}

#[test]
fn generative_artifacts_are_byte_identical_across_thread_counts() {
    let (table1, trace1, metrics1) = generative_artifacts(1);
    assert!(!trace1.is_empty(), "the traced run must record events");
    for threads in [2, 8] {
        let (table, trace, metrics) = generative_artifacts(threads);
        assert_eq!(
            table1, table,
            "win table diverged from sequential at {threads} threads"
        );
        assert_eq!(
            trace1, trace,
            "event-trace export diverged from sequential at {threads} threads"
        );
        assert_eq!(
            metrics1, metrics,
            "metrics export diverged from sequential at {threads} threads"
        );
    }
}

#[test]
fn streamed_classification_ingest_matches_trace_replay_at_every_thread_count() {
    // One-event-at-a-time ingest (passthrough, no admission) must reproduce
    // the batch sharding path's dispatch decisions exactly, so the whole win
    // table — title, rows, wins — is byte-identical to replay, at every
    // thread count and under both dispatch policies.
    for dispatch in [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
        let scenario = cv_scenario(42, 1_500);
        let replayed = run_classification_fleet_threaded(&scenario, 4, dispatch, 1)
            .table
            .render();
        for threads in [1, 2, 8] {
            let streamed = run_classification_fleet_streamed(&scenario, 4, dispatch, threads)
                .table
                .render();
            assert_eq!(
                replayed, streamed,
                "streamed ingest diverged from trace replay ({dispatch}, {threads} threads)"
            );
        }
    }
}

#[test]
fn streamed_generative_ingest_matches_request_replay_at_every_thread_count() {
    // Decode-loop counterpart: whole sequences offered one at a time, each
    // weighted by projected decode time, must shard exactly like the batch
    // `shard_requests` path — byte-identical TPT tables at every thread count.
    for dispatch in [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
        let scenario = generative_scenario(42, 48);
        let replayed = run_generative_fleet_threaded(&scenario, 4, dispatch, 1)
            .table
            .render();
        for threads in [1, 2, 8] {
            let streamed = run_generative_fleet_streamed(&scenario, 4, dispatch, threads)
                .table
                .render();
            assert_eq!(
                replayed, streamed,
                "streamed ingest diverged from request replay ({dispatch}, {threads} threads)"
            );
        }
    }
}

#[test]
fn traced_streamed_run_diff_matches_untraced_replay() {
    // Turning telemetry on must not perturb the simulation, and streaming
    // must not perturb it either: a traced replay run and an untraced
    // streamed run of the same scenario render the same table.
    let scenario = cv_scenario(42, 1_500);
    let telemetry = Telemetry::recording(TelemetryConfig::default());
    let traced = run_classification_fleet_traced(
        &scenario,
        4,
        FleetDispatch::LeastLoaded,
        scenario_config(),
        &telemetry,
        2,
    )
    .table
    .render();
    let streamed = run_classification_fleet_streamed(&scenario, 4, FleetDispatch::LeastLoaded, 8)
        .table
        .render();
    assert_eq!(traced, streamed);
}

#[test]
fn coordination_bill_is_thread_count_invariant() {
    // The §4.5 overhead bill sums per-replica link charges; a thread-count
    // dependence here would mean controllers observed different profiling
    // streams under parallel execution.
    let run = |threads: usize| {
        run_classification_fleet_traced(
            &cv_scenario(42, 1_500),
            4,
            FleetDispatch::LeastLoaded,
            scenario_config(),
            &Telemetry::disabled(),
            threads,
        )
    };
    let sequential = run(1);
    let parallel = run(8);
    assert_eq!(sequential.shard_sizes, parallel.shard_sizes);
    assert_eq!(
        sequential.overhead.report.uplink.messages,
        parallel.overhead.report.uplink.messages
    );
    assert_eq!(
        sequential.overhead.report.uplink.bytes,
        parallel.overhead.report.uplink.bytes
    );
    assert_eq!(
        sequential.overhead.report.downlink.messages,
        parallel.overhead.report.downlink.messages
    );
    assert_eq!(
        sequential.overhead.report.total_latency(),
        parallel.overhead.report.total_latency()
    );
}
