//! Acceptance tests for multi-replica scale-out: fleet runs must be
//! deterministic, dispatch must respect its invariants, and scale-out must
//! actually relieve an overloaded shared stream — for both the
//! classification fleet and the generative (decode-loop) fleet.

use apparate_experiments::{
    cv_scenario, generative_scenario, run_classification_fleet, run_generative_fleet, FleetRun,
};
use apparate_serving::FleetDispatch;

fn fleet(replicas: usize) -> FleetRun {
    run_classification_fleet(
        &cv_scenario(42, 2_000),
        replicas,
        FleetDispatch::LeastLoaded,
    )
}

#[test]
fn same_seed_produces_identical_fleet_tables() {
    let a = fleet(4);
    let b = fleet(4);
    assert_eq!(
        a.table.render(),
        b.table.render(),
        "fleet tables must be byte-identical per seed"
    );
    assert_eq!(a.shard_sizes, b.shard_sizes);
    // The N controllers' summed coordination charges are part of the
    // deterministic result too.
    assert_eq!(
        a.overhead.report.uplink.messages,
        b.overhead.report.uplink.messages
    );
    assert_eq!(
        a.overhead.report.uplink.bytes,
        b.overhead.report.uplink.bytes
    );
    assert_eq!(
        a.overhead.report.downlink.messages,
        b.overhead.report.downlink.messages
    );
    assert_eq!(
        a.overhead.report.total_latency(),
        b.overhead.report.total_latency()
    );
    let other = fleet_seeded(7, 4);
    assert_ne!(
        a.table.render(),
        other.table.render(),
        "a different seed should change the numbers"
    );
}

fn fleet_seeded(seed: u64, replicas: usize) -> FleetRun {
    run_classification_fleet(
        &cv_scenario(seed, 2_000),
        replicas,
        FleetDispatch::LeastLoaded,
    )
}

#[test]
fn dispatch_invariants_hold_at_every_fleet_size() {
    // 2 000 frames → 1 800 served requests after the bootstrap split.
    for replicas in [1usize, 2, 4, 8] {
        for dispatch in [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
            let run = run_classification_fleet(&cv_scenario(42, 2_000), replicas, dispatch);
            assert_eq!(run.shard_sizes.len(), replicas);
            assert_eq!(
                run.shard_sizes.iter().sum::<usize>(),
                1_800,
                "{dispatch} x{replicas}: shards must partition the shared trace"
            );
            let fair = 1_800 / replicas;
            let min = run.shard_sizes.iter().copied().min().unwrap();
            assert!(
                min >= fair / 4,
                "{dispatch} x{replicas}: a replica was starved ({min} of fair {fair})"
            );
        }
    }
}

#[test]
fn provisioned_fleet_keeps_the_single_replica_win_and_accuracy() {
    let run = fleet(4);
    let apparate = run.apparate();
    assert!(
        apparate.summary.accuracy >= 0.97,
        "fleet accuracy {} violates the constraint",
        apparate.summary.accuracy
    );
    assert!(
        apparate.wins.p50 > 0.0,
        "a provisioned apparate fleet must still win the median vs the vanilla fleet"
    );
    // Four controllers, each over its own charged link: the fleet pays for
    // every replica's profiling stream.
    assert!(run.overhead.report.uplink.messages >= 4);
}

fn generative_fleet(seed: u64, replicas: usize) -> FleetRun {
    // Eight tenants' aggregate summarisation stream (the `repro --sweep`
    // regime): a single replica's continuous batch pins at its cap.
    run_generative_fleet(
        &generative_scenario(seed, 60).with_arrival_scale(8.0),
        replicas,
        FleetDispatch::LeastLoaded,
    )
}

#[test]
fn same_seed_produces_identical_generative_fleet_tables() {
    let a = generative_fleet(42, 4);
    let b = generative_fleet(42, 4);
    assert_eq!(
        a.table.render(),
        b.table.render(),
        "generative fleet tables must be byte-identical per seed"
    );
    assert_eq!(a.shard_sizes, b.shard_sizes);
    assert_eq!(
        a.overhead.report.uplink.messages,
        b.overhead.report.uplink.messages
    );
    assert_eq!(
        a.overhead.report.uplink.bytes,
        b.overhead.report.uplink.bytes
    );
    assert_eq!(
        a.overhead.report.downlink.messages,
        b.overhead.report.downlink.messages
    );
    assert_eq!(
        a.overhead.report.total_latency(),
        b.overhead.report.total_latency()
    );
    let other = generative_fleet(7, 4);
    assert_ne!(
        a.table.render(),
        other.table.render(),
        "a different seed should change the numbers"
    );
}

#[test]
fn generative_dispatch_invariants_hold_at_every_fleet_size() {
    for replicas in [1usize, 2, 4, 8] {
        for dispatch in [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
            let run = run_generative_fleet(
                &generative_scenario(42, 60).with_arrival_scale(8.0),
                replicas,
                dispatch,
            );
            assert_eq!(run.shard_sizes.len(), replicas);
            assert_eq!(
                run.shard_sizes.iter().sum::<usize>(),
                60,
                "{dispatch} x{replicas}: shards must partition the shared request stream"
            );
            let fair = 60 / replicas;
            let min = run.shard_sizes.iter().copied().min().unwrap();
            assert!(
                min >= fair / 4,
                "{dispatch} x{replicas}: a replica was starved ({min} of fair {fair})"
            );
        }
    }
}

#[test]
fn generative_scale_out_restores_the_tpt_win() {
    // One replica saturates on the aggregate stream: its continuous batch
    // pins at the cap, so the median TPT collapses toward the full-batch
    // step time. Four replicas decode comfortably thin batches, restoring
    // the single-replica-regime win, and the fleet's token bandwidth must
    // scale well past one replica's saturation point.
    let single = generative_fleet(42, 1);
    let quad = generative_fleet(42, 4);
    let single_row = single.apparate();
    let quad_row = quad.apparate();
    assert!(
        quad_row.summary.latency_ms.p50 < single_row.summary.latency_ms.p50 / 5.0,
        "4-replica median TPT {} ms should be far below saturated single-replica {} ms",
        quad_row.summary.latency_ms.p50,
        single_row.summary.latency_ms.p50
    );
    assert!(
        quad_row.summary.throughput > 1.5 * single_row.summary.throughput,
        "fleet token bandwidth {} tok/s should far exceed saturated single-replica {}",
        quad_row.summary.throughput,
        single_row.summary.throughput
    );
    assert!(
        quad_row.summary.accuracy >= 0.97,
        "fleet token agreement {} violates the constraint",
        quad_row.summary.accuracy
    );
    assert!(
        quad_row.wins.p50 > single_row.wins.p50,
        "the provisioned fleet's win ({}%) must beat the saturated replica's ({}%)",
        quad_row.wins.p50,
        single_row.wins.p50
    );
    // Four token controllers, each over its own charged link: the fleet pays
    // for every replica's decode-step profiling stream.
    assert!(quad.overhead.report.uplink.messages >= 4);
}

#[test]
fn scale_out_relieves_an_overloaded_shared_stream() {
    // Six cameras' aggregate stream: one replica queues without bound, four
    // replicas are comfortably provisioned, so the Apparate fleet's pooled
    // median latency must collapse by orders of magnitude.
    let scenario = || cv_scenario(42, 2_000).with_arrival_scale(6.0);
    let single = run_classification_fleet(&scenario(), 1, FleetDispatch::LeastLoaded);
    let quad = run_classification_fleet(&scenario(), 4, FleetDispatch::LeastLoaded);
    let single_p50 = single.apparate().summary.latency_ms.p50;
    let quad_p50 = quad.apparate().summary.latency_ms.p50;
    assert!(
        quad_p50 < single_p50 / 10.0,
        "4-replica p50 {quad_p50} ms should be far below overloaded single-replica {single_p50} ms"
    );
    // And the provisioned fleet's throughput must scale past the single
    // replica's saturation point.
    assert!(
        quad.apparate().summary.throughput > 2.0 * single.apparate().summary.throughput,
        "fleet throughput {} should far exceed saturated single-replica {}",
        quad.apparate().summary.throughput,
        single.apparate().summary.throughput
    );
}
