//! Positive and negative fixtures for every rule in the registry, run
//! through the same per-file pipeline as the binary (`check_source`).
//!
//! Every fixture lives in a raw string, so the banned patterns are string
//! contents here — invisible to the lint pass that checks this workspace,
//! including this file.

use apparate_lint::{check_source, known_rule_ids, registry};

/// Lint `src` as a regular (non-compat) file of `crate_name`, returning
/// `RULE@line` strings plus the suppressed count.
fn lint_in(crate_name: &str, path: &str, src: &str) -> (Vec<String>, usize) {
    let (diags, suppressed) = check_source(path, crate_name, false, src);
    let rendered = diags
        .iter()
        .map(|d| format!("{}@{}", d.rule, d.line))
        .collect();
    (rendered, suppressed)
}

fn lint(src: &str) -> Vec<String> {
    lint_in("apparate-core", "crates/apparate-core/src/x.rs", src).0
}

#[test]
fn registry_ids_are_unique_and_l001_is_known() {
    let ids: Vec<_> = registry().iter().map(|r| r.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate rule IDs: {ids:?}");
    assert!(known_rule_ids().contains(&"L001"));
}

// ---- D001: wall-clock reads ------------------------------------------------

#[test]
fn d001_flags_instant_now_and_system_time() {
    let diags = lint(r#"fn f() { let t = Instant::now(); }"#);
    assert_eq!(diags, ["D001@1"]);
    let diags = lint(r#"fn f() -> SystemTime { SystemTime::now() }"#);
    assert_eq!(diags, ["D001@1", "D001@1"]);
}

#[test]
fn d001_is_silent_in_bench_and_on_sim_time() {
    let (diags, _) = lint_in(
        "bench",
        "crates/bench/src/x.rs",
        r#"fn f() { let t = Instant::now(); }"#,
    );
    assert!(diags.is_empty(), "{diags:?}");
    assert!(lint(r#"fn f(now: SimTime) { step(now); }"#).is_empty());
}

#[test]
fn d001_allow_with_reason_suppresses() {
    let (diags, suppressed) = lint_in(
        "apparate-core",
        "crates/apparate-core/src/x.rs",
        r#"
// lint:allow(D001, reason = "reported-only metric, never branched on")
let start = Instant::now();
"#,
    );
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 1);
}

// ---- D002: hash collections ------------------------------------------------

#[test]
fn d002_flags_hash_collections_and_suggests_btree() {
    let (diags, _) = check_source(
        "crates/apparate-core/src/x.rs",
        "apparate-core",
        false,
        r#"use std::collections::{HashMap, HashSet};"#,
    );
    assert_eq!(diags.len(), 2);
    assert!(
        diags[0].message.contains("BTreeMap"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[1].message.contains("BTreeSet"),
        "{}",
        diags[1].message
    );
}

#[test]
fn d002_is_silent_on_btree_collections() {
    assert!(lint(r#"use std::collections::{BTreeMap, BTreeSet};"#).is_empty());
}

// ---- D003: ambient nondeterminism ------------------------------------------

#[test]
fn d003_flags_ambient_randomness_and_env() {
    assert_eq!(lint(r#"let mut rng = thread_rng();"#), ["D003@1"]);
    assert_eq!(lint(r#"let rng = SmallRng::from_entropy();"#), ["D003@1"]);
    assert_eq!(lint(r#"let home = std::env::var("HOME");"#), ["D003@1"]);
    assert_eq!(lint(r#"let id = std::thread::current().id();"#), ["D003@1"]);
}

#[test]
fn d003_is_silent_on_seeded_rng_and_plain_vars() {
    assert!(lint(r#"let rng = DeterministicRng::new(seed);"#).is_empty());
    assert!(lint(r#"let var = environment.lookup(key);"#).is_empty());
}

// ---- C001: lock guard across spawn ------------------------------------------

#[test]
fn c001_flags_guard_held_across_spawn() {
    let diags = lint(
        r#"
fn f(stats: &Mutex<Stats>) {
    let guard = stats.lock().unwrap();
    std::thread::spawn(move || {});
}
"#,
    );
    assert_eq!(diags, ["C001@4"]);
}

#[test]
fn c001_respects_drop_and_block_scoping() {
    let dropped = r#"
fn f(stats: &Mutex<Stats>) {
    let guard = stats.lock().unwrap();
    drop(guard);
    std::thread::spawn(move || {});
}
"#;
    assert!(lint(dropped).is_empty());
    let scoped = r#"
fn f(stats: &Mutex<Stats>) {
    { let guard = stats.lock().unwrap(); use_it(&guard); }
    thread::scope(|s| {});
}
"#;
    assert!(lint(scoped).is_empty());
}

#[test]
fn c001_ignores_transient_lock_in_expression() {
    // No binding: the temporary guard dies at the end of the statement.
    let src = r#"
fn f(stats: &Mutex<Stats>) {
    let n = stats.lock().unwrap().len();
    std::thread::spawn(move || {});
}
"#;
    assert!(lint(src).is_empty(), "{:?}", lint(src));
}

// ---- C002: telemetry replica handles ----------------------------------------

#[test]
fn c002_flags_set_replica_but_not_for_replica() {
    assert_eq!(lint(r#"fn f(t: &mut T) { t.set_replica(3); }"#), ["C002@1"]);
    assert!(lint(r#"fn f(t: &T) { let h = t.for_replica(3); }"#).is_empty());
}

// ---- C003: forbid(unsafe_code) ----------------------------------------------

#[test]
fn c003_requires_forbid_unsafe_in_crate_roots() {
    let (diags, _) = lint_in(
        "apparate-core",
        "crates/apparate-core/src/lib.rs",
        r#"pub mod x;"#,
    );
    assert_eq!(diags, ["C003@1"]);
    let (diags, _) = lint_in(
        "apparate-core",
        "crates/apparate-core/src/lib.rs",
        r#"#![forbid(unsafe_code)]
pub mod x;"#,
    );
    assert!(diags.is_empty(), "{diags:?}");
    // Non-root files are not required to carry the attribute.
    assert!(lint(r#"pub mod x;"#).is_empty());
}

// ---- W001: GPU config mutations at delivery sites ---------------------------

#[test]
fn w001_flags_gpu_mutation_without_poll() {
    let diags = lint(
        r#"
impl SimulatedGpu {
    fn decide(&mut self, outcome: Outcome) {
        self.thresholds = outcome.thresholds;
    }
}
"#,
    );
    assert_eq!(diags, ["W001@4"]);
    let diags = lint(
        r#"
fn warm(core: &mut Core) {
    core.gpu.plan = plan;
    core.gpu.config_epoch += 1;
}
"#,
    );
    assert_eq!(diags, ["W001@3", "W001@4"]);
}

#[test]
fn w001_is_silent_when_the_fn_polls_a_delivery() {
    let src = r#"
impl SimulatedGpu {
    fn sync(&mut self, now: SimTime) {
        for update in self.rx.poll(now) {
            self.thresholds = update.thresholds;
            self.config_epoch += 1;
        }
    }
}
"#;
    assert!(lint(src).is_empty(), "{:?}", lint(src));
}

#[test]
fn w001_is_silent_outside_gpu_impls_and_gpu_fields() {
    // A controller mutating *its own* thresholds is the decision path, not
    // the GPU half; only Gpu impls and `.gpu.` field writes are fenced.
    let src = r#"
impl Controller {
    fn retune(&mut self) {
        self.thresholds = self.tuner.best();
    }
}
"#;
    assert!(lint(src).is_empty(), "{:?}", lint(src));
}

#[test]
fn w001_allow_covers_offline_initialisation() {
    let (diags, suppressed) = lint_in(
        "apparate-experiments",
        "crates/apparate-experiments/src/x.rs",
        r#"
fn warm_start(core: &mut Core) {
    // lint:allow(W001, reason = "offline warm start, before serving begins")
    core.gpu.thresholds = initial;
}
"#,
    );
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 1);
}

// ---- L001: the escape hatch itself ------------------------------------------

#[test]
fn l001_reports_reasonless_allows_and_cannot_be_allowed() {
    let (diags, _) = lint_in(
        "apparate-core",
        "crates/apparate-core/src/x.rs",
        r#"
// lint:allow(D001)
let t = Instant::now();
"#,
    );
    // The malformed escape is reported AND the violation it failed to cover.
    assert_eq!(diags, ["L001@2", "D001@3"]);

    let (diags, suppressed) = lint_in(
        "apparate-core",
        "crates/apparate-core/src/x.rs",
        r#"
// lint:allow(L001, reason = "quiet the linter")
// lint:allow(D001)
let t = Instant::now();
"#,
    );
    assert!(diags.iter().any(|d| d.starts_with("L001@")), "{diags:?}");
    assert_eq!(suppressed, 0, "L001 must not be suppressible");
}

// ---- compat exemption --------------------------------------------------------

#[test]
fn compat_crates_are_exempt() {
    let (diags, _) = check_source(
        "crates/compat/rand/src/lib.rs",
        "compat/rand",
        true,
        r#"pub fn thread_rng() -> ThreadRng { ThreadRng::new(Instant::now()) }"#,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- output ordering ---------------------------------------------------------

#[test]
fn diagnostics_are_sorted_by_position() {
    let (diags, _) = lint_in(
        "apparate-core",
        "crates/apparate-core/src/x.rs",
        r#"
let b = SystemTime::now();
let a = Instant::now();
use std::collections::HashMap;
"#,
    );
    assert_eq!(diags, ["D001@2", "D001@3", "D002@4"]);
}
