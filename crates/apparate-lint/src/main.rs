//! The `apparate-lint` command: lint the workspace's determinism and
//! concurrency invariants.
//!
//! ```text
//! cargo run --release -p apparate-lint -- [--deny-warnings] [--json]
//!     [--crate NAME]... [--root PATH] [--list-rules]
//! ```
//!
//! Without flags every diagnostic prints as a warning and the exit code is 0;
//! with `--deny-warnings` any diagnostic makes the exit code 1 (the CI
//! `analysis` job runs this mode). `--json` emits one machine-readable
//! object instead of text. `--crate` restricts the pass to the named
//! crate(s); repeat it to scope several.

#![forbid(unsafe_code)]

use apparate_lint::{lint_files, registry, workspace_files, LintReport};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    deny_warnings: bool,
    json: bool,
    list_rules: bool,
    crates: Vec<String>,
    root: Option<PathBuf>,
}

const USAGE: &str = "usage: apparate-lint [--deny-warnings] [--json] [--crate NAME]... \
                     [--root PATH] [--list-rules]";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        json: false,
        list_rules: false,
        crates: Vec::new(),
        root: None,
    };
    let mut it = args;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--crate" => {
                let name = it.next().ok_or("--crate requires a crate name")?;
                opts.crates.push(name);
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The workspace root: `--root` when given, else two levels above this
/// crate's manifest (which is `crates/apparate-lint`), else the current
/// directory.
fn workspace_root(opts: &Options) -> PathBuf {
    if let Some(root) = &opts.root {
        return root.clone();
    }
    // lint:allow(D003, reason = "locates the workspace root for the scan; never influences a simulated decision or a seed")
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest_dir);
        if let Some(root) = manifest.ancestors().nth(2) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

/// Minimal JSON string escaping (the workspace serde is an offline stub; see
/// `crates/compat/serde`).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\"version\":\"apparate-lint/v1\",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&d.file),
            d.line,
            d.col,
            d.rule,
            escape_json(&d.message)
        ));
    }
    out.push_str(&format!(
        "],\"files_checked\":{},\"suppressed\":{}}}",
        report.files_checked, report.suppressed
    ));
    out
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("apparate-lint: {err}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in registry() {
            println!("{}  {}", rule.id, rule.summary);
        }
        println!("L001  lint:allow escapes must name a known rule and carry a non-empty reason");
        return ExitCode::SUCCESS;
    }
    let root = workspace_root(&opts);
    let mut files = match workspace_files(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("apparate-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if !opts.crates.is_empty() {
        files.retain(|f| opts.crates.iter().any(|c| c == &f.crate_name));
    }
    if files.is_empty() {
        eprintln!(
            "apparate-lint: no .rs files found under {} (wrong --root or --crate?)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let report = match lint_files(&files) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("apparate-lint: read error: {err}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        println!("{}", render_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
        println!(
            "apparate-lint: {} diagnostic(s), {} suppressed by lint:allow, {} file(s) checked",
            report.diagnostics.len(),
            report.suppressed,
            report.files_checked
        );
    }
    if opts.deny_warnings && !report.diagnostics.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
