//! Workspace discovery: every `.rs` file, mapped to its owning crate.
//!
//! The walk is deterministic (directory entries sorted by name) so the
//! tool's own output is byte-stable — a lint pass that enforces determinism
//! had better be deterministic itself.

use std::path::{Path, PathBuf};

/// One source file to lint.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Repo-relative path with forward slashes (diagnostic anchor).
    pub rel: String,
    /// Owning crate: `apparate-core`, `bench`, `compat/serde`, or
    /// `apparate` for the root facade (`src/`, `examples/`).
    pub crate_name: String,
    /// True for `crates/compat/*` registry stand-ins.
    pub is_compat: bool,
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", ".github"];

/// Collect every workspace `.rs` file under `root`, sorted by relative path.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let (crate_name, is_compat) = classify(&rel);
            out.push(SourceFile {
                path,
                rel,
                crate_name,
                is_compat,
            });
        }
    }
    Ok(())
}

/// Map a repo-relative path to `(crate name, is_compat)`.
pub fn classify(rel: &str) -> (String, bool) {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", "compat", name, ..] => (format!("compat/{name}"), true),
        ["crates", name, ..] => (name.to_string(), false),
        // Root facade sources and its examples.
        _ => ("apparate".to_string(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_crates() {
        assert_eq!(
            classify("crates/apparate-core/src/threshold.rs"),
            ("apparate-core".to_string(), false)
        );
        assert_eq!(
            classify("crates/compat/serde/src/lib.rs"),
            ("compat/serde".to_string(), true)
        );
        assert_eq!(classify("src/lib.rs"), ("apparate".to_string(), false));
        assert_eq!(
            classify("examples/quickstart.rs"),
            ("apparate".to_string(), false)
        );
    }
}
