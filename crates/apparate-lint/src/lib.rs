//! `apparate-lint` — a workspace determinism & concurrency lint pass.
//!
//! The system's headline invariants — fleet tables byte-identical for any
//! thread count, sim-time (never wall-clock) driving every decision, GPU
//! configuration advancing only at delivery sites — are pinned by integration
//! tests, but a test can't see a new `HashMap` iteration or a stray
//! `Instant::now()` sneaking into a decision path. This crate enforces those
//! invariants at the *source* level: a hand-rolled, dependency-free lexer
//! ([`lexer`]) splits every workspace `.rs` file into tokens, and a registry
//! of repo-specific rules ([`rules`]) matches token windows, producing
//! `file:line:col` diagnostics with stable rule IDs ([`diag`]).
//!
//! Violations that are intentional carry a mandatory-reason escape in the
//! source: `// lint:allow(D001, reason = "…")`. An escape without a reason
//! is itself a diagnostic (`L001`), so every exception is justified where it
//! lives.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run --release -p apparate-lint -- --deny-warnings
//! ```
//!
//! (the CI `analysis` job does exactly this), add `--json` for a
//! machine-readable report, `--crate NAME` to scope to one crate, and
//! `--list-rules` for the registry. The crate lints itself: its own sources
//! are workspace files like any other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use diag::{apply_allows, parse_allow_directives, AllowDirective, Diagnostic};
pub use lexer::{code_tokens, lex, Token, TokenKind};
pub use rules::{known_rule_ids, registry, FileCtx, Rule};
pub use workspace::{workspace_files, SourceFile};

/// Lint one source text as if it lived at `path` inside `crate_name`.
/// Returns the surviving diagnostics plus how many were suppressed by
/// well-formed `lint:allow` escapes. This is the per-file pipeline the
/// binary runs, exposed for fixture tests.
pub fn check_source(
    path: &str,
    crate_name: &str,
    is_compat: bool,
    src: &str,
) -> (Vec<Diagnostic>, usize) {
    let all_tokens = lex(src);
    let tokens = code_tokens(&all_tokens);
    let ctx = FileCtx {
        path,
        crate_name,
        is_compat,
        tokens: &tokens,
    };
    let known = known_rule_ids();
    let (directives, mut diagnostics) = parse_allow_directives(path, &all_tokens, &known);
    for rule in registry() {
        if (rule.applies)(&ctx) {
            (rule.check)(&ctx, &mut diagnostics);
        }
    }
    let (mut kept, suppressed) = apply_allows(diagnostics, &directives);
    kept.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (kept, suppressed)
}

/// Result of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Diagnostics across all files, in (file, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations suppressed by well-formed `lint:allow` escapes.
    pub suppressed: usize,
    /// Files lexed and checked.
    pub files_checked: usize,
}

/// Lint a set of discovered files (see [`workspace_files`]).
pub fn lint_files(files: &[SourceFile]) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for file in files {
        let src = std::fs::read_to_string(&file.path)?;
        let (diags, suppressed) = check_source(&file.rel, &file.crate_name, file.is_compat, &src);
        report.diagnostics.extend(diags);
        report.suppressed += suppressed;
        report.files_checked += 1;
    }
    Ok(report)
}
