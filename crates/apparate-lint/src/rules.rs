//! The rule registry: repo-specific determinism, concurrency and
//! wire-protocol invariants as token-level checks.
//!
//! Every rule is a heuristic over the flat token stream — deliberately so.
//! The invariants these rules pin ("byte-identical tables for any thread
//! count", "sim-time drives every decision", "GPU config changes only at
//! delivery sites") are properties a reviewer can check locally in the
//! source, which is exactly what a token window can see too. False positives
//! are expected to be rare and are handled with `lint:allow(RULE, reason)`
//! escapes that force the justification into the source.
//!
//! | ID   | guards                                                          |
//! |------|-----------------------------------------------------------------|
//! | D001 | no wall-clock (`Instant::now`/`SystemTime`) outside `bench`      |
//! | D002 | no `HashMap`/`HashSet` in table/export-producing crates          |
//! | D003 | no ambient randomness or env-dependent values                    |
//! | C001 | no lock guard held across a `spawn`/`scope` call                 |
//! | C002 | telemetry replicas via `for_replica`, never `set_replica`        |
//! | C003 | `#![forbid(unsafe_code)]` in every non-compat crate root         |
//! | W001 | GPU-half config mutations only at `poll()`-delivery sites        |
//! | L001 | `lint:allow` escapes must be well-formed and carry a reason      |

use crate::diag::Diagnostic;
use crate::lexer::Token;

/// Everything a rule can see about one file.
pub struct FileCtx<'a> {
    /// Repo-relative path, forward slashes.
    pub path: &'a str,
    /// Owning crate (`apparate-core`, `bench`, `compat/serde`, or
    /// `apparate` for the root facade and its examples).
    pub crate_name: &'a str,
    /// True for the offline registry stand-ins under `crates/compat/`, which
    /// mirror upstream crate internals and are exempt from most rules.
    pub is_compat: bool,
    /// The file's code tokens (comments stripped).
    pub tokens: &'a [Token],
}

impl FileCtx<'_> {
    fn diag(&self, rule: &'static str, at: &Token, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            file: self.path.to_string(),
            line: at.line,
            col: at.col,
            message,
        }
    }

    fn id(&self, i: usize, name: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| t.is_ident(name))
    }

    fn punct(&self, i: usize, p: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| t.is_punct(p))
    }

    fn assign_op(&self, i: usize) -> bool {
        self.punct(i, "=") || self.punct(i, "+=")
    }
}

/// One registered rule.
pub struct Rule {
    /// Stable ID (`D001`, …).
    pub id: &'static str,
    /// One-line description for `--list-rules` and the README.
    pub summary: &'static str,
    /// Whether the rule runs on this file at all (crate scoping).
    pub applies: fn(&FileCtx<'_>) -> bool,
    /// The check itself.
    pub check: fn(&FileCtx<'_>, &mut Vec<Diagnostic>),
}

/// The full registry, in report order. `L001` (malformed `lint:allow`) is
/// emitted by the driver, not listed here, but is a valid ID.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: "D001",
            summary: "no wall-clock reads (Instant::now/SystemTime) outside crates/bench; \
                      sim-time must drive every decision",
            applies: |ctx| !ctx.is_compat && ctx.crate_name != "bench",
            check: check_d001,
        },
        Rule {
            id: "D002",
            summary: "no HashMap/HashSet in table/export-producing crates; iteration order \
                      leaks into output — use BTreeMap/BTreeSet or a sorted collect",
            applies: |ctx| !ctx.is_compat,
            check: check_d002,
        },
        Rule {
            id: "D003",
            summary: "no ambient randomness or env-dependent values (thread_rng, from_entropy, \
                      env::var, thread::current().id())",
            applies: |ctx| !ctx.is_compat,
            check: check_d003,
        },
        Rule {
            id: "C001",
            summary: "no lock guard held across a spawn/scope call in the same block",
            applies: |ctx| !ctx.is_compat,
            check: check_c001,
        },
        Rule {
            id: "C002",
            summary: "telemetry replica handles are derived with for_replica; shared-mutable \
                      set_replica-style access is banned",
            applies: |ctx| !ctx.is_compat,
            check: check_c002,
        },
        Rule {
            id: "C003",
            summary: "#![forbid(unsafe_code)] must be present in every non-compat crate root",
            applies: |ctx| !ctx.is_compat && ctx.path.ends_with("src/lib.rs"),
            check: check_c003,
        },
        Rule {
            id: "W001",
            summary: "GPU-half ThresholdUpdate/ramp-set state may only change in functions \
                      that poll() a delivery — config epochs advance at delivery, not decision",
            applies: |ctx| !ctx.is_compat,
            check: check_w001,
        },
    ]
}

/// Every valid rule ID, for `lint:allow` validation.
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = registry().iter().map(|r| r.id).collect();
    ids.push("L001");
    ids
}

/// D001: `Instant::now(…)` or any `SystemTime` mention. The §4.5 repro runs
/// entirely on sim-time; a wall-clock read in a decision path breaks
/// thread-count invariance and run-to-run determinism.
fn check_d001(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.tokens.len() {
        if ctx.id(i, "Instant") && ctx.punct(i + 1, "::") && ctx.id(i + 2, "now") {
            out.push(
                ctx.diag(
                    "D001",
                    &ctx.tokens[i],
                    "wall-clock read (`Instant::now`): decisions must be driven by sim-time; \
                 if this is a reported-only metric, annotate with \
                 `lint:allow(D001, reason = \"…\")`"
                        .to_string(),
                ),
            );
        }
        if ctx.id(i, "SystemTime") {
            out.push(ctx.diag(
                "D001",
                &ctx.tokens[i],
                "wall-clock type (`SystemTime`) outside crates/bench".to_string(),
            ));
        }
    }
}

/// D002: `HashMap`/`HashSet`. Iteration order is randomized per process, so
/// anything that flows into tables, traces or exports breaks byte-identical
/// output. `BTreeMap`/`BTreeSet` (or collect-then-sort) is the workspace
/// idiom.
fn check_d002(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, token) in ctx.tokens.iter().enumerate() {
        for name in ["HashMap", "HashSet"] {
            if ctx.id(i, name) {
                out.push(ctx.diag(
                    "D002",
                    token,
                    format!(
                        "`{name}` iteration order is nondeterministic and this crate feeds \
                         tables/exports; use `BTree{}` or a sorted collect, or prove the \
                         order non-observable with `lint:allow(D002, reason = \"…\")`",
                        &name[4..]
                    ),
                ));
            }
        }
    }
}

/// D003: ambient nondeterminism — OS-seeded RNGs, thread identity, and
/// environment reads. Seeds come from config, never from the environment.
fn check_d003(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.tokens.len() {
        for name in ["thread_rng", "from_entropy"] {
            if ctx.id(i, name) {
                out.push(ctx.diag(
                    "D003",
                    &ctx.tokens[i],
                    format!("OS-seeded randomness (`{name}`): seeds must come from config"),
                ));
            }
        }
        if ctx.id(i, "env")
            && ctx.punct(i + 1, "::")
            && (ctx.id(i + 2, "var") || ctx.id(i + 2, "var_os"))
        {
            out.push(
                ctx.diag(
                    "D003",
                    &ctx.tokens[i],
                    "environment read (`env::var`): runs must not depend on ambient state; \
                 plumb configuration through explicit flags, or annotate with \
                 `lint:allow(D003, reason = \"…\")`"
                        .to_string(),
                ),
            );
        }
        if ctx.id(i, "thread")
            && ctx.punct(i + 1, "::")
            && ctx.id(i + 2, "current")
            && ctx.punct(i + 3, "(")
            && ctx.punct(i + 4, ")")
            && ctx.punct(i + 5, ".")
            && ctx.id(i + 6, "id")
        {
            out.push(ctx.diag(
                "D003",
                &ctx.tokens[i],
                "thread identity (`thread::current().id()`) is scheduling-dependent".to_string(),
            ));
        }
    }
}

/// A lock guard that is still live in some enclosing block.
struct LiveGuard {
    name: String,
    line: u32,
}

/// A `let` statement being scanned: where it started (delimiter depth) and
/// the token index of the first `.lock(` in its initializer, if any.
struct LetFrame {
    name: Option<String>,
    depth: i32,
    lock_at: Option<usize>,
}

/// C001: a `let guard = …lock()…;` binding that is still live (not dropped,
/// block not closed) when a `.spawn(`/`::scope(` call appears. Holding a
/// registry or stats lock while spawning workers is how the parallel fleet
/// path deadlocks or serializes; guards must be scoped out first.
fn check_c001(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    let mut depth: i32 = 0; // combined ( ) { } [ ] nesting
    let mut scopes: Vec<Vec<LiveGuard>> = vec![Vec::new()];
    let mut lets: Vec<LetFrame> = Vec::new();
    for i in 0..t.len() {
        let token = &t[i];
        if token.is_punct("{") {
            depth += 1;
            scopes.push(Vec::new());
        } else if token.is_punct("(") || token.is_punct("[") {
            depth += 1;
        } else if token.is_punct("}") {
            depth -= 1;
            scopes.pop();
            if scopes.is_empty() {
                scopes.push(Vec::new()); // unbalanced input; stay sane
            }
            while lets.last().is_some_and(|f| f.depth > depth) {
                lets.pop();
            }
        } else if token.is_punct(")") || token.is_punct("]") {
            depth -= 1;
            while lets.last().is_some_and(|f| f.depth > depth) {
                lets.pop();
            }
        } else if token.is_ident("let") {
            // The bound name: first identifier after `let`, skipping `mut`.
            let mut j = i + 1;
            while ctx.id(j, "mut") || ctx.id(j, "ref") {
                j += 1;
            }
            let name = t
                .get(j)
                .and_then(|n| (n.kind == crate::lexer::TokenKind::Ident).then(|| n.text.clone()));
            lets.push(LetFrame {
                name,
                depth,
                lock_at: None,
            });
        } else if token.is_punct(";") {
            if lets.last().is_some_and(|f| f.depth == depth) {
                let frame = lets.pop().expect("frame checked above");
                if frame.lock_at.is_some_and(|at| binds_guard(ctx, at, i)) {
                    if let (Some(name), Some(scope)) = (frame.name, scopes.last_mut()) {
                        scope.push(LiveGuard {
                            name,
                            line: token.line,
                        });
                    }
                }
            }
        } else if token.is_punct(".") && ctx.id(i + 1, "lock") && ctx.punct(i + 2, "(") {
            if let Some(frame) = lets.last_mut() {
                frame.lock_at.get_or_insert(i);
            }
        } else if ctx.id(i, "drop") && ctx.punct(i + 1, "(") {
            if let Some(dropped) = t.get(i + 2) {
                for scope in &mut scopes {
                    scope.retain(|g| g.name != dropped.text);
                }
            }
        }
        let spawn_like = (ctx.id(i, "spawn") || ctx.id(i, "scope"))
            && ctx.punct(i + 1, "(")
            && i > 0
            && (ctx.punct(i - 1, ".") || ctx.punct(i - 1, "::"));
        if spawn_like {
            for guard in scopes.iter().flatten() {
                out.push(ctx.diag(
                    "C001",
                    token,
                    format!(
                        "lock guard `{}` (bound at line {}) is still held across this \
                         `{}` call; drop or scope the guard out before spawning",
                        guard.name, guard.line, token.text
                    ),
                ));
            }
        }
    }
}

/// C002: `set_replica`. Replica attribution must flow through derived
/// `for_replica` handles writing disjoint per-replica buffers; a mutable
/// replica field on a shared handle races under the parallel fleet and was
/// deleted in PR 7 — this rule keeps it deleted.
fn check_c002(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, token) in ctx.tokens.iter().enumerate() {
        if ctx.id(i, "set_replica") {
            out.push(
                ctx.diag(
                    "C002",
                    token,
                    "`set_replica`-style shared-mutable replica attribution: derive a handle \
                 with `Telemetry::for_replica` instead"
                        .to_string(),
                ),
            );
        }
    }
}

/// C003: the crate root must carry `#![forbid(unsafe_code)]`.
fn check_c003(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let t = ctx.tokens;
    let present = (0..t.len()).any(|i| {
        ctx.punct(i, "#")
            && ctx.punct(i + 1, "!")
            && ctx.punct(i + 2, "[")
            && ctx.id(i + 3, "forbid")
            && ctx.punct(i + 4, "(")
            && ctx.id(i + 5, "unsafe_code")
            && ctx.punct(i + 6, ")")
            && ctx.punct(i + 7, "]")
    });
    if !present {
        out.push(Diagnostic {
            rule: "C003",
            file: ctx.path.to_string(),
            line: 1,
            col: 1,
            message: format!(
                "crate `{}` is missing `#![forbid(unsafe_code)]` in its root",
                ctx.crate_name
            ),
        });
    }
}

/// W001: mutations of GPU-half configuration state (`thresholds`, `plan`,
/// `config_epoch`) must happen in a function that polls a delivery
/// (`….poll(now)` lexically precedes the mutation). Two windows:
/// assignments to those fields inside `impl …Gpu…` blocks, and
/// `….gpu.<field> = …` writes from anywhere. This is the source-level fence
/// for the §4.5 epoch gating: the GPU's config may only advance when an
/// update is *delivered*, never at decision time.
fn check_w001(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    const FIELDS: [&str; 3] = ["thresholds", "plan", "config_epoch"];
    let t = ctx.tokens;
    let mut brace_depth: i32 = 0;
    // (impl type name, depth of its body), innermost last.
    let mut impls: Vec<(String, i32)> = Vec::new();
    // (has_poll, depth of fn body), innermost last.
    let mut fns: Vec<(bool, i32)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut pending_fn = false;
    for i in 0..t.len() {
        let token = &t[i];
        if token.is_ident("impl") && item_position(t, i) {
            // Item-position `impl Type { … }` only — `impl Trait` in type
            // position (arguments, return types) opens no block.
            pending_impl = Some(impl_type_name(ctx, i));
        } else if token.is_ident("fn")
            && t.get(i + 1)
                .is_some_and(|n| n.kind == crate::lexer::TokenKind::Ident)
        {
            // A named fn item/method; `fn(u32) -> u32` pointer types have no
            // name and open no body.
            pending_fn = true;
        } else if token.is_punct(";") {
            pending_fn = false; // trait method declaration without a body
        } else if token.is_punct("{") {
            brace_depth += 1;
            if let Some(name) = pending_impl.take() {
                impls.push((name, brace_depth));
            } else if pending_fn {
                fns.push((false, brace_depth));
                pending_fn = false;
            }
        } else if token.is_punct("}") {
            if impls.last().is_some_and(|(_, d)| *d == brace_depth) {
                impls.pop();
            }
            if fns.last().is_some_and(|(_, d)| *d == brace_depth) {
                fns.pop();
            }
            brace_depth -= 1;
        } else if token.is_punct(".") && ctx.id(i + 1, "poll") && ctx.punct(i + 2, "(") {
            if let Some((has_poll, _)) = fns.last_mut() {
                *has_poll = true;
            }
        }
        let in_gpu_impl = impls.last().is_some_and(|(name, _)| name.contains("Gpu"));
        let field_write = |field: &str| -> Option<&Token> {
            if in_gpu_impl
                && ctx.id(i, "self")
                && ctx.punct(i + 1, ".")
                && ctx.id(i + 2, field)
                && ctx.assign_op(i + 3)
            {
                return Some(&t[i + 2]);
            }
            if ctx.punct(i, ".")
                && ctx.id(i + 1, "gpu")
                && ctx.punct(i + 2, ".")
                && ctx.id(i + 3, field)
                && ctx.assign_op(i + 4)
            {
                return Some(&t[i + 3]);
            }
            None
        };
        for field in FIELDS {
            if let Some(at) = field_write(field) {
                let delivered = fns.last().is_some_and(|(has_poll, _)| *has_poll);
                if !delivered {
                    out.push(ctx.diag(
                        "W001",
                        at,
                        format!(
                            "GPU-half config state `{field}` mutated outside a \
                             `poll()`-delivery site; ThresholdUpdate state may only change \
                             when a delivery is polled (offline initialisation needs \
                             `lint:allow(W001, reason = \"…\")`)"
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether a `let` whose initializer calls `.lock(` at token `lock_at`
/// actually *binds* the guard: only `unwrap`/`expect` may be chained after
/// the lock before the statement's `;` at `semi`. Any other method call
/// (`.lock().unwrap().len()`) consumes the guard as a temporary, which dies
/// at the end of the statement — the binding holds no lock.
fn binds_guard(ctx: &FileCtx<'_>, lock_at: usize, semi: usize) -> bool {
    for k in lock_at + 1..semi {
        if ctx.tokens[k].is_punct(".")
            && ctx
                .tokens
                .get(k + 1)
                .is_some_and(|t| t.kind == crate::lexer::TokenKind::Ident)
            && ctx.punct(k + 2, "(")
            && !ctx.id(k + 1, "lock")
            && !ctx.id(k + 1, "unwrap")
            && !ctx.id(k + 1, "expect")
        {
            return false;
        }
    }
    true
}

/// Whether the token at `i` sits at item position: start of file, or after
/// a block/item boundary (`}`, `;`, `{`, or the `]` closing an attribute).
fn item_position(t: &[Token], i: usize) -> bool {
    match i.checked_sub(1).and_then(|p| t.get(p)) {
        None => true,
        Some(prev) => {
            prev.is_punct("}") || prev.is_punct(";") || prev.is_punct("{") || prev.is_punct("]")
        }
    }
}

/// The self type of an `impl` header starting at token `i`: the identifier
/// after `for` when present (`impl Trait for Type`), else the first
/// identifier after `impl` (generic params skipped).
fn impl_type_name(ctx: &FileCtx<'_>, i: usize) -> String {
    let t = ctx.tokens;
    let mut j = i + 1;
    let mut angle: i32 = 0;
    let mut first: Option<&str> = None;
    while let Some(token) = t.get(j) {
        if token.is_punct("{") || token.is_ident("where") {
            break;
        }
        if token.is_punct("<") {
            angle += 1;
        } else if token.is_punct(">") || token.is_punct(">>") {
            angle -= if token.is_punct(">>") { 2 } else { 1 };
        } else if token.is_ident("for") && angle == 0 {
            // The real self type follows; restart the capture.
            first = None;
        } else if angle == 0
            && token.kind == crate::lexer::TokenKind::Ident
            && first.is_none()
            && !token.is_ident("dyn")
            && !token.is_ident("impl")
        {
            first = Some(&token.text);
        }
        j += 1;
    }
    first.unwrap_or_default().to_string()
}
