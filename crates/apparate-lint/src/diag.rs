//! Diagnostics, and the `lint:allow` escape hatch.
//!
//! A diagnostic names the rule, the `file:line:col` anchor, and a message.
//! Violations are suppressed — never silently — with a comment escape that
//! *must* carry a reason:
//!
//! ```text
//! // lint:allow(D001, reason = "wall-time metric only, never feeds a decision")
//! ```
//!
//! A directive suppresses matching diagnostics on its own line (trailing
//! comment) and on the line immediately below (comment above the code), and
//! must *lead* its comment — the phrase appearing mid-sentence is prose. A
//! directive without a reason, with an empty reason, or naming an unknown
//! rule is itself a diagnostic (`L001`) — and `L001` cannot be allowed, so
//! the escape hatch can't be used to disable itself.

use crate::lexer::{Token, TokenKind};

/// One finding: rule, anchor, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID (`D001`, `C003`, …; `L001` for malformed escapes).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong and what to do about it.
    pub message: String,
}

impl Diagnostic {
    /// The canonical `file:line:col: RULE: message` rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A well-formed `lint:allow(RULE, reason = "…")` escape.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule ID the directive suppresses.
    pub rule: String,
    /// Line the directive's comment starts on.
    pub line: u32,
    /// The (non-empty) justification.
    pub reason: String,
}

/// Scan comment tokens for `lint:allow` directives. Malformed directives are
/// returned as `L001` diagnostics instead of directives.
pub fn parse_allow_directives(
    file: &str,
    tokens: &[Token],
    known_rules: &[&'static str],
) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
    let mut directives = Vec::new();
    let mut malformed = Vec::new();
    for token in tokens {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        // A directive must *lead* the comment (after `//`, `//!`, `/*`, …);
        // `lint:allow` mentioned mid-sentence is prose, not a directive.
        let body = token.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        match parse_one_directive(rest, known_rules) {
            Ok((rule, reason)) => directives.push(AllowDirective {
                rule,
                line: token.line,
                reason,
            }),
            Err(why) => malformed.push(Diagnostic {
                rule: "L001",
                file: file.to_string(),
                line: token.line,
                col: token.col,
                message: why,
            }),
        }
    }
    (directives, malformed)
}

/// Parse `(RULE, reason = "…")` from the text following `lint:allow`. The
/// reason is a quoted string and may itself contain commas and parentheses,
/// so this is a cursor walk, not a split on delimiters.
fn parse_one_directive(
    rest: &str,
    known_rules: &[&'static str],
) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("malformed lint:allow: expected `(RULE, reason = \"…\")`".to_string());
    };
    let rest = rest.trim_start();
    let rule_len = rest
        .find(|c: char| !c.is_ascii_alphanumeric())
        .unwrap_or(rest.len());
    let rule = &rest[..rule_len];
    if !known_rules.contains(&rule) {
        return Err(format!(
            "lint:allow names unknown rule `{rule}` (run with --list-rules for the registry)"
        ));
    }
    let rest = rest[rule_len..].trim_start();
    if rest.starts_with(')') || !rest.starts_with(',') {
        return Err(format!(
            "lint:allow({rule}) requires a reason: `lint:allow({rule}, reason = \"…\")`"
        ));
    }
    let quoted = rest[1..]
        .trim_start()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('"'));
    let Some(quoted) = quoted else {
        return Err(format!(
            "lint:allow({rule}) reason must be `reason = \"…\"` inside the parentheses"
        ));
    };
    let Some(end) = quoted.find('"') else {
        return Err(format!("lint:allow({rule}) reason string is unterminated"));
    };
    let reason = &quoted[..end];
    if reason.trim().is_empty() {
        return Err(format!("lint:allow({rule}) has an empty reason"));
    }
    if !quoted[end + 1..].trim_start().starts_with(')') {
        return Err(format!("lint:allow({rule}) is missing its closing `)`"));
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Drop diagnostics covered by a directive for the same rule on the same
/// line or the line above. `L001` is never suppressible. Returns the kept
/// diagnostics and how many were suppressed.
pub fn apply_allows(
    diagnostics: Vec<Diagnostic>,
    directives: &[AllowDirective],
) -> (Vec<Diagnostic>, usize) {
    let before = diagnostics.len();
    let kept: Vec<Diagnostic> = diagnostics
        .into_iter()
        .filter(|d| {
            d.rule == "L001"
                || !directives
                    .iter()
                    .any(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line))
        })
        .collect();
    let suppressed = before - kept.len();
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const KNOWN: [&str; 2] = ["D001", "L001"];

    fn parse(src: &str) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
        parse_allow_directives("f.rs", &lex(src), &KNOWN)
    }

    #[test]
    fn well_formed_directive_parses() {
        let (dirs, diags) = parse("// lint:allow(D001, reason = \"metric only\")\nx();");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs[0].rule, "D001");
        assert_eq!(dirs[0].reason, "metric only");
        assert_eq!(dirs[0].line, 1);
    }

    #[test]
    fn reason_may_contain_commas_and_parens() {
        let (dirs, diags) =
            parse("// lint:allow(D001, reason = \"reported (not branched on), ever\")");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(dirs[0].reason, "reported (not branched on), ever");
    }

    #[test]
    fn block_and_doc_comments_carry_directives_too() {
        let (dirs, diags) =
            parse("/* lint:allow(D001, reason = \"a\") */\n//! lint:allow(L001, reason = \"b\")");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(dirs.len(), 2);
    }

    #[test]
    fn missing_reason_is_l001() {
        let (dirs, diags) = parse("// lint:allow(D001)");
        assert!(dirs.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "L001");
        assert!(diags[0].message.contains("requires a reason"), "{diags:?}");
    }

    #[test]
    fn empty_reason_is_l001() {
        let (dirs, diags) = parse("// lint:allow(D001, reason = \"  \")");
        assert!(dirs.is_empty());
        assert!(diags[0].message.contains("empty reason"), "{diags:?}");
    }

    #[test]
    fn unknown_rule_is_l001() {
        let (dirs, diags) = parse("// lint:allow(Z999, reason = \"nope\")");
        assert!(dirs.is_empty());
        assert!(diags[0].message.contains("unknown rule"), "{diags:?}");
    }

    #[test]
    fn unterminated_reason_is_l001() {
        let (dirs, diags) = parse("// lint:allow(D001, reason = \"oops");
        assert!(dirs.is_empty());
        assert!(diags[0].message.contains("unterminated"), "{diags:?}");
    }

    #[test]
    fn mid_sentence_mention_is_prose_not_a_directive() {
        let (dirs, diags) = parse("// escapes are spelled lint:allow(RULE, reason)");
        assert!(dirs.is_empty(), "{dirs:?}");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn directive_inside_a_string_literal_is_not_parsed() {
        let (dirs, diags) = parse("let s = \"// lint:allow(D001)\";");
        assert!(dirs.is_empty());
        assert!(diags.is_empty(), "{diags:?}");
    }

    fn diag_at(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            file: "f.rs".to_string(),
            line,
            col: 1,
            message: String::new(),
        }
    }

    fn allow_at(rule: &str, line: u32) -> AllowDirective {
        AllowDirective {
            rule: rule.to_string(),
            line,
            reason: "because".to_string(),
        }
    }

    #[test]
    fn allows_cover_same_line_and_next_line_only() {
        let diags = vec![diag_at("D001", 5), diag_at("D001", 6), diag_at("D001", 7)];
        let (kept, suppressed) = apply_allows(diags, &[allow_at("D001", 5)]);
        assert_eq!(suppressed, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 7);
    }

    #[test]
    fn allows_are_rule_specific() {
        let (kept, suppressed) = apply_allows(vec![diag_at("D001", 5)], &[allow_at("L001", 5)]);
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn l001_cannot_be_allowed() {
        let (kept, suppressed) = apply_allows(vec![diag_at("L001", 5)], &[allow_at("L001", 5)]);
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1, "the escape hatch must not disable itself");
    }
}
