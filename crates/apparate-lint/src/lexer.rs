//! A hand-rolled token-level lexer for Rust source.
//!
//! The rules in [`crate::rules`] match token *sequences*, so the lexer's only
//! job is to split source into identifiers, punctuation, literals and
//! comments without ever mistaking the inside of a string or comment for
//! code. That means it must get the awkward corners right: nested block
//! comments, raw strings with arbitrary `#` fences, byte strings, escaped
//! quotes, and the `'a` lifetime vs `'a'` char-literal ambiguity. It does
//! *not* need to classify keywords, parse numbers precisely, or build a
//! syntax tree — rules work on flat token windows.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `let`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// Punctuation, maximal-munch compound operators included (`::`, `+=`).
    Punct,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte literal (`'x'`, `'\''`, `b'\n'`).
    Char,
    /// Numeric literal (loosely munched; rules never inspect the value).
    Num,
    /// `// …` comment, doc comments included. Carries the full text.
    LineComment,
    /// `/* … */` comment, nesting resolved. Carries the full text.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text (delimiters included for literals and comments).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Token {
    /// True when this token is an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when this token is punctuation with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

/// Compound operators, longest first so maximal munch is a prefix scan.
/// (`//` and `/*` are absent on purpose: comments lex before punctuation.)
const PUNCTS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one char, tracking line/col.
    fn bump(&mut self, out: &mut String) {
        let c = self.chars[self.i];
        out.push(c);
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize, out: &mut String) {
        for _ in 0..n {
            if self.i < self.chars.len() {
                self.bump(out);
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens, comments included. Never fails: unrecognised bytes
/// become single-char `Punct` tokens, and unterminated literals or comments
/// simply run to end of input (the rules only care about what came before).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c.is_whitespace() {
            lx.bump(&mut String::new());
            continue;
        }
        let (line, col) = (lx.line, lx.col);
        let mut text = String::new();
        let kind = if c == '/' && lx.peek(1) == Some('/') {
            while let Some(c) = lx.peek(0) {
                if c == '\n' {
                    break;
                }
                lx.bump(&mut text);
            }
            TokenKind::LineComment
        } else if c == '/' && lx.peek(1) == Some('*') {
            lx.bump_n(2, &mut text);
            let mut depth = 1usize;
            while depth > 0 && lx.peek(0).is_some() {
                if lx.peek(0) == Some('/') && lx.peek(1) == Some('*') {
                    lx.bump_n(2, &mut text);
                    depth += 1;
                } else if lx.peek(0) == Some('*') && lx.peek(1) == Some('/') {
                    lx.bump_n(2, &mut text);
                    depth -= 1;
                } else {
                    lx.bump(&mut text);
                }
            }
            TokenKind::BlockComment
        } else if let Some(kind) = lex_raw_or_byte_prefix(&mut lx, &mut text) {
            kind
        } else if c == '"' {
            lex_string(&mut lx, &mut text);
            TokenKind::Str
        } else if c == '\'' {
            lex_quote(&mut lx, &mut text)
        } else if is_ident_start(c) {
            while let Some(c) = lx.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                lx.bump(&mut text);
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            lex_number(&mut lx, &mut text);
            TokenKind::Num
        } else {
            let munched = PUNCTS
                .iter()
                .find(|p| p.chars().enumerate().all(|(k, pc)| lx.peek(k) == Some(pc)));
            match munched {
                Some(p) => lx.bump_n(p.len(), &mut text),
                None => lx.bump(&mut text),
            }
            TokenKind::Punct
        };
        tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    tokens
}

/// Handle tokens starting with `r` or `b`: raw strings (`r"…"`, `r#"…"#`),
/// byte strings (`b"…"`, `br#"…"#`), byte chars (`b'x'`) and raw identifiers
/// (`r#match`). Returns `None` when the `r`/`b` is just an ordinary
/// identifier start, leaving the lexer untouched.
fn lex_raw_or_byte_prefix(lx: &mut Lexer, text: &mut String) -> Option<TokenKind> {
    let c = lx.peek(0)?;
    if c != 'r' && c != 'b' {
        return None;
    }
    // Look past an optional second prefix char (`br…`).
    let (prefix, after) = if c == 'b' && lx.peek(1) == Some('r') {
        (2, lx.peek(2))
    } else {
        (1, lx.peek(1))
    };
    match after {
        // b"…" (no raw fence) and b'…'.
        Some('"') if c == 'b' && prefix == 1 => {
            lx.bump_n(1, text);
            lex_string(lx, text);
            Some(TokenKind::Str)
        }
        Some('\'') if c == 'b' && prefix == 1 => {
            lx.bump_n(1, text);
            lex_char(lx, text);
            Some(TokenKind::Char)
        }
        // r"…", br"…": zero-fence raw string — no escapes, ends at `"`.
        Some('"') => {
            lx.bump_n(prefix + 1, text);
            lex_raw_tail(lx, 0, text);
            Some(TokenKind::Str)
        }
        Some('#') => {
            // Count the fence. `r#ident` (one hash, then ident-start) is a
            // raw identifier, not a string.
            let mut hashes = 0usize;
            while lx.peek(prefix + hashes) == Some('#') {
                hashes += 1;
            }
            match lx.peek(prefix + hashes) {
                Some('"') => {
                    lx.bump_n(prefix + hashes + 1, text);
                    lex_raw_tail(lx, hashes, text);
                    Some(TokenKind::Str)
                }
                Some(ch) if c == 'r' && hashes == 1 && is_ident_start(ch) => {
                    lx.bump_n(2, text); // r#
                    while let Some(ch) = lx.peek(0) {
                        if !is_ident_continue(ch) {
                            break;
                        }
                        lx.bump(text);
                    }
                    Some(TokenKind::Ident)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Consume a raw-string body up to `"` followed by `hashes` `#`s.
fn lex_raw_tail(lx: &mut Lexer, hashes: usize, text: &mut String) {
    while lx.peek(0).is_some() {
        if lx.peek(0) == Some('"') && (1..=hashes).all(|k| lx.peek(k) == Some('#')) {
            lx.bump_n(1 + hashes, text);
            return;
        }
        lx.bump(text);
    }
}

/// Consume a `"…"` string with `\` escapes (opening quote not yet consumed).
fn lex_string(lx: &mut Lexer, text: &mut String) {
    lx.bump(text); // opening "
    while let Some(c) = lx.peek(0) {
        if c == '\\' {
            lx.bump_n(2, text);
        } else if c == '"' {
            lx.bump(text);
            return;
        } else {
            lx.bump(text);
        }
    }
}

/// Consume a `'…'` char literal with escapes (opening quote not yet consumed).
fn lex_char(lx: &mut Lexer, text: &mut String) {
    lx.bump(text); // opening '
    while let Some(c) = lx.peek(0) {
        if c == '\\' {
            lx.bump_n(2, text);
        } else if c == '\'' {
            lx.bump(text);
            return;
        } else {
            lx.bump(text);
        }
    }
}

/// Disambiguate `'` between a char literal and a lifetime:
/// `'\…'` and `'x'` are chars; `'a`, `'static`, `'_` (no closing quote
/// in position 2) are lifetimes.
fn lex_quote(lx: &mut Lexer, text: &mut String) -> TokenKind {
    let next = lx.peek(1);
    if next == Some('\\') {
        lex_char(lx, text);
        return TokenKind::Char;
    }
    if next.is_some() && next != Some('\'') && lx.peek(2) == Some('\'') {
        lx.bump_n(3, text);
        return TokenKind::Char;
    }
    // Lifetime: quote plus identifier chars.
    lx.bump(text);
    while let Some(c) = lx.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        lx.bump(text);
    }
    TokenKind::Lifetime
}

/// Loose numeric munch: digits, `_`, type suffixes, and one fractional part.
/// `0..10` must *not* swallow the range operator.
fn lex_number(lx: &mut Lexer, text: &mut String) {
    while let Some(c) = lx.peek(0) {
        let fractional_dot =
            c == '.' && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.');
        if is_ident_continue(c) || fractional_dot {
            lx.bump(text);
        } else {
            break;
        }
    }
}

/// The code tokens of a lexed stream: everything except comments.
pub fn code_tokens(tokens: &[Token]) -> Vec<Token> {
    tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_fences_are_single_tokens() {
        let toks = kinds_and_texts(r####"let s = r#"a "quote" inside"#;"####);
        assert_eq!(
            toks[3],
            (TokenKind::Str, r##"r#"a "quote" inside"#"##.to_string())
        );
        assert_eq!(toks[4], (TokenKind::Punct, ";".to_string()));
    }

    #[test]
    fn zero_fence_raw_and_byte_strings() {
        let toks = kinds_and_texts(r#"(r"no escapes \", b"bytes", br"both \")"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3);
        // In a raw string `\` is not an escape, so `\"` terminates it.
        assert_eq!(strs[0].1, r#"r"no escapes \""#);
        assert_eq!(strs[1].1, r#"b"bytes""#);
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let toks = kinds_and_texts("let r#match = 1;");
        assert_eq!(toks[1], (TokenKind::Ident, "r#match".to_string()));
    }

    #[test]
    fn nested_block_comments_resolve() {
        let toks = kinds_and_texts("/* a /* b */ still comment */ fn");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[0].1, "/* a /* b */ still comment */");
        assert_eq!(toks[1], (TokenKind::Ident, "fn".to_string()));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds_and_texts("let c = 'a'; let r: &'static str = f::<'b>();");
        assert!(toks.contains(&(TokenKind::Char, "'a'".to_string())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'static".to_string())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'b".to_string())));
    }

    #[test]
    fn escaped_quotes_stay_inside_literals() {
        let toks = kinds_and_texts(r#"('\'', "he said \"hi\"", '\\')"#);
        assert!(toks.contains(&(TokenKind::Char, r"'\''".to_string())));
        assert!(toks.contains(&(TokenKind::Str, r#""he said \"hi\"""#.to_string())));
        assert!(toks.contains(&(TokenKind::Char, r"'\\'".to_string())));
    }

    #[test]
    fn maximal_munch_compound_operators() {
        let toks = kinds_and_texts("a <<= 1; b ..= c; d += e;");
        for op in ["<<=", "..=", "+="] {
            assert!(
                toks.contains(&(TokenKind::Punct, op.to_string())),
                "missing {op} in {toks:?}"
            );
        }
    }

    #[test]
    fn range_operator_is_not_swallowed_by_numbers() {
        let toks = kinds_and_texts("for i in 0..10 {} let f = 1.5;");
        assert!(toks.contains(&(TokenKind::Num, "0".to_string())));
        assert!(toks.contains(&(TokenKind::Punct, "..".to_string())));
        assert!(toks.contains(&(TokenKind::Num, "10".to_string())));
        assert!(toks.contains(&(TokenKind::Num, "1.5".to_string())));
    }

    #[test]
    fn division_is_not_a_comment() {
        let toks = kinds_and_texts("let x = a / b; // trailing note");
        assert!(toks.contains(&(TokenKind::Punct, "/".to_string())));
        assert_eq!(toks.last().unwrap().0, TokenKind::LineComment);
    }

    #[test]
    fn positions_are_one_based_and_track_newlines() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn multiline_string_advances_line_tracking() {
        let toks = lex("let s = \"a\nb\"; next");
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 2);
    }

    #[test]
    fn code_tokens_strips_comments_only() {
        let toks = lex("fn f() {} // note\n/* block */ g();");
        let code = code_tokens(&toks);
        assert!(code
            .iter()
            .all(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)));
        assert!(code.iter().any(|t| t.is_ident("g")));
    }

    #[test]
    fn unterminated_literals_run_to_end_without_panicking() {
        for src in ["\"open", "/* open", "r#\"open", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "no tokens for {src:?}");
        }
    }
}
