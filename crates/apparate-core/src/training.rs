//! Simulated ramp training.
//!
//! The real system trains each ramp's small FC head on automatically labelled
//! data (the submitted model's own outputs), with the original weights frozen
//! and all ramps trained independently and in parallel (§3.1). The
//! reproduction models the *outcome* of that training — the ramp's predictive
//! capacity — and the *cost* (a few minutes on one A6000), since those are
//! what the rest of the system consumes.
//!
//! Capacity grows with the amount of bootstrap data and saturates quickly;
//! heavier architectures start marginally higher (Figure 8 shows the gain is
//! small). Generative ramps reuse the existing decoder head and therefore
//! need no training at all (§3.1).

use crate::placement::RampSite;
use crate::ramp::RampArchitecture;
use apparate_exec::RampPlacement;
use apparate_model::{TaskKind, ZooModel};
use serde::{Deserialize, Serialize};

/// A ramp whose weights have been "trained": placement plus achieved capacity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainedRamp {
    /// Where the ramp sits and what it costs.
    pub site: RampSite,
    /// Achieved predictive capacity in `[0, 1]`.
    pub capacity: f64,
}

impl TrainedRamp {
    /// Convert to the execution-engine representation.
    pub fn placement(&self) -> RampPlacement {
        RampPlacement {
            site: self.site.site,
            cost: self.site.spec.cost,
            capacity: self.capacity,
        }
    }
}

/// Summary of a training run, for reports and the preparation-phase
/// experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Number of ramps trained.
    pub ramps: usize,
    /// Total ramp parameters.
    pub total_params: u64,
    /// Fraction of the original model's parameters the ramps add.
    pub param_fraction: f64,
    /// Training samples used.
    pub train_samples: usize,
    /// Estimated wall-clock training time in minutes on a single A6000
    /// ("on the order of a few minutes for our models", §3.1).
    pub estimated_minutes: f64,
    /// Whether training was skipped because existing heads are reused.
    pub reused_existing_head: bool,
}

/// Capacity achieved by an architecture after training on `train_samples`
/// automatically labelled samples.
pub fn trained_capacity(architecture: RampArchitecture, train_samples: usize) -> f64 {
    let base = architecture.base_capacity();
    // Saturating data term: with a few hundred samples the ramp reaches its
    // architectural ceiling; with almost none it is noticeably worse.
    let data_term = 1.0 - (-(train_samples as f64) / 150.0).exp();
    let floor = base - 0.08;
    (floor + (base - floor) * data_term).clamp(0.0, 1.0)
}

/// Train ramps for the given sites.
///
/// `train_samples` is the size of the bootstrap training split (the first 1 %
/// of the workload, §3.1). Returns the trained ramps plus a report.
pub fn train_ramps(
    model: &ZooModel,
    sites: &[RampSite],
    architecture: RampArchitecture,
    train_samples: usize,
) -> (Vec<TrainedRamp>, TrainingReport) {
    let reuse = matches!(model.descriptor.task, TaskKind::Generative);
    let capacity = if reuse {
        // The decoder head already exists and is reused directly — capacity is
        // the architectural ceiling regardless of bootstrap size.
        architecture.base_capacity()
    } else {
        trained_capacity(architecture, train_samples)
    };
    let ramps: Vec<TrainedRamp> = sites
        .iter()
        .map(|&site| TrainedRamp { site, capacity })
        .collect();
    let total_params: u64 = sites.iter().map(|s| s.spec.params).sum();
    let model_params = model.descriptor.params_millions * 1e6;
    // Cost model: forward+backward over the bootstrap split touches only ramp
    // parameters (original weights frozen, losses back-propagated in parallel
    // across ramps). Scale: ~2 minutes per 10k samples per 1M ramp params,
    // floored at half a minute; zero when heads are reused.
    let estimated_minutes = if reuse {
        0.0
    } else {
        (0.5 + train_samples as f64 / 10_000.0 * (total_params as f64 / 1e6) * 2.0).min(30.0)
    };
    let report = TrainingReport {
        ramps: ramps.len(),
        total_params,
        param_fraction: total_params as f64 / model_params,
        train_samples,
        estimated_minutes,
        reused_existing_head: reuse,
    };
    (ramps, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::feasible_sites;
    use apparate_model::zoo;

    #[test]
    fn capacity_grows_with_data_and_saturates() {
        let arch = RampArchitecture::Lightweight;
        let none = trained_capacity(arch, 0);
        let some = trained_capacity(arch, 100);
        let lots = trained_capacity(arch, 2_000);
        let more = trained_capacity(arch, 20_000);
        assert!(none < some && some < lots);
        assert!((more - lots).abs() < 0.01, "capacity should saturate");
        assert!(lots <= arch.base_capacity() + 1e-9);
    }

    #[test]
    fn classification_training_produces_report() {
        let model = zoo::bert_base();
        let sites = feasible_sites(&model, RampArchitecture::Lightweight);
        let (ramps, report) = train_ramps(&model, &sites, RampArchitecture::Lightweight, 2_000);
        assert_eq!(ramps.len(), sites.len());
        assert!(!report.reused_existing_head);
        assert!(report.estimated_minutes > 0.0 && report.estimated_minutes <= 30.0);
        // §3.1: ramps comprise 0.01–3.50 % of model parameters; with every
        // feasible site ramped we should still stay in single-digit percent.
        assert!(
            report.param_fraction < 0.10,
            "fraction {}",
            report.param_fraction
        );
        for r in &ramps {
            assert!(r.capacity > 0.85 && r.capacity <= 1.0);
            let placement = r.placement();
            assert_eq!(placement.site, r.site.site);
        }
    }

    #[test]
    fn generative_models_reuse_heads_and_skip_training() {
        let model = zoo::t5_large();
        let sites = feasible_sites(&model, RampArchitecture::Lightweight);
        let (ramps, report) = train_ramps(&model, &sites, RampArchitecture::Lightweight, 10);
        assert!(report.reused_existing_head);
        assert_eq!(report.estimated_minutes, 0.0);
        // Capacity does not depend on the (tiny) bootstrap size.
        assert!(ramps[0].capacity >= RampArchitecture::Lightweight.base_capacity() - 1e-9);
    }

    #[test]
    fn heavier_architectures_cost_more_to_train() {
        let model = zoo::resnet(50);
        let light_sites = feasible_sites(&model, RampArchitecture::Lightweight);
        let heavy_sites = feasible_sites(&model, RampArchitecture::ConvHeavy);
        let (_, light) = train_ramps(&model, &light_sites, RampArchitecture::Lightweight, 2_000);
        let (_, heavy) = train_ramps(&model, &heavy_sites, RampArchitecture::ConvHeavy, 2_000);
        assert!(heavy.total_params > light.total_params);
    }
}
