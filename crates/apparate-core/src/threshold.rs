//! Accuracy-aware threshold tuning (§3.2, Algorithm 1).
//!
//! Because every input runs to the end of the model, the controller can
//! evaluate *any* candidate threshold configuration purely from recorded
//! observations: for each recorded request, find the earliest active ramp
//! whose entropy falls below its candidate threshold, check whether that
//! ramp's prediction agreed with the original model, and add up the latency
//! that exiting there would have saved. No extra inference is needed.
//!
//! The search itself is the paper's greedy hill climb: thresholds start at 0,
//! each round raises the single threshold that buys the most additional
//! latency savings per unit of additional accuracy loss, with
//! multiplicative-increase / multiplicative-decrease step sizing. A full grid
//! search is also provided for the Figure 10 comparison.

use crate::monitor::{RequestFeedback, TuningWindow};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Evaluation of one threshold configuration over a window of records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigEvaluation {
    /// Fraction of requests whose released result matches the original model.
    pub accuracy: f64,
    /// Mean latency saved per request, in µs (0 for non-exiting requests).
    pub mean_savings_us: f64,
    /// Fraction of requests that exit at some ramp.
    pub exit_rate: f64,
}

/// Evaluator over a recorded window.
pub struct ThresholdEvaluator<'a> {
    records: &'a [RequestFeedback],
    /// Latency saved when a request exits at ramp `i` instead of running to the
    /// end (µs), including the ramp overheads it still pays.
    savings_us: &'a [f64],
}

impl<'a> ThresholdEvaluator<'a> {
    /// Create an evaluator. `savings_us[i]` must correspond to ramp `i` of the
    /// recorded observations.
    pub fn new(records: &'a [RequestFeedback], savings_us: &'a [f64]) -> Self {
        ThresholdEvaluator {
            records,
            savings_us,
        }
    }

    /// Number of ramps being tuned.
    pub fn num_ramps(&self) -> usize {
        self.savings_us.len()
    }

    /// Evaluate a threshold configuration.
    pub fn evaluate(&self, thresholds: &[f64]) -> ConfigEvaluation {
        debug_assert_eq!(thresholds.len(), self.savings_us.len());
        if self.records.is_empty() {
            return ConfigEvaluation {
                accuracy: 1.0,
                mean_savings_us: 0.0,
                exit_rate: 0.0,
            };
        }
        let mut correct = 0usize;
        let mut exit_counts = vec![0u64; self.savings_us.len()];
        let mut exits = 0usize;
        for record in self.records {
            let exit = record
                .observations
                .iter()
                .zip(thresholds.iter())
                .position(|(obs, &thr)| thr > 0.0 && obs.entropy <= thr);
            match exit {
                Some(idx) => {
                    exits += 1;
                    if record.observations[idx].agrees {
                        correct += 1;
                    }
                    exit_counts[idx] += 1;
                }
                None => correct += 1,
            }
        }
        let n = self.records.len() as f64;
        ConfigEvaluation {
            accuracy: correct as f64 / n,
            mean_savings_us: mean_savings_from_counts(&exit_counts, self.savings_us, n),
            exit_rate: exits as f64 / n,
        }
    }
}

/// Fold per-ramp exit counts into a mean-savings figure. Summing in ramp
/// index order (not record order) makes the result independent of how the
/// window was traversed, so the incremental tuner reproduces the full
/// evaluator bit for bit.
pub(crate) fn mean_savings_from_counts(exit_counts: &[u64], savings_us: &[f64], n: f64) -> f64 {
    let mut savings = 0.0f64;
    for (count, per_exit) in exit_counts.iter().zip(savings_us.iter()) {
        if *count > 0 {
            savings += *count as f64 * per_exit;
        }
    }
    savings / n
}

/// Result of a tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// The selected thresholds.
    pub thresholds: Vec<f64>,
    /// Evaluation of the selected configuration on the tuning window.
    pub evaluation: ConfigEvaluation,
    /// Number of configuration evaluations performed.
    pub evaluations: usize,
    /// Wall-clock runtime of the search in microseconds (real time, not
    /// simulated — this is the controller CPU cost reported in Figure 10).
    pub runtime_us: f64,
}

/// Parameters of the greedy search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreedyParams {
    /// Maximum tolerated accuracy loss (e.g. 0.01).
    pub accuracy_loss_budget: f64,
    /// Initial per-ramp step size (0.1).
    pub initial_step: f64,
    /// Smallest step size (0.01).
    pub smallest_step: f64,
    /// Upper bound on any tuned threshold (1.0 = unconstrained). A cap below
    /// 1.0 guards against window censoring: when the recent window contains no
    /// hard inputs at a deep ramp, an unconstrained search saturates that
    /// ramp's threshold ("exit everything that reaches it") with zero
    /// in-window errors but unbounded exposure to workload drift.
    pub max_threshold: f64,
}

impl Default for GreedyParams {
    fn default() -> Self {
        GreedyParams {
            accuracy_loss_budget: 0.01,
            initial_step: 0.1,
            smallest_step: 0.01,
            max_threshold: 1.0,
        }
    }
}

/// Algorithm 1: greedy hill-climbing threshold tuning.
pub fn greedy_tune(evaluator: &ThresholdEvaluator<'_>, params: GreedyParams) -> TuningOutcome {
    // lint:allow(D001, reason = "wall-time metric only, never feeds a decision: runtime_us is reported in TuningOutcome and read by nothing")
    let start = Instant::now();
    let n = evaluator.num_ramps();
    let mut thresholds = vec![0.0f64; n];
    let mut steps = vec![params.initial_step; n];
    let mut evaluations = 0usize;
    let accuracy_floor = 1.0 - params.accuracy_loss_budget;
    let threshold_cap = params.max_threshold.clamp(0.0, 1.0);
    let mut current = evaluator.evaluate(&thresholds);
    evaluations += 1;
    // Safety bound far above anything the algorithm needs; prevents a
    // pathological window from spinning forever.
    let max_rounds = 10_000usize;
    for _ in 0..max_rounds {
        let mut best: Option<(usize, f64, ConfigEvaluation)> = None;
        let mut overstepped: Vec<usize> = Vec::new();
        let mut any_candidate = false;
        for ramp in 0..n {
            let proposed = (thresholds[ramp] + steps[ramp]).min(threshold_cap);
            if proposed <= thresholds[ramp] {
                continue; // already saturated at 1.0
            }
            any_candidate = true;
            let mut candidate = thresholds.clone();
            candidate[ramp] = proposed;
            let eval = evaluator.evaluate(&candidate);
            evaluations += 1;
            if eval.accuracy + 1e-12 < accuracy_floor {
                overstepped.push(ramp);
                continue;
            }
            let extra_savings = eval.mean_savings_us - current.mean_savings_us;
            let extra_loss = (current.accuracy - eval.accuracy).max(1e-6);
            let score = extra_savings / extra_loss;
            let better = match &best {
                None => true,
                Some((_, best_score, _)) => score > *best_score,
            };
            if better {
                best = Some((ramp, score, eval));
            }
        }
        if !any_candidate {
            break; // every threshold is saturated
        }
        match best {
            Some((ramp, _, eval)) => {
                thresholds[ramp] = (thresholds[ramp] + steps[ramp]).min(threshold_cap);
                steps[ramp] *= 2.0; // multiplicative increase on a promising path
                current = eval;
            }
            None => {
                if steps.iter().all(|&s| s <= params.smallest_step) {
                    break;
                }
                for &ramp in &overstepped {
                    steps[ramp] /= 2.0; // multiplicative decrease to hone the boundary
                }
                if overstepped.is_empty() {
                    break;
                }
            }
        }
    }
    TuningOutcome {
        thresholds,
        evaluation: current,
        evaluations,
        runtime_us: start.elapsed().as_secs_f64() * 1e6,
    }
}

/// A per-ramp slot column sorted by entropy, cached across tunes.
#[derive(Debug, Clone, Default)]
struct ColumnCache {
    /// Window instance and ramp-version the column was derived at.
    window_id: u64,
    version: u64,
    /// Window length the column was derived at.
    len: usize,
    built: bool,
    /// Physical slot indices, ascending by this ramp's entropy.
    slots: Vec<u32>,
}

/// The most recent tune, for whole-outcome reuse when nothing changed.
#[derive(Debug, Clone)]
struct CachedTune {
    window_id: u64,
    window_version: u64,
    params: GreedyParams,
    savings_us: Vec<f64>,
    outcome: TuningOutcome,
}

/// Incremental Algorithm 1: the same greedy hill climb as [`greedy_tune`],
/// restated over the columnar [`TuningWindow`] so each candidate is evaluated
/// as a *delta* against the current configuration instead of a full pass over
/// the window.
///
/// The trick: the greedy search only ever proposes raising a single ramp `r`
/// from threshold `t` to `p`. The only requests whose outcome can change are
/// those with `entropy_r ∈ (t, p]` that do not already exit at an earlier
/// ramp — found by two binary searches on a per-ramp entropy-sorted slot
/// column. The tuner keeps integer exit counts per ramp and per-slot exit
/// assignments for the configuration it has committed so far, applies the
/// delta to a scratch copy, and folds savings with the same ramp-index-order
/// sum as [`ThresholdEvaluator::evaluate`] — so every candidate evaluation is
/// **bit-identical** to the full evaluator's, and the search walks the exact
/// trajectory [`greedy_tune`] walks (including counting the same number of
/// `evaluations`). Equivalence is asserted against the full-retune oracle in
/// this module's tests and by the `tuning-equivalence` CI gate.
///
/// Incrementality across tunes:
/// * the sorted columns are cached keyed on the window's per-ramp versions —
///   only ramps whose recorded observations changed since the last tune are
///   re-sorted;
/// * the window's pre-aggregated per-ramp entropy histograms prove most
///   candidate ranges empty, skipping their scans outright (the evaluation
///   then *is* the current one — exactly what the full evaluator returns);
/// * a whole-outcome cache returns the previous result when the window,
///   savings, and parameters are unchanged (re-tune triggered by an accuracy
///   blip with no new records).
#[derive(Debug, Clone, Default)]
pub struct IncrementalTuner {
    columns: Vec<ColumnCache>,
    /// Per-slot exit assignment under the committed thresholds.
    current_exit: Vec<Option<usize>>,
    /// Per-ramp exit counts under the committed thresholds.
    exit_counts: Vec<u64>,
    /// Candidate scratch: `exit_counts` plus the candidate's delta.
    scratch_counts: Vec<u64>,
    last: Option<CachedTune>,
}

impl IncrementalTuner {
    /// Create a tuner with empty caches.
    pub fn new() -> IncrementalTuner {
        IncrementalTuner::default()
    }

    /// Re-derive the sorted slot columns for ramps whose window content
    /// changed since they were last built.
    fn ensure_columns(&mut self, window: &TuningWindow) {
        let n = window.num_ramps();
        self.columns.truncate(n);
        self.columns.resize_with(n, ColumnCache::default);
        for (r, col) in self.columns.iter_mut().enumerate() {
            if col.built
                && col.window_id == window.id()
                && col.version == window.ramp_version(r)
                && col.len == window.len()
            {
                continue;
            }
            col.slots.clear();
            col.slots.extend(0..window.len() as u32);
            col.slots.sort_unstable_by(|&a, &b| {
                window
                    .entropy(a as usize, r)
                    .total_cmp(&window.entropy(b as usize, r))
            });
            col.window_id = window.id();
            col.version = window.ramp_version(r);
            col.len = window.len();
            col.built = true;
        }
    }

    /// The sub-slice of ramp `r`'s sorted column affected by raising its
    /// threshold from `t` to `p`: slots with `entropy ∈ (t, p]`, or
    /// `entropy ∈ [0, p]` when `t == 0` (a zero threshold means the ramp was
    /// inactive, so even zero-entropy slots change outcome).
    fn affected_range(&self, window: &TuningWindow, r: usize, t: f64, p: f64) -> (usize, usize) {
        let col = &self.columns[r].slots;
        let lo = if t == 0.0 {
            0
        } else {
            col.partition_point(|&s| window.entropy(s as usize, r) <= t)
        };
        let hi = col.partition_point(|&s| window.entropy(s as usize, r) <= p);
        (lo, hi)
    }

    /// Evaluate raising ramp `r` from `t` to `p` as a delta against the
    /// committed state. Bit-identical to
    /// `ThresholdEvaluator::evaluate(candidate)` over the same records.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_candidate(
        &mut self,
        window: &TuningWindow,
        savings_us: &[f64],
        r: usize,
        t: f64,
        p: f64,
        correct: u64,
        exits: u64,
        current: ConfigEvaluation,
    ) -> ConfigEvaluation {
        let n = window.len() as f64;
        // The histogram precheck: no recorded entropy in the raised range
        // means no request changes outcome — the candidate evaluates to the
        // committed evaluation, floats and all.
        if window.range_provably_empty(r, t, p) {
            return current;
        }
        let (lo, hi) = self.affected_range(window, r, t, p);
        if lo == hi {
            return current;
        }
        self.scratch_counts.clear();
        self.scratch_counts.extend_from_slice(&self.exit_counts);
        let mut d_correct: i64 = 0;
        let mut d_exits: i64 = 0;
        for &s32 in &self.columns[r].slots[lo..hi] {
            let s = s32 as usize;
            match self.current_exit[s] {
                // Exits at an earlier ramp already; ramp r never sees it.
                Some(j) if j < r => {}
                // `j == r` is impossible (its entropy was above `t`), so the
                // request moves its exit from a later ramp `j` up to `r`.
                Some(j) => {
                    self.scratch_counts[j] -= 1;
                    self.scratch_counts[r] += 1;
                    d_correct += window.agrees(s, r) as i64 - window.agrees(s, j) as i64;
                }
                // Previously ran to completion (counted correct by
                // definition); now exits at `r`.
                None => {
                    self.scratch_counts[r] += 1;
                    d_exits += 1;
                    d_correct += window.agrees(s, r) as i64 - 1;
                }
            }
        }
        ConfigEvaluation {
            accuracy: (correct as i64 + d_correct) as f64 / n,
            mean_savings_us: mean_savings_from_counts(&self.scratch_counts, savings_us, n),
            exit_rate: (exits as i64 + d_exits) as f64 / n,
        }
    }

    /// Run Algorithm 1 over the window. Produces the same
    /// [`TuningOutcome`] (thresholds, evaluation, evaluation count) as
    /// `greedy_tune(&ThresholdEvaluator::new(&window.records(), savings_us), params)`,
    /// exactly — only `runtime_us` (read by nothing) differs.
    pub fn tune(
        &mut self,
        window: &TuningWindow,
        savings_us: &[f64],
        params: GreedyParams,
    ) -> TuningOutcome {
        // lint:allow(D001, reason = "wall-time metric only, never feeds a decision: runtime_us is reported in TuningOutcome and read by nothing")
        let start = Instant::now();
        if let Some(cache) = &self.last {
            if cache.window_id == window.id()
                && cache.window_version == window.version()
                && cache.params == params
                && cache.savings_us == savings_us
            {
                let mut outcome = cache.outcome.clone();
                outcome.runtime_us = start.elapsed().as_secs_f64() * 1e6;
                return outcome;
            }
        }
        let n = window.num_ramps();
        debug_assert_eq!(savings_us.len(), n);
        let len = window.len();
        self.ensure_columns(window);
        // Committed state for the all-zero starting configuration: nothing
        // exits, every request counts correct.
        self.current_exit.clear();
        self.current_exit.resize(len, None);
        self.exit_counts.clear();
        self.exit_counts.resize(n, 0);
        let mut correct = len as u64;
        let mut exits = 0u64;
        let mut thresholds = vec![0.0f64; n];
        let mut steps = vec![params.initial_step; n];
        let mut evaluations = 1usize;
        let accuracy_floor = 1.0 - params.accuracy_loss_budget;
        let threshold_cap = params.max_threshold.clamp(0.0, 1.0);
        // `ThresholdEvaluator::evaluate` on an empty window short-circuits to
        // this same constant; on a non-empty window the zero configuration
        // divides len/len = 1.0 exactly.
        let mut current = ConfigEvaluation {
            accuracy: 1.0,
            mean_savings_us: 0.0,
            exit_rate: 0.0,
        };
        let max_rounds = 10_000usize;
        for _ in 0..max_rounds {
            let mut best: Option<(usize, f64, ConfigEvaluation)> = None;
            let mut overstepped: Vec<usize> = Vec::new();
            let mut any_candidate = false;
            for ramp in 0..n {
                let proposed = (thresholds[ramp] + steps[ramp]).min(threshold_cap);
                if proposed <= thresholds[ramp] {
                    continue; // already saturated
                }
                any_candidate = true;
                let eval = if len == 0 {
                    current // empty window: every configuration evaluates alike
                } else {
                    self.evaluate_candidate(
                        window,
                        savings_us,
                        ramp,
                        thresholds[ramp],
                        proposed,
                        correct,
                        exits,
                        current,
                    )
                };
                evaluations += 1;
                if eval.accuracy + 1e-12 < accuracy_floor {
                    overstepped.push(ramp);
                    continue;
                }
                let extra_savings = eval.mean_savings_us - current.mean_savings_us;
                let extra_loss = (current.accuracy - eval.accuracy).max(1e-6);
                let score = extra_savings / extra_loss;
                let better = match &best {
                    None => true,
                    Some((_, best_score, _)) => score > *best_score,
                };
                if better {
                    best = Some((ramp, score, eval));
                }
            }
            if !any_candidate {
                break;
            }
            match best {
                Some((ramp, _, eval)) => {
                    let old = thresholds[ramp];
                    let new = (old + steps[ramp]).min(threshold_cap);
                    // Commit the winner: replay its delta into the live state.
                    if len > 0 {
                        let (lo, hi) = self.affected_range(window, ramp, old, new);
                        for i in lo..hi {
                            let s = self.columns[ramp].slots[i] as usize;
                            match self.current_exit[s] {
                                Some(j) if j < ramp => {}
                                Some(j) => {
                                    self.exit_counts[j] -= 1;
                                    self.exit_counts[ramp] += 1;
                                    correct = (correct as i64 + window.agrees(s, ramp) as i64
                                        - window.agrees(s, j) as i64)
                                        as u64;
                                    self.current_exit[s] = Some(ramp);
                                }
                                None => {
                                    self.exit_counts[ramp] += 1;
                                    exits += 1;
                                    correct =
                                        (correct as i64 + window.agrees(s, ramp) as i64 - 1) as u64;
                                    self.current_exit[s] = Some(ramp);
                                }
                            }
                        }
                    }
                    thresholds[ramp] = new;
                    steps[ramp] *= 2.0;
                    current = eval;
                }
                None => {
                    if steps.iter().all(|&s| s <= params.smallest_step) {
                        break;
                    }
                    for &ramp in &overstepped {
                        steps[ramp] /= 2.0;
                    }
                    if overstepped.is_empty() {
                        break;
                    }
                }
            }
        }
        let outcome = TuningOutcome {
            thresholds,
            evaluation: current,
            evaluations,
            runtime_us: start.elapsed().as_secs_f64() * 1e6,
        };
        self.last = Some(CachedTune {
            window_id: window.id(),
            window_version: window.version(),
            params,
            savings_us: savings_us.to_vec(),
            outcome: outcome.clone(),
        });
        outcome
    }
}

/// Exhaustive grid search over thresholds in `{0, step, 2·step, …, 1}` per
/// ramp; the Figure 10 baseline. Cost is `O((1/step + 1)^R)` evaluations.
pub fn grid_tune(
    evaluator: &ThresholdEvaluator<'_>,
    accuracy_loss_budget: f64,
    step: f64,
) -> TuningOutcome {
    // lint:allow(D001, reason = "wall-time metric only, never feeds a decision: runtime_us is reported in TuningOutcome and read by nothing")
    let start = Instant::now();
    let n = evaluator.num_ramps();
    let levels: Vec<f64> = {
        let mut v = Vec::new();
        let mut t = 0.0f64;
        while t < 1.0 + 1e-9 {
            v.push(t.min(1.0));
            t += step;
        }
        v
    };
    let accuracy_floor = 1.0 - accuracy_loss_budget;
    let mut best_thresholds = vec![0.0f64; n];
    let mut best_eval = evaluator.evaluate(&best_thresholds);
    let mut evaluations = 1usize;
    let mut indices = vec![0usize; n];
    loop {
        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == n {
                let outcome = TuningOutcome {
                    thresholds: best_thresholds,
                    evaluation: best_eval,
                    evaluations,
                    runtime_us: start.elapsed().as_secs_f64() * 1e6,
                };
                return outcome;
            }
            indices[pos] += 1;
            if indices[pos] < levels.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
        let candidate: Vec<f64> = indices.iter().map(|&i| levels[i]).collect();
        let eval = evaluator.evaluate(&candidate);
        evaluations += 1;
        if eval.accuracy + 1e-12 >= accuracy_floor
            && eval.mean_savings_us > best_eval.mean_savings_us
        {
            best_eval = eval;
            best_thresholds = candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_exec::RampObservation;
    use apparate_sim::DeterministicRng;

    /// Build a synthetic window with two ramps whose entropies fall with
    /// difficulty; ramp 1 is deeper (more accurate, lower entropy).
    fn window(n: usize, seed: u64) -> Vec<RequestFeedback> {
        let rng = DeterministicRng::new(seed);
        (0..n)
            .map(|i| {
                let difficulty = rng.unit_draw(&[i as u64, 1]);
                let noise = rng.normal_draw(&[i as u64, 2]) * 0.05;
                let shallow_margin = 0.55 - difficulty + noise;
                let deep_margin = 0.85 - difficulty + noise;
                let obs = |margin: f64| RampObservation {
                    entropy: (1.0 / (1.0 + (margin / 0.1).exp())).clamp(0.0, 1.0),
                    agrees: margin > 0.0,
                };
                RequestFeedback {
                    observations: vec![obs(shallow_margin), obs(deep_margin)],
                    exited: None,
                    correct: true,
                    batch_size: 1,
                }
            })
            .collect()
    }

    const SAVINGS: [f64; 2] = [10_000.0, 4_000.0];

    #[test]
    fn zero_thresholds_never_exit() {
        let records = window(200, 1);
        let eval = ThresholdEvaluator::new(&records, &SAVINGS).evaluate(&[0.0, 0.0]);
        assert_eq!(eval.exit_rate, 0.0);
        assert_eq!(eval.accuracy, 1.0);
        assert_eq!(eval.mean_savings_us, 0.0);
    }

    #[test]
    fn evaluation_is_monotone_in_thresholds() {
        let records = window(400, 2);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let mut last_exit = 0.0;
        let mut last_acc = 1.0;
        for thr in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let eval = evaluator.evaluate(&[thr, thr]);
            assert!(eval.exit_rate >= last_exit - 1e-9);
            assert!(eval.accuracy <= last_acc + 1e-9);
            last_exit = eval.exit_rate;
            last_acc = eval.accuracy;
        }
    }

    #[test]
    fn greedy_respects_accuracy_budget() {
        let records = window(500, 3);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let outcome = greedy_tune(&evaluator, GreedyParams::default());
        assert!(outcome.evaluation.accuracy >= 0.99 - 1e-9);
        assert!(
            outcome.evaluation.mean_savings_us > 0.0,
            "greedy should find some savings"
        );
        assert!(outcome.thresholds.iter().all(|&t| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn greedy_matches_grid_closely_but_much_cheaper() {
        let records = window(300, 4);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let greedy = greedy_tune(&evaluator, GreedyParams::default());
        let grid = grid_tune(&evaluator, 0.01, 0.1);
        assert!(grid.evaluation.accuracy >= 0.99 - 1e-9);
        // §3.2: greedy is within 0–3.8 % of the optimal latency savings.
        assert!(
            greedy.evaluation.mean_savings_us >= grid.evaluation.mean_savings_us * 0.9,
            "greedy {} vs grid {}",
            greedy.evaluation.mean_savings_us,
            grid.evaluation.mean_savings_us
        );
        assert!(
            greedy.evaluations * 2 < grid.evaluations,
            "greedy {} evals vs grid {}",
            greedy.evaluations,
            grid.evaluations
        );
    }

    #[test]
    fn tighter_budget_gives_fewer_savings() {
        let records = window(400, 5);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let loose = greedy_tune(
            &evaluator,
            GreedyParams {
                accuracy_loss_budget: 0.05,
                ..Default::default()
            },
        );
        let tight = greedy_tune(
            &evaluator,
            GreedyParams {
                accuracy_loss_budget: 0.005,
                ..Default::default()
            },
        );
        assert!(loose.evaluation.mean_savings_us >= tight.evaluation.mean_savings_us);
        assert!(tight.evaluation.accuracy >= 0.995 - 1e-9);
    }

    #[test]
    fn empty_window_is_benign() {
        let records: Vec<RequestFeedback> = Vec::new();
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let outcome = greedy_tune(&evaluator, GreedyParams::default());
        assert_eq!(outcome.evaluation.accuracy, 1.0);
        assert_eq!(outcome.evaluation.mean_savings_us, 0.0);
    }

    #[test]
    fn grid_search_explores_the_full_lattice() {
        let records = window(50, 6);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let grid = grid_tune(&evaluator, 0.01, 0.25);
        // 5 levels per ramp (0, .25, .5, .75, 1.0) over 2 ramps = 25 configs.
        assert_eq!(grid.evaluations, 25);
    }

    /// Like [`window`] but with `k` ramps at staggered depths.
    fn window_k(n: usize, seed: u64, k: usize) -> Vec<RequestFeedback> {
        let rng = DeterministicRng::new(seed);
        (0..n)
            .map(|i| {
                let difficulty = rng.unit_draw(&[i as u64, 1]);
                let noise = rng.normal_draw(&[i as u64, 2]) * 0.05;
                RequestFeedback {
                    observations: (0..k)
                        .map(|r| {
                            let margin = 0.45 + 0.12 * r as f64 - difficulty + noise;
                            RampObservation {
                                entropy: (1.0 / (1.0 + (margin / 0.1).exp())).clamp(0.0, 1.0),
                                agrees: margin > 0.0,
                            }
                        })
                        .collect(),
                    exited: None,
                    correct: true,
                    batch_size: 1,
                }
            })
            .collect()
    }

    /// Load records into a `num_ramps`-wide columnar window (capacity =
    /// record count).
    fn window_of(records: &[RequestFeedback], num_ramps: usize) -> crate::monitor::TuningWindow {
        let mut w = crate::monitor::TuningWindow::new(num_ramps, records.len().max(1));
        for r in records {
            w.push(&r.observations, r.exited, r.correct, r.batch_size);
        }
        w
    }

    /// The incremental tuner must reproduce the full-retune oracle *exactly*:
    /// same thresholds, same (bit-identical) evaluation, same evaluation
    /// count.
    fn assert_matches_oracle(
        tuner: &mut IncrementalTuner,
        records: &[RequestFeedback],
        savings: &[f64],
        params: GreedyParams,
    ) {
        let w = window_of(records, savings.len());
        let fast = tuner.tune(&w, savings, params);
        let oracle = greedy_tune(&ThresholdEvaluator::new(records, savings), params);
        assert_eq!(fast.thresholds, oracle.thresholds);
        assert_eq!(fast.evaluation, oracle.evaluation);
        assert_eq!(fast.evaluations, oracle.evaluations);
    }

    #[test]
    fn incremental_matches_oracle_on_every_fixture() {
        let mut tuner = IncrementalTuner::new();
        for seed in [1, 2, 3, 4, 5, 7, 11] {
            for n in [1, 17, 200, 500] {
                for budget in [0.005, 0.01, 0.05] {
                    for cap in [0.2, 0.35, 1.0] {
                        let params = GreedyParams {
                            accuracy_loss_budget: budget,
                            max_threshold: cap,
                            ..Default::default()
                        };
                        let records = window(n, seed);
                        assert_matches_oracle(&mut tuner, &records, &SAVINGS, params);
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_matches_oracle_with_many_ramps() {
        let savings = [20_000.0, 14_000.0, 9_000.0, 5_000.0, 2_000.0];
        let mut tuner = IncrementalTuner::new();
        for seed in [3, 8, 21] {
            let records = window_k(400, seed, savings.len());
            assert_matches_oracle(&mut tuner, &records, &savings, GreedyParams::default());
        }
    }

    #[test]
    fn incremental_matches_oracle_on_empty_window() {
        let mut tuner = IncrementalTuner::new();
        assert_matches_oracle(&mut tuner, &[], &SAVINGS, GreedyParams::default());
    }

    #[test]
    fn incremental_tuner_caches_unchanged_windows() {
        let records = window(300, 9);
        let w = window_of(&records, SAVINGS.len());
        let mut tuner = IncrementalTuner::new();
        let first = tuner.tune(&w, &SAVINGS, GreedyParams::default());
        let again = tuner.tune(&w, &SAVINGS, GreedyParams::default());
        assert_eq!(first.thresholds, again.thresholds);
        assert_eq!(first.evaluation, again.evaluation);
        assert_eq!(first.evaluations, again.evaluations);
        // Changing the parameters must bypass the cache and still match the
        // oracle.
        let tight = GreedyParams {
            accuracy_loss_budget: 0.002,
            ..Default::default()
        };
        let fast = tuner.tune(&w, &SAVINGS, tight);
        let oracle = greedy_tune(&ThresholdEvaluator::new(&records, &SAVINGS), tight);
        assert_eq!(fast.thresholds, oracle.thresholds);
        assert_eq!(fast.evaluation, oracle.evaluation);
    }

    #[test]
    fn incremental_tuner_tracks_a_sliding_window() {
        // One tuner, one ring: keep pushing past capacity and re-tune after
        // each eviction burst — every tune must match a fresh oracle over the
        // ring's current contents.
        let stream = window(600, 13);
        let mut w = crate::monitor::TuningWindow::new(2, 128);
        let mut tuner = IncrementalTuner::new();
        for (i, r) in stream.iter().enumerate() {
            w.push(&r.observations, r.exited, r.correct, r.batch_size);
            if i % 150 == 149 {
                let fast = tuner.tune(&w, &SAVINGS, GreedyParams::default());
                let records = w.records();
                let oracle = greedy_tune(
                    &ThresholdEvaluator::new(&records, &SAVINGS),
                    Default::default(),
                );
                assert_eq!(fast.thresholds, oracle.thresholds);
                assert_eq!(fast.evaluation, oracle.evaluation);
                assert_eq!(fast.evaluations, oracle.evaluations);
            }
        }
    }

    #[test]
    fn incremental_tuner_survives_ramp_set_changes() {
        // Re-using one tuner across windows of different widths (a ramp-set
        // change clears the window) must not leave stale columns behind.
        let mut tuner = IncrementalTuner::new();
        let wide = window_k(200, 5, 4);
        let savings4 = [12_000.0, 8_000.0, 5_000.0, 2_500.0];
        assert_matches_oracle(&mut tuner, &wide, &savings4, GreedyParams::default());
        let narrow = window(200, 5);
        assert_matches_oracle(&mut tuner, &narrow, &SAVINGS, GreedyParams::default());
    }

    #[test]
    fn greedy_prefers_the_more_valuable_ramp() {
        // Savings strongly favour ramp 0; with both ramps equally accurate the
        // search should raise ramp 0's threshold at least as far as ramp 1's.
        let records = window(400, 7);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let outcome = greedy_tune(
            &evaluator,
            GreedyParams {
                accuracy_loss_budget: 0.02,
                ..Default::default()
            },
        );
        assert!(outcome.thresholds[0] >= outcome.thresholds[1] * 0.5);
    }
}
