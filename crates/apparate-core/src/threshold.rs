//! Accuracy-aware threshold tuning (§3.2, Algorithm 1).
//!
//! Because every input runs to the end of the model, the controller can
//! evaluate *any* candidate threshold configuration purely from recorded
//! observations: for each recorded request, find the earliest active ramp
//! whose entropy falls below its candidate threshold, check whether that
//! ramp's prediction agreed with the original model, and add up the latency
//! that exiting there would have saved. No extra inference is needed.
//!
//! The search itself is the paper's greedy hill climb: thresholds start at 0,
//! each round raises the single threshold that buys the most additional
//! latency savings per unit of additional accuracy loss, with
//! multiplicative-increase / multiplicative-decrease step sizing. A full grid
//! search is also provided for the Figure 10 comparison.

use crate::monitor::RequestFeedback;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Evaluation of one threshold configuration over a window of records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigEvaluation {
    /// Fraction of requests whose released result matches the original model.
    pub accuracy: f64,
    /// Mean latency saved per request, in µs (0 for non-exiting requests).
    pub mean_savings_us: f64,
    /// Fraction of requests that exit at some ramp.
    pub exit_rate: f64,
}

/// Evaluator over a recorded window.
pub struct ThresholdEvaluator<'a> {
    records: &'a [RequestFeedback],
    /// Latency saved when a request exits at ramp `i` instead of running to the
    /// end (µs), including the ramp overheads it still pays.
    savings_us: &'a [f64],
}

impl<'a> ThresholdEvaluator<'a> {
    /// Create an evaluator. `savings_us[i]` must correspond to ramp `i` of the
    /// recorded observations.
    pub fn new(records: &'a [RequestFeedback], savings_us: &'a [f64]) -> Self {
        ThresholdEvaluator {
            records,
            savings_us,
        }
    }

    /// Number of ramps being tuned.
    pub fn num_ramps(&self) -> usize {
        self.savings_us.len()
    }

    /// Evaluate a threshold configuration.
    pub fn evaluate(&self, thresholds: &[f64]) -> ConfigEvaluation {
        debug_assert_eq!(thresholds.len(), self.savings_us.len());
        if self.records.is_empty() {
            return ConfigEvaluation {
                accuracy: 1.0,
                mean_savings_us: 0.0,
                exit_rate: 0.0,
            };
        }
        let mut correct = 0usize;
        let mut savings = 0.0f64;
        let mut exits = 0usize;
        for record in self.records {
            let exit = record
                .observations
                .iter()
                .zip(thresholds.iter())
                .position(|(obs, &thr)| thr > 0.0 && obs.entropy <= thr);
            match exit {
                Some(idx) => {
                    exits += 1;
                    if record.observations[idx].agrees {
                        correct += 1;
                    }
                    savings += self.savings_us[idx];
                }
                None => correct += 1,
            }
        }
        let n = self.records.len() as f64;
        ConfigEvaluation {
            accuracy: correct as f64 / n,
            mean_savings_us: savings / n,
            exit_rate: exits as f64 / n,
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// The selected thresholds.
    pub thresholds: Vec<f64>,
    /// Evaluation of the selected configuration on the tuning window.
    pub evaluation: ConfigEvaluation,
    /// Number of configuration evaluations performed.
    pub evaluations: usize,
    /// Wall-clock runtime of the search in microseconds (real time, not
    /// simulated — this is the controller CPU cost reported in Figure 10).
    pub runtime_us: f64,
}

/// Parameters of the greedy search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GreedyParams {
    /// Maximum tolerated accuracy loss (e.g. 0.01).
    pub accuracy_loss_budget: f64,
    /// Initial per-ramp step size (0.1).
    pub initial_step: f64,
    /// Smallest step size (0.01).
    pub smallest_step: f64,
    /// Upper bound on any tuned threshold (1.0 = unconstrained). A cap below
    /// 1.0 guards against window censoring: when the recent window contains no
    /// hard inputs at a deep ramp, an unconstrained search saturates that
    /// ramp's threshold ("exit everything that reaches it") with zero
    /// in-window errors but unbounded exposure to workload drift.
    pub max_threshold: f64,
}

impl Default for GreedyParams {
    fn default() -> Self {
        GreedyParams {
            accuracy_loss_budget: 0.01,
            initial_step: 0.1,
            smallest_step: 0.01,
            max_threshold: 1.0,
        }
    }
}

/// Algorithm 1: greedy hill-climbing threshold tuning.
pub fn greedy_tune(evaluator: &ThresholdEvaluator<'_>, params: GreedyParams) -> TuningOutcome {
    // lint:allow(D001, reason = "wall-time metric only, never feeds a decision: runtime_us is reported in TuningOutcome and read by nothing")
    let start = Instant::now();
    let n = evaluator.num_ramps();
    let mut thresholds = vec![0.0f64; n];
    let mut steps = vec![params.initial_step; n];
    let mut evaluations = 0usize;
    let accuracy_floor = 1.0 - params.accuracy_loss_budget;
    let threshold_cap = params.max_threshold.clamp(0.0, 1.0);
    let mut current = evaluator.evaluate(&thresholds);
    evaluations += 1;
    // Safety bound far above anything the algorithm needs; prevents a
    // pathological window from spinning forever.
    let max_rounds = 10_000usize;
    for _ in 0..max_rounds {
        let mut best: Option<(usize, f64, ConfigEvaluation)> = None;
        let mut overstepped: Vec<usize> = Vec::new();
        let mut any_candidate = false;
        for ramp in 0..n {
            let proposed = (thresholds[ramp] + steps[ramp]).min(threshold_cap);
            if proposed <= thresholds[ramp] {
                continue; // already saturated at 1.0
            }
            any_candidate = true;
            let mut candidate = thresholds.clone();
            candidate[ramp] = proposed;
            let eval = evaluator.evaluate(&candidate);
            evaluations += 1;
            if eval.accuracy + 1e-12 < accuracy_floor {
                overstepped.push(ramp);
                continue;
            }
            let extra_savings = eval.mean_savings_us - current.mean_savings_us;
            let extra_loss = (current.accuracy - eval.accuracy).max(1e-6);
            let score = extra_savings / extra_loss;
            let better = match &best {
                None => true,
                Some((_, best_score, _)) => score > *best_score,
            };
            if better {
                best = Some((ramp, score, eval));
            }
        }
        if !any_candidate {
            break; // every threshold is saturated
        }
        match best {
            Some((ramp, _, eval)) => {
                thresholds[ramp] = (thresholds[ramp] + steps[ramp]).min(threshold_cap);
                steps[ramp] *= 2.0; // multiplicative increase on a promising path
                current = eval;
            }
            None => {
                if steps.iter().all(|&s| s <= params.smallest_step) {
                    break;
                }
                for &ramp in &overstepped {
                    steps[ramp] /= 2.0; // multiplicative decrease to hone the boundary
                }
                if overstepped.is_empty() {
                    break;
                }
            }
        }
    }
    TuningOutcome {
        thresholds,
        evaluation: current,
        evaluations,
        runtime_us: start.elapsed().as_secs_f64() * 1e6,
    }
}

/// Exhaustive grid search over thresholds in `{0, step, 2·step, …, 1}` per
/// ramp; the Figure 10 baseline. Cost is `O((1/step + 1)^R)` evaluations.
pub fn grid_tune(
    evaluator: &ThresholdEvaluator<'_>,
    accuracy_loss_budget: f64,
    step: f64,
) -> TuningOutcome {
    // lint:allow(D001, reason = "wall-time metric only, never feeds a decision: runtime_us is reported in TuningOutcome and read by nothing")
    let start = Instant::now();
    let n = evaluator.num_ramps();
    let levels: Vec<f64> = {
        let mut v = Vec::new();
        let mut t = 0.0f64;
        while t < 1.0 + 1e-9 {
            v.push(t.min(1.0));
            t += step;
        }
        v
    };
    let accuracy_floor = 1.0 - accuracy_loss_budget;
    let mut best_thresholds = vec![0.0f64; n];
    let mut best_eval = evaluator.evaluate(&best_thresholds);
    let mut evaluations = 1usize;
    let mut indices = vec![0usize; n];
    loop {
        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == n {
                let outcome = TuningOutcome {
                    thresholds: best_thresholds,
                    evaluation: best_eval,
                    evaluations,
                    runtime_us: start.elapsed().as_secs_f64() * 1e6,
                };
                return outcome;
            }
            indices[pos] += 1;
            if indices[pos] < levels.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
        let candidate: Vec<f64> = indices.iter().map(|&i| levels[i]).collect();
        let eval = evaluator.evaluate(&candidate);
        evaluations += 1;
        if eval.accuracy + 1e-12 >= accuracy_floor
            && eval.mean_savings_us > best_eval.mean_savings_us
        {
            best_eval = eval;
            best_thresholds = candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_exec::RampObservation;
    use apparate_sim::DeterministicRng;

    /// Build a synthetic window with two ramps whose entropies fall with
    /// difficulty; ramp 1 is deeper (more accurate, lower entropy).
    fn window(n: usize, seed: u64) -> Vec<RequestFeedback> {
        let rng = DeterministicRng::new(seed);
        (0..n)
            .map(|i| {
                let difficulty = rng.unit_draw(&[i as u64, 1]);
                let noise = rng.normal_draw(&[i as u64, 2]) * 0.05;
                let shallow_margin = 0.55 - difficulty + noise;
                let deep_margin = 0.85 - difficulty + noise;
                let obs = |margin: f64| RampObservation {
                    entropy: (1.0 / (1.0 + (margin / 0.1).exp())).clamp(0.0, 1.0),
                    agrees: margin > 0.0,
                };
                RequestFeedback {
                    observations: vec![obs(shallow_margin), obs(deep_margin)],
                    exited: None,
                    correct: true,
                    batch_size: 1,
                }
            })
            .collect()
    }

    const SAVINGS: [f64; 2] = [10_000.0, 4_000.0];

    #[test]
    fn zero_thresholds_never_exit() {
        let records = window(200, 1);
        let eval = ThresholdEvaluator::new(&records, &SAVINGS).evaluate(&[0.0, 0.0]);
        assert_eq!(eval.exit_rate, 0.0);
        assert_eq!(eval.accuracy, 1.0);
        assert_eq!(eval.mean_savings_us, 0.0);
    }

    #[test]
    fn evaluation_is_monotone_in_thresholds() {
        let records = window(400, 2);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let mut last_exit = 0.0;
        let mut last_acc = 1.0;
        for thr in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let eval = evaluator.evaluate(&[thr, thr]);
            assert!(eval.exit_rate >= last_exit - 1e-9);
            assert!(eval.accuracy <= last_acc + 1e-9);
            last_exit = eval.exit_rate;
            last_acc = eval.accuracy;
        }
    }

    #[test]
    fn greedy_respects_accuracy_budget() {
        let records = window(500, 3);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let outcome = greedy_tune(&evaluator, GreedyParams::default());
        assert!(outcome.evaluation.accuracy >= 0.99 - 1e-9);
        assert!(
            outcome.evaluation.mean_savings_us > 0.0,
            "greedy should find some savings"
        );
        assert!(outcome.thresholds.iter().all(|&t| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn greedy_matches_grid_closely_but_much_cheaper() {
        let records = window(300, 4);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let greedy = greedy_tune(&evaluator, GreedyParams::default());
        let grid = grid_tune(&evaluator, 0.01, 0.1);
        assert!(grid.evaluation.accuracy >= 0.99 - 1e-9);
        // §3.2: greedy is within 0–3.8 % of the optimal latency savings.
        assert!(
            greedy.evaluation.mean_savings_us >= grid.evaluation.mean_savings_us * 0.9,
            "greedy {} vs grid {}",
            greedy.evaluation.mean_savings_us,
            grid.evaluation.mean_savings_us
        );
        assert!(
            greedy.evaluations * 2 < grid.evaluations,
            "greedy {} evals vs grid {}",
            greedy.evaluations,
            grid.evaluations
        );
    }

    #[test]
    fn tighter_budget_gives_fewer_savings() {
        let records = window(400, 5);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let loose = greedy_tune(
            &evaluator,
            GreedyParams {
                accuracy_loss_budget: 0.05,
                ..Default::default()
            },
        );
        let tight = greedy_tune(
            &evaluator,
            GreedyParams {
                accuracy_loss_budget: 0.005,
                ..Default::default()
            },
        );
        assert!(loose.evaluation.mean_savings_us >= tight.evaluation.mean_savings_us);
        assert!(tight.evaluation.accuracy >= 0.995 - 1e-9);
    }

    #[test]
    fn empty_window_is_benign() {
        let records: Vec<RequestFeedback> = Vec::new();
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let outcome = greedy_tune(&evaluator, GreedyParams::default());
        assert_eq!(outcome.evaluation.accuracy, 1.0);
        assert_eq!(outcome.evaluation.mean_savings_us, 0.0);
    }

    #[test]
    fn grid_search_explores_the_full_lattice() {
        let records = window(50, 6);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let grid = grid_tune(&evaluator, 0.01, 0.25);
        // 5 levels per ramp (0, .25, .5, .75, 1.0) over 2 ramps = 25 configs.
        assert_eq!(grid.evaluations, 25);
    }

    #[test]
    fn greedy_prefers_the_more_valuable_ramp() {
        // Savings strongly favour ramp 0; with both ramps equally accurate the
        // search should raise ramp 0's threshold at least as far as ramp 1's.
        let records = window(400, 7);
        let evaluator = ThresholdEvaluator::new(&records, &SAVINGS);
        let outcome = greedy_tune(
            &evaluator,
            GreedyParams {
                accuracy_loss_budget: 0.02,
                ..Default::default()
            },
        );
        assert!(outcome.thresholds[0] >= outcome.thresholds[1] * 0.5);
    }
}
