//! Latency-focused ramp adjustment (§3.3, Algorithm 2, Figure 11).
//!
//! Periodically (every 128 samples by default) Apparate re-evaluates the set
//! of active ramps:
//!
//! * each active ramp gets a **utility** = latency saved by the inputs that
//!   exited there − latency it added to inputs it could not exit;
//! * negative-utility ramps are deactivated (after the controller has given a
//!   fast threshold-tuning round a chance to rescue them), and a replacement
//!   is trialled from the region after the latest positive ramp, chosen by an
//!   **upper-bound utility** derived from the deactivated ramps' profiled exit
//!   rates (a candidate cannot exit more than the inputs that would have gone
//!   on to exit at the deactivated ramps downstream of it);
//! * if every ramp is positive, a **low-risk probe** either adds a ramp just
//!   before the best ramp (budget permitting) or shifts the worst ramp one
//!   feasible position earlier.

use serde::{Deserialize, Serialize};

/// Per-ramp utility over the last adjustment window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampUtility {
    /// Total latency saved by requests that exited at this ramp (µs).
    pub savings_us: f64,
    /// Total latency this ramp added to requests it could not exit (µs).
    pub overhead_us: f64,
}

impl RampUtility {
    /// Net utility (savings − overhead).
    pub fn net_us(&self) -> f64 {
        self.savings_us - self.overhead_us
    }
}

/// Compute per-active-ramp utilities from windowed exit statistics.
///
/// * `exit_counts[i]` — requests that exited at active ramp `i` in the window.
/// * `window_requests` — total requests in the window.
/// * `per_exit_saving_us[i]` — latency saved when one request exits at ramp `i`.
/// * `per_request_overhead_us[i]` — latency ramp `i` adds to one request that
///   passes it without exiting there (its own evaluation cost).
///
/// A request "passes" ramp `i` without exiting if it exited at a strictly
/// later ramp or not at all; requests that exited earlier already had their
/// results released, so ramp `i` adds nothing to their response latency.
pub fn ramp_utilities(
    exit_counts: &[u64],
    window_requests: u64,
    per_exit_saving_us: &[f64],
    per_request_overhead_us: &[f64],
) -> Vec<RampUtility> {
    let n = exit_counts.len();
    debug_assert_eq!(per_exit_saving_us.len(), n);
    debug_assert_eq!(per_request_overhead_us.len(), n);
    let mut utilities = Vec::with_capacity(n);
    // Requests that exited at or before ramp i.
    let mut exited_up_to = 0u64;
    for i in 0..n {
        let exits_here = exit_counts[i];
        let savings = exits_here as f64 * per_exit_saving_us[i];
        exited_up_to += exits_here;
        let passed_without_exit = window_requests.saturating_sub(exited_up_to);
        let overhead = passed_without_exit as f64 * per_request_overhead_us[i];
        utilities.push(RampUtility {
            savings_us: savings,
            overhead_us: overhead,
        });
    }
    utilities
}

/// What the adjustment round decided, for reporting and tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdjustAction {
    /// Negative ramps were removed and (optionally) a candidate was added.
    ReplacedNegative {
        /// Site indices that were deactivated.
        deactivated: Vec<usize>,
        /// Site index of the trial ramp added, if any had positive upper-bound utility.
        added: Option<usize>,
    },
    /// All ramps were positive and spare budget allowed adding an earlier ramp.
    ProbedEarlier {
        /// Site index of the added ramp.
        added: usize,
    },
    /// All ramps were positive, no budget: the lowest-utility ramp moved one
    /// position earlier.
    ShiftedEarlier {
        /// Site index vacated.
        from: usize,
        /// Site index now occupied.
        to: usize,
    },
    /// Nothing changed.
    NoChange,
}

/// Outcome of one adjustment round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdjustDecision {
    /// The new active set, as sorted feasible-site indices.
    pub new_active: Vec<usize>,
    /// Site indices newly added this round (their thresholds must start at 0).
    pub newly_added: Vec<usize>,
    /// What happened.
    pub action: AdjustAction,
}

/// Inputs to one adjustment round.
#[derive(Debug, Clone)]
pub struct AdjustInput<'a> {
    /// Number of feasible sites (site indices are `0..num_sites`).
    pub num_sites: usize,
    /// Currently active site indices, sorted ascending.
    pub active_sites: &'a [usize],
    /// Net utility (µs) of each active ramp, parallel to `active_sites`.
    pub utilities_us: &'a [f64],
    /// Windowed exit rate of each active ramp, parallel to `active_sites`.
    pub exit_rates: &'a [f64],
    /// Requests in the adjustment window.
    pub window_requests: u64,
    /// Latency saved by one exit at a given site index (µs).
    pub per_exit_saving_us: &'a [f64],
    /// Per-request overhead of a ramp (µs); identical across sites for a given
    /// architecture, so a single scalar.
    pub per_request_overhead_us: f64,
    /// Maximum simultaneously active ramps (the budget).
    pub max_active: usize,
}

/// Run one ramp-adjustment round (Algorithm 2).
pub fn adjust_ramps(input: &AdjustInput<'_>) -> AdjustDecision {
    let n = input.active_sites.len();
    debug_assert_eq!(input.utilities_us.len(), n);
    debug_assert_eq!(input.exit_rates.len(), n);
    debug_assert_eq!(input.per_exit_saving_us.len(), input.num_sites);
    if n == 0 {
        return AdjustDecision {
            new_active: Vec::new(),
            newly_added: Vec::new(),
            action: AdjustAction::NoChange,
        };
    }
    let negative: Vec<usize> = (0..n).filter(|&i| input.utilities_us[i] < 0.0).collect();
    if !negative.is_empty() {
        return replace_negative(input, &negative);
    }
    probe_earlier(input)
}

/// Handle the negative-utility branch: deactivate, pick a trial candidate from
/// the intervals after the latest positive ramp using upper-bound exit rates.
fn replace_negative(input: &AdjustInput<'_>, negative: &[usize]) -> AdjustDecision {
    let deactivated_sites: Vec<usize> = negative.iter().map(|&i| input.active_sites[i]).collect();
    let retained: Vec<usize> = (0..input.active_sites.len())
        .filter(|i| !negative.contains(i))
        .map(|i| input.active_sites[i])
        .collect();
    // Latest positive ramp P (by site index). If everything was negative, fall
    // back to "before the first feasible site".
    let latest_positive: Option<usize> = retained.iter().copied().max();
    let start = latest_positive.map(|p| p + 1).unwrap_or(0);

    // Deactivated ramps after P partition (start..num_sites) into intervals.
    let mut boundaries: Vec<usize> = deactivated_sites
        .iter()
        .copied()
        .filter(|&s| s >= start)
        .collect();
    boundaries.sort_unstable();
    // Exit rates of deactivated ramps, keyed by site index, for the bound.
    let deactivated_rate = |site: usize| -> f64 {
        input
            .active_sites
            .iter()
            .position(|&s| s == site)
            .map(|i| input.exit_rates[i])
            .unwrap_or(0.0)
    };

    // Build the intervals [start, b0), [b0+1, b1), ..., [b_last+1, num_sites)
    // together with the deactivated ramp that closes each interval (if any).
    // The upper-bound exit rate of candidates inside an interval is the
    // profiled exit rate of that closing ramp plus all earlier deactivations —
    // inputs that would have reached the closing ramp and might have exited
    // there (Figure 11).
    let mut intervals: Vec<(usize, usize)> = Vec::new();
    let mut interval_bounds: Vec<f64> = Vec::new();
    let mut cumulative_rate = 0.0f64;
    let mut lo = start;
    for &b in &boundaries {
        if b > lo {
            intervals.push((lo, b));
            interval_bounds.push(cumulative_rate + deactivated_rate(b));
        }
        cumulative_rate += deactivated_rate(b);
        lo = b + 1;
    }
    if lo < input.num_sites {
        intervals.push((lo, input.num_sites));
        interval_bounds.push(cumulative_rate);
    }

    // Search rounds: midpoints first, then successively later points of each
    // interval, as the paper does for all-negative projected utilities.
    let occupied: Vec<usize> = retained.clone();
    let mut added: Option<usize> = None;
    'rounds: for round in 0..4 {
        let mut best: Option<(usize, f64)> = None;
        for (k, &(lo, hi)) in intervals.iter().enumerate() {
            if hi <= lo {
                continue;
            }
            // Candidate position for this round: 1/2, then 3/4, 7/8, ... of the
            // interval (progressively later).
            let frac = 1.0 - 1.0 / (2u32.pow(round + 1) as f64);
            let pos = lo + ((hi - lo - 1) as f64 * frac).round() as usize;
            let candidate = pos.min(hi - 1);
            if occupied.contains(&candidate) || deactivated_sites.contains(&candidate) {
                continue;
            }
            let ub_rate = interval_bounds[k];
            let savings =
                ub_rate * input.window_requests as f64 * input.per_exit_saving_us[candidate];
            let overhead = (1.0 - ub_rate).max(0.0)
                * input.window_requests as f64
                * input.per_request_overhead_us;
            let utility = savings - overhead;
            if utility > 0.0 && best.map(|(_, u)| utility > u).unwrap_or(true) {
                best = Some((candidate, utility));
            }
        }
        if let Some((candidate, _)) = best {
            added = Some(candidate);
            break 'rounds;
        }
    }

    let mut new_active = retained;
    let mut newly_added = Vec::new();
    if let Some(site) = added {
        new_active.push(site);
        newly_added.push(site);
    }
    new_active.sort_unstable();
    AdjustDecision {
        new_active,
        newly_added,
        action: AdjustAction::ReplacedNegative {
            deactivated: deactivated_sites,
            added,
        },
    }
}

/// Handle the all-positive branch: add an earlier ramp if budget remains,
/// otherwise shift the lowest-utility ramp one feasible position earlier.
fn probe_earlier(input: &AdjustInput<'_>) -> AdjustDecision {
    let n = input.active_sites.len();
    let best_idx = (0..n)
        .max_by(|&a, &b| input.utilities_us[a].total_cmp(&input.utilities_us[b]))
        .expect("non-empty active set");
    let worst_idx = (0..n)
        .min_by(|&a, &b| input.utilities_us[a].total_cmp(&input.utilities_us[b]))
        .expect("non-empty active set");
    let occupied: Vec<usize> = input.active_sites.to_vec();
    if n < input.max_active {
        // Add a ramp immediately before the highest-utility ramp.
        let best_site = input.active_sites[best_idx];
        let target = (0..best_site).rev().find(|site| !occupied.contains(site));
        if let Some(site) = target {
            let mut new_active = occupied;
            new_active.push(site);
            new_active.sort_unstable();
            return AdjustDecision {
                new_active,
                newly_added: vec![site],
                action: AdjustAction::ProbedEarlier { added: site },
            };
        }
    } else if worst_idx != best_idx {
        // Shift the lowest-utility ramp one position earlier, leaving the most
        // positive ramp untouched.
        let from = input.active_sites[worst_idx];
        if from > 0 {
            let to = from - 1;
            if !occupied.contains(&to) {
                let mut new_active: Vec<usize> =
                    occupied.into_iter().filter(|&s| s != from).collect();
                new_active.push(to);
                new_active.sort_unstable();
                return AdjustDecision {
                    new_active,
                    newly_added: vec![to],
                    action: AdjustAction::ShiftedEarlier { from, to },
                };
            }
        }
    }
    AdjustDecision {
        new_active: input.active_sites.to_vec(),
        newly_added: Vec::new(),
        action: AdjustAction::NoChange,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilities_account_for_savings_and_overheads() {
        // 100 requests; ramp 0 exits 60 of them saving 10 ms each, ramp 1 exits
        // 10 more saving 4 ms each; ramp overhead is 50 µs per pass.
        let utilities = ramp_utilities(&[60, 10], 100, &[10_000.0, 4_000.0], &[50.0, 50.0]);
        assert!((utilities[0].savings_us - 600_000.0).abs() < 1e-6);
        // 40 requests pass ramp 0 without exiting there.
        assert!((utilities[0].overhead_us - 2_000.0).abs() < 1e-6);
        assert!(utilities[0].net_us() > 0.0);
        // 30 requests pass ramp 1 without exiting (100 - 60 - 10).
        assert!((utilities[1].overhead_us - 1_500.0).abs() < 1e-6);
    }

    #[test]
    fn useless_ramp_has_negative_utility() {
        let utilities = ramp_utilities(&[0, 50], 100, &[10_000.0, 4_000.0], &[50.0, 50.0]);
        assert!(utilities[0].net_us() < 0.0);
        assert!(utilities[1].net_us() > 0.0);
    }

    fn savings_by_site(num_sites: usize, total_us: f64) -> Vec<f64> {
        // Earlier sites save more (the rest of the model is longer).
        (0..num_sites)
            .map(|i| total_us * (1.0 - (i as f64 + 0.5) / num_sites as f64))
            .collect()
    }

    #[test]
    fn negative_ramp_is_deactivated_and_replaced_downstream() {
        let num_sites = 20;
        let savings = savings_by_site(num_sites, 20_000.0);
        // Active ramps at sites 4 (positive) and 10 (negative).
        let input = AdjustInput {
            num_sites,
            active_sites: &[4, 10],
            utilities_us: &[50_000.0, -2_000.0],
            exit_rates: &[0.5, 0.2],
            window_requests: 128,
            per_exit_saving_us: &savings,
            per_request_overhead_us: 30.0,
            max_active: 4,
        };
        let decision = adjust_ramps(&input);
        match &decision.action {
            AdjustAction::ReplacedNegative { deactivated, added } => {
                assert_eq!(deactivated, &vec![10]);
                let added = added.expect("a positive-upper-bound candidate exists");
                // The candidate must lie after the latest positive ramp (site 4)
                // and must not be the deactivated site itself.
                assert!(added > 4 && added != 10);
                assert!(decision.new_active.contains(&added));
                assert!(!decision.new_active.contains(&10));
                assert!(decision.new_active.contains(&4));
                assert_eq!(decision.newly_added, vec![added]);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn all_negative_ramps_are_removed() {
        let num_sites = 12;
        let savings = savings_by_site(num_sites, 1_000.0);
        // Tiny savings and an enormous overhead: no candidate can be positive.
        let input = AdjustInput {
            num_sites,
            active_sites: &[2, 6],
            utilities_us: &[-500.0, -800.0],
            exit_rates: &[0.01, 0.01],
            window_requests: 128,
            per_exit_saving_us: &savings,
            per_request_overhead_us: 10_000.0,
            max_active: 4,
        };
        let decision = adjust_ramps(&input);
        match &decision.action {
            AdjustAction::ReplacedNegative { deactivated, added } => {
                assert_eq!(deactivated.len(), 2);
                assert!(added.is_none(), "no candidate should look profitable");
                assert!(decision.new_active.is_empty());
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn all_positive_with_budget_adds_before_best() {
        let num_sites = 20;
        let savings = savings_by_site(num_sites, 20_000.0);
        let input = AdjustInput {
            num_sites,
            active_sites: &[8, 14],
            utilities_us: &[90_000.0, 20_000.0],
            exit_rates: &[0.6, 0.2],
            window_requests: 128,
            per_exit_saving_us: &savings,
            per_request_overhead_us: 30.0,
            max_active: 4,
        };
        let decision = adjust_ramps(&input);
        match decision.action {
            AdjustAction::ProbedEarlier { added } => {
                assert_eq!(
                    added, 7,
                    "should add immediately before the best ramp (site 8)"
                );
                assert_eq!(decision.new_active, vec![7, 8, 14]);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn all_positive_without_budget_shifts_worst_earlier() {
        let num_sites = 20;
        let savings = savings_by_site(num_sites, 20_000.0);
        let input = AdjustInput {
            num_sites,
            active_sites: &[8, 14],
            utilities_us: &[90_000.0, 20_000.0],
            exit_rates: &[0.6, 0.2],
            window_requests: 128,
            per_exit_saving_us: &savings,
            per_request_overhead_us: 30.0,
            max_active: 2,
        };
        let decision = adjust_ramps(&input);
        match decision.action {
            AdjustAction::ShiftedEarlier { from, to } => {
                assert_eq!(from, 14);
                assert_eq!(to, 13);
                assert_eq!(decision.new_active, vec![8, 13]);
                assert_eq!(decision.newly_added, vec![13]);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn shift_is_blocked_when_previous_site_is_occupied() {
        let num_sites = 10;
        let savings = savings_by_site(num_sites, 20_000.0);
        let input = AdjustInput {
            num_sites,
            active_sites: &[4, 5],
            utilities_us: &[90_000.0, 10_000.0],
            exit_rates: &[0.5, 0.1],
            window_requests: 128,
            per_exit_saving_us: &savings,
            per_request_overhead_us: 30.0,
            max_active: 2,
        };
        let decision = adjust_ramps(&input);
        assert_eq!(decision.action, AdjustAction::NoChange);
        assert_eq!(decision.new_active, vec![4, 5]);
    }

    #[test]
    fn empty_active_set_is_a_no_op() {
        let savings = savings_by_site(5, 1_000.0);
        let input = AdjustInput {
            num_sites: 5,
            active_sites: &[],
            utilities_us: &[],
            exit_rates: &[],
            window_requests: 0,
            per_exit_saving_us: &savings,
            per_request_overhead_us: 10.0,
            max_active: 2,
        };
        let decision = adjust_ramps(&input);
        assert_eq!(decision.action, AdjustAction::NoChange);
        assert!(decision.new_active.is_empty());
    }
}
