//! Ramp architectures: what an exit ramp computes and what it costs.
//!
//! §3.1 — "Apparate opts for the shallowest ramps that can transform the
//! intermediates at any layer into a final model prediction": a lightweight
//! pooling operation followed by the model's final fully-connected layer. The
//! alternatives evaluated in Figure 8 / §4.5 (extra convolutions for ResNet,
//! stacked FC layers or the full DeeBERT pooler for BERT) are modelled too so
//! the comparison experiments can run.

use apparate_model::{LayerLatency, ModelDescriptor, ModelFamily, ZooModel};
use serde::{Deserialize, Serialize};

/// Ramp architecture styles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RampArchitecture {
    /// Apparate's default: lightweight pooling + the model's final FC layer
    /// (or, for generative models, direct reuse of the decoder head).
    Lightweight,
    /// 1–2 extra convolution layers before pooling (the "fewer, heavier"
    /// ResNet alternative in Figure 8).
    ConvHeavy,
    /// Two stacked FC layers after pooling (the BERT alternative (1) in §3.1).
    StackedFc,
    /// The full DeeBERT-style pooler block plus dropout (alternative (2)).
    DeeBertPooler,
}

impl RampArchitecture {
    /// Relative compute cost of the ramp versus the lightweight default.
    pub fn cost_multiplier(self) -> f64 {
        match self {
            RampArchitecture::Lightweight => 1.0,
            RampArchitecture::ConvHeavy => 4.0,
            RampArchitecture::StackedFc => 2.5,
            RampArchitecture::DeeBertPooler => 3.2,
        }
    }

    /// Baseline predictive capacity of the architecture (before training-data
    /// effects). Figure 8 shows the added compute has "minimal effect on ramp
    /// efficacy", so heavier ramps get only a marginal capacity bump.
    pub fn base_capacity(self) -> f64 {
        match self {
            RampArchitecture::Lightweight => 0.960,
            RampArchitecture::ConvHeavy => 0.972,
            RampArchitecture::StackedFc => 0.968,
            RampArchitecture::DeeBertPooler => 0.970,
        }
    }
}

/// A fully specified ramp: architecture, parameter count, memory and latency.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RampSpec {
    /// Architecture style.
    pub architecture: RampArchitecture,
    /// Parameter count of the ramp.
    pub params: u64,
    /// GPU memory footprint in bytes.
    pub memory_bytes: u64,
    /// Latency cost of evaluating the ramp.
    pub cost: LayerLatency,
}

/// Build the ramp specification for a ramp consuming an intermediate of width
/// `input_width` on the given model.
///
/// The ramp's FC layer maps `input_width → num_classes` (its input width "is
/// modified to match the intermediates at each ramp location", §3.1). Latency
/// is modelled as a small fraction of the model's per-layer cost, scaled by
/// the architecture's cost multiplier; the resulting per-ramp overhead is a
/// fraction of a percent of model latency, consistent with the paper's 2 %
/// budget admitting several ramps.
pub fn ramp_spec(
    descriptor: &ModelDescriptor,
    input_width: u32,
    architecture: RampArchitecture,
) -> RampSpec {
    let num_outputs = match descriptor.family {
        // Generative ramps reuse the decoder head; classification ramps map to
        // the class count.
        ModelFamily::T5 | ModelFamily::Llama => descriptor.num_classes,
        _ => descriptor.num_classes,
    } as u64;
    let fc_params = input_width as u64 * num_outputs + num_outputs;
    let params = (fc_params as f64 * architecture.cost_multiplier()) as u64;
    let memory_bytes = params * descriptor.bytes_per_param as u64;
    // Lightweight ramp latency: a pooling pass plus one small GEMM. Modelled
    // as 0.15 % of the model's batch-1 latency, floored at 20 µs.
    let base_us = (descriptor.bs1_latency_us() * 0.0015).max(20.0);
    let total_us = base_us * architecture.cost_multiplier();
    RampSpec {
        architecture,
        params,
        memory_bytes,
        cost: LayerLatency {
            fixed_us: total_us * 0.4,
            per_item_us: total_us * 0.6,
            batch_alpha: 0.7,
        },
    }
}

/// Fraction of the original model's parameters a single ramp adds; §3.1 quotes
/// 0.01–3.50 % across the corpus.
pub fn ramp_param_fraction(model: &ZooModel, spec: &RampSpec) -> f64 {
    spec.params as f64 / (model.descriptor.params_millions * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_model::zoo;

    #[test]
    fn lightweight_is_cheapest_and_default_capable() {
        for arch in [
            RampArchitecture::ConvHeavy,
            RampArchitecture::StackedFc,
            RampArchitecture::DeeBertPooler,
        ] {
            assert!(arch.cost_multiplier() > RampArchitecture::Lightweight.cost_multiplier());
            // Extra compute buys only a marginal capacity increase (Figure 8).
            assert!(arch.base_capacity() - RampArchitecture::Lightweight.base_capacity() < 0.02);
        }
    }

    #[test]
    fn ramp_cost_is_a_small_fraction_of_model_latency() {
        for model in zoo::classification_models() {
            let width = model.graph.layers()[model.graph.len() / 2].output_width;
            let spec = ramp_spec(&model.descriptor, width, RampArchitecture::Lightweight);
            let ramp_ms = spec.cost.latency_us(1) / 1_000.0;
            assert!(
                ramp_ms < model.bs1_latency_ms() * 0.01,
                "{}: ramp {ramp_ms} ms vs model {} ms",
                model.descriptor.name,
                model.bs1_latency_ms()
            );
        }
    }

    #[test]
    fn ramp_params_are_tiny_fraction_of_model() {
        // §3.1: ramps comprise only 0.01–3.50 % of model parameters.
        for model in zoo::classification_models() {
            let width = model.graph.layers()[model.graph.len() / 2].output_width;
            let spec = ramp_spec(&model.descriptor, width, RampArchitecture::Lightweight);
            let frac = ramp_param_fraction(&model, &spec);
            assert!(
                frac < 0.05,
                "{}: ramp fraction {frac}",
                model.descriptor.name
            );
        }
    }

    #[test]
    fn wider_intermediates_make_bigger_ramps() {
        let model = zoo::bert_large();
        let small = ramp_spec(&model.descriptor, 256, RampArchitecture::Lightweight);
        let large = ramp_spec(&model.descriptor, 1024, RampArchitecture::Lightweight);
        assert!(large.params > small.params);
        assert!(large.memory_bytes > small.memory_bytes);
    }

    #[test]
    fn quantized_models_have_smaller_ramp_memory() {
        let fp32 = zoo::bert_base();
        let int8 = zoo::bert_base_int8();
        let a = ramp_spec(&fp32.descriptor, 768, RampArchitecture::Lightweight);
        let b = ramp_spec(&int8.descriptor, 768, RampArchitecture::Lightweight);
        assert!(b.memory_bytes < a.memory_bytes);
    }
}
