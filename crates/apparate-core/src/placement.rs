//! Ramp placement: feasible sites, budgeting, and initial spacing.
//!
//! §3.1: Apparate marks feasible ramp locations as cut vertices of the model
//! graph (delegated to `apparate-model`), bounds the number of active ramps by
//! the user's ramp budget (% impact on worst-case latency), and initially
//! spaces the allowed ramps evenly across the model, each starting with a
//! threshold of 0 (no exiting).

use crate::config::ApparateConfig;
use crate::ramp::{ramp_spec, RampArchitecture, RampSpec};
use apparate_model::{LayerId, Stage, TaskKind, ZooModel};
use serde::{Deserialize, Serialize};

/// A candidate ramp position with its cost/capacity specification.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RampSite {
    /// The layer whose output the ramp reads.
    pub site: LayerId,
    /// Index of this site within the ordered feasible-site list; adjustment
    /// algorithms reason in this index space.
    pub site_index: usize,
    /// The ramp specification at this site.
    pub spec: RampSpec,
}

/// All feasible ramp sites of a model, in topological order, with their specs.
pub fn feasible_sites(model: &ZooModel, architecture: RampArchitecture) -> Vec<RampSite> {
    let stage_filter = match model.descriptor.task {
        // Generative models only ramp the decoding phase (§3.1).
        TaskKind::Generative => Some(Stage::Decoder),
        TaskKind::Classification => None,
    };
    model
        .graph
        .feasible_ramp_sites(stage_filter)
        .into_iter()
        .enumerate()
        .map(|(site_index, site)| {
            let width = model.graph.layer(site).output_width;
            RampSite {
                site,
                site_index,
                spec: ramp_spec(&model.descriptor, width, architecture),
            }
        })
        .collect()
}

/// Maximum number of simultaneously active ramps allowed by the ramp budget:
/// the worst-case (non-exiting) request pays every active ramp's overhead, and
/// that total must stay below `budget × vanilla latency`.
pub fn max_ramps_under_budget(model: &ZooModel, sites: &[RampSite], budget: f64) -> usize {
    if sites.is_empty() || budget <= 0.0 {
        return 0;
    }
    let vanilla_us = model.latency.total_us(1);
    let allowance_us = vanilla_us * budget;
    // Sites share a spec cost (same architecture), but be conservative and use
    // the most expensive site when they differ.
    let per_ramp_us = sites
        .iter()
        .map(|s| s.spec.cost.latency_us(1))
        .fold(0.0f64, f64::max);
    if per_ramp_us <= 0.0 {
        return sites.len();
    }
    ((allowance_us / per_ramp_us).floor() as usize).min(sites.len())
}

/// Pick `count` evenly spaced sites from the ordered feasible list.
pub fn evenly_spaced(sites: &[RampSite], count: usize) -> Vec<RampSite> {
    if count == 0 || sites.is_empty() {
        return Vec::new();
    }
    let count = count.min(sites.len());
    if count == sites.len() {
        return sites.to_vec();
    }
    // Spread across (0, len): place ramps at the centres of `count` equal
    // segments so they cover the model without bunching at either end.
    (0..count)
        .map(|i| {
            let pos = (i as f64 + 0.5) / count as f64 * sites.len() as f64;
            sites[(pos.floor() as usize).min(sites.len() - 1)]
        })
        .collect()
}

/// The initial deployment configuration: evenly spaced ramps filling the
/// budget, thresholds all zero.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InitialPlacement {
    /// Every feasible site (the adjustment search space).
    pub all_sites: Vec<RampSite>,
    /// Initially active sites (a subset of `all_sites`).
    pub active: Vec<RampSite>,
    /// Budgeted maximum number of simultaneously active ramps.
    pub max_active: usize,
}

/// Compute the initial placement for a model under a configuration.
pub fn initial_placement(
    model: &ZooModel,
    config: &ApparateConfig,
    architecture: RampArchitecture,
) -> InitialPlacement {
    let all_sites = feasible_sites(model, architecture);
    let max_active = max_ramps_under_budget(model, &all_sites, config.ramp_budget).max(1);
    let active = evenly_spaced(&all_sites, max_active);
    InitialPlacement {
        all_sites,
        active,
        max_active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_model::zoo;

    #[test]
    fn feasible_sites_cover_the_model() {
        let model = zoo::resnet(50);
        let sites = feasible_sites(&model, RampArchitecture::Lightweight);
        assert!(sites.len() >= model.descriptor.num_blocks as usize / 2);
        // Site indices are dense and ordered.
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.site_index, i);
        }
        let positions: Vec<usize> = sites
            .iter()
            .map(|s| model.graph.topo_position(s.site))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn generative_sites_are_decoder_only() {
        let model = zoo::t5_large();
        let sites = feasible_sites(&model, RampArchitecture::Lightweight);
        assert!(!sites.is_empty());
        for s in &sites {
            assert_eq!(model.graph.layer(s.site).stage, Stage::Decoder);
        }
    }

    #[test]
    fn budget_caps_ramp_count() {
        let model = zoo::bert_base();
        let sites = feasible_sites(&model, RampArchitecture::Lightweight);
        let small = max_ramps_under_budget(&model, &sites, 0.02);
        let large = max_ramps_under_budget(&model, &sites, 0.10);
        assert!(small >= 1);
        assert!(large >= small);
        assert_eq!(max_ramps_under_budget(&model, &sites, 0.0), 0);
        // Worst-case overhead of the admitted ramps stays within budget.
        let per_ramp = sites[0].spec.cost.latency_us(1);
        assert!(per_ramp * small as f64 <= model.latency.total_us(1) * 0.02 + 1e-9);
    }

    #[test]
    fn heavier_ramps_admit_fewer_under_same_budget() {
        let model = zoo::bert_base();
        let light = feasible_sites(&model, RampArchitecture::Lightweight);
        let heavy = feasible_sites(&model, RampArchitecture::DeeBertPooler);
        let n_light = max_ramps_under_budget(&model, &light, 0.02);
        let n_heavy = max_ramps_under_budget(&model, &heavy, 0.02);
        assert!(n_light > n_heavy, "light {n_light} vs heavy {n_heavy}");
    }

    #[test]
    fn evenly_spaced_spans_the_model() {
        let model = zoo::vgg(16);
        let sites = feasible_sites(&model, RampArchitecture::Lightweight);
        let picked = evenly_spaced(&sites, 4);
        assert_eq!(picked.len(), 4);
        // The picks are distinct and ordered.
        let idx: Vec<usize> = picked.iter().map(|s| s.site_index).collect();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        // First pick is in the first half, last pick in the second half.
        assert!(idx[0] < sites.len() / 2);
        assert!(idx[3] >= sites.len() / 2);
    }

    #[test]
    fn evenly_spaced_edge_cases() {
        let model = zoo::resnet(18);
        let sites = feasible_sites(&model, RampArchitecture::Lightweight);
        assert!(evenly_spaced(&sites, 0).is_empty());
        assert_eq!(evenly_spaced(&sites, sites.len() + 10).len(), sites.len());
        assert_eq!(evenly_spaced(&[], 3).len(), 0);
    }

    #[test]
    fn initial_placement_respects_budget_and_config() {
        let model = zoo::resnet(50);
        let config = ApparateConfig::default();
        let placement = initial_placement(&model, &config, RampArchitecture::Lightweight);
        assert!(placement.max_active >= 1);
        assert_eq!(
            placement.active.len(),
            placement.max_active.min(placement.all_sites.len())
        );
        let bigger = initial_placement(
            &model,
            &config.with_ramp_budget(0.10),
            RampArchitecture::Lightweight,
        );
        assert!(bigger.max_active >= placement.max_active);
    }
}
