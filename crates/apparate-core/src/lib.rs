//! Apparate's controller algorithms (§3 of the paper).
//!
//! This crate holds the policy brain of the reproduction — everything the
//! paper describes as running on the CPU-side controller:
//!
//! * [`config`] — the two user-facing knobs (accuracy constraint, ramp
//!   budget) plus the internal tuning constants of §3.2–3.3.
//! * [`ramp`] — ramp architectures and their cost/capacity specifications.
//! * [`placement`] — feasible-site enumeration, budgeting, and the initial
//!   evenly spaced deployment (§3.1).
//! * [`training`] — simulated ramp training on the bootstrap split (§3.1).
//! * [`monitor`] — the free accuracy/observation feedback windows (§3.2).
//! * [`threshold`] — accuracy-aware greedy threshold tuning, Algorithm 1.
//! * [`adjust`] — latency-focused ramp adjustment, Algorithm 2 / Figure 11.
//!
//! The pieces are deliberately separable: the serving integration that wires
//! them into a live `ExitPolicy` loop lives in `apparate-experiments`, and the
//! non-adaptive comparison points live in `apparate-baselines`.
//!
//! Entry points: [`greedy_tune`] (Algorithm 1), [`adjust_ramps`]
//! (Algorithm 2), [`Monitor`] (the feedback windows they consume), and
//! [`ApparateConfig`] (the two user-facing knobs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjust;
pub mod config;
pub mod monitor;
pub mod placement;
pub mod ramp;
pub mod threshold;
pub mod training;

pub use adjust::{
    adjust_ramps, ramp_utilities, AdjustAction, AdjustDecision, AdjustInput, RampUtility,
};
pub use config::ApparateConfig;
pub use monitor::{Monitor, RequestFeedback, TuningWindow};
pub use placement::{
    evenly_spaced, feasible_sites, initial_placement, max_ramps_under_budget, InitialPlacement,
    RampSite,
};
pub use ramp::{ramp_param_fraction, ramp_spec, RampArchitecture, RampSpec};
pub use threshold::{
    greedy_tune, grid_tune, ConfigEvaluation, GreedyParams, IncrementalTuner, ThresholdEvaluator,
    TuningOutcome,
};
pub use training::{train_ramps, trained_capacity, TrainedRamp, TrainingReport};
