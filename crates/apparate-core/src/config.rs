//! Apparate's user-facing parameters and internal tuning constants.
//!
//! The paper exposes exactly two knobs to users (§3): the **accuracy
//! constraint** (how much accuracy loss relative to the original model is
//! acceptable — default 1 %) and the **ramp aggression / budget** (bound on
//! the worst-case latency impact of active ramps — default 2 %). Everything
//! else (window sizes, step sizes, adjustment period) is an internal constant
//! with the defaults given in §3.2–3.3.

use serde::{Deserialize, Serialize};

/// Configuration of an Apparate deployment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ApparateConfig {
    /// Maximum tolerated accuracy loss relative to the original model, as a
    /// fraction (0.01 = 1 %).
    pub accuracy_constraint: f64,
    /// Ramp budget: maximum increase of worst-case (non-exiting) latency due
    /// to ramp overheads, as a fraction of the vanilla model latency
    /// (0.02 = 2 %).
    pub ramp_budget: f64,
    /// Number of recent samples over which achieved accuracy is monitored to
    /// trigger threshold tuning (16 in §3.2).
    pub accuracy_window: usize,
    /// Number of samples between ramp-adjustment rounds (128 in §3.3).
    pub ramp_adjust_period: usize,
    /// Number of recent samples used to evaluate candidate threshold
    /// configurations.
    pub tuning_window: usize,
    /// Initial hill-climbing step size for threshold tuning (0.1 in §3.2).
    pub initial_step: f64,
    /// Smallest step size; the search stops refining below this (0.01).
    pub smallest_step: f64,
    /// For generative serving: flush accumulated exited tokens through the
    /// remaining layers once this many are pending (§4.4: "regularly flushes a
    /// batch decoding once the ramp accumulates a pre-specified number of
    /// exited tokens").
    pub generative_flush_tokens: usize,
    /// Run every tuning round as a full greedy re-tune over the materialised
    /// window instead of the incremental delta tuner. The two produce
    /// identical configurations (the incremental tuner replays the exact
    /// greedy trajectory); this flag exists as the correctness oracle for
    /// equivalence checks and as an escape hatch, not as a quality knob.
    pub full_retune: bool,
}

impl Default for ApparateConfig {
    fn default() -> Self {
        ApparateConfig {
            accuracy_constraint: 0.01,
            ramp_budget: 0.02,
            accuracy_window: 16,
            ramp_adjust_period: 128,
            tuning_window: 64,
            initial_step: 0.1,
            smallest_step: 0.01,
            generative_flush_tokens: 8,
            full_retune: false,
        }
    }
}

impl ApparateConfig {
    /// Validate the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=0.5).contains(&self.accuracy_constraint) {
            return Err(format!(
                "accuracy constraint {} out of range [0, 0.5]",
                self.accuracy_constraint
            ));
        }
        if !(0.0..=1.0).contains(&self.ramp_budget) {
            return Err(format!(
                "ramp budget {} out of range [0, 1]",
                self.ramp_budget
            ));
        }
        if self.accuracy_window == 0 || self.tuning_window == 0 {
            return Err("windows must be non-empty".to_string());
        }
        if self.ramp_adjust_period == 0 {
            return Err("ramp adjustment period must be positive".to_string());
        }
        if self.smallest_step <= 0.0 || self.initial_step < self.smallest_step {
            return Err("step sizes must satisfy 0 < smallest_step <= initial_step".to_string());
        }
        Ok(())
    }

    /// Convenience: the paper's default configuration with a different
    /// accuracy constraint (Figure 19).
    pub fn with_accuracy_constraint(mut self, constraint: f64) -> Self {
        self.accuracy_constraint = constraint;
        self
    }

    /// Convenience: the paper's default configuration with a different ramp
    /// budget (Table 3).
    pub fn with_ramp_budget(mut self, budget: f64) -> Self {
        self.ramp_budget = budget;
        self
    }

    /// Convenience: force every tuning round through the full greedy re-tune
    /// (the incremental tuner's correctness oracle).
    pub fn with_full_retune(mut self, full_retune: bool) -> Self {
        self.full_retune = full_retune;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ApparateConfig::default();
        assert_eq!(c.accuracy_constraint, 0.01);
        assert_eq!(c.ramp_budget, 0.02);
        assert_eq!(c.accuracy_window, 16);
        assert_eq!(c.ramp_adjust_period, 128);
        assert_eq!(c.initial_step, 0.1);
        assert_eq!(c.smallest_step, 0.01);
        assert!(!c.full_retune, "incremental tuning is the default");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ApparateConfig {
            accuracy_constraint: 0.9,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ApparateConfig {
            ramp_budget: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ApparateConfig {
            accuracy_window: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ApparateConfig {
            smallest_step: 0.2,
            initial_step: 0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ApparateConfig {
            ramp_adjust_period: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn builder_helpers() {
        let c = ApparateConfig::default()
            .with_accuracy_constraint(0.05)
            .with_ramp_budget(0.10)
            .with_full_retune(true);
        assert_eq!(c.accuracy_constraint, 0.05);
        assert_eq!(c.ramp_budget, 0.10);
        assert!(c.full_retune);
    }
}
