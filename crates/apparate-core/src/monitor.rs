//! Runtime monitoring: the feedback Apparate gets "for free" because every
//! input still runs to the end of the model.
//!
//! For every request and every active ramp the controller records the ramp's
//! highest-confidence result and error score — *irrespective of upstream
//! exiting decisions* (§3.2). The monitor maintains:
//!
//! * a short accuracy window (16 samples) whose violation triggers threshold
//!   tuning,
//! * a longer tuning window of full per-ramp observations used to evaluate
//!   counterfactual threshold configurations without extra inference,
//! * per-ramp exit counters since the last ramp-adjustment round, used for
//!   utility scores and candidate exit-rate bounds (§3.3).

use apparate_exec::RampObservation;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Feedback recorded for one request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestFeedback {
    /// Observation at every *active* ramp, in ramp order.
    pub observations: Vec<RampObservation>,
    /// The ramp index the deployed configuration exited this request at.
    pub exited: Option<usize>,
    /// Whether the released result matched the original model.
    pub correct: bool,
    /// Batch size the request was served with.
    pub batch_size: u32,
}

/// The controller's monitoring state.
#[derive(Debug, Clone)]
pub struct Monitor {
    num_ramps: usize,
    accuracy_capacity: usize,
    tuning_capacity: usize,
    accuracy_window: VecDeque<bool>,
    tuning_window: VecDeque<RequestFeedback>,
    ramp_exits: Vec<u64>,
    requests_since_adjust: u64,
    total_requests: u64,
    total_correct: u64,
}

impl Monitor {
    /// Create a monitor for `num_ramps` active ramps.
    pub fn new(num_ramps: usize, accuracy_capacity: usize, tuning_capacity: usize) -> Monitor {
        assert!(accuracy_capacity > 0 && tuning_capacity > 0);
        Monitor {
            num_ramps,
            accuracy_capacity,
            tuning_capacity,
            accuracy_window: VecDeque::with_capacity(accuracy_capacity),
            tuning_window: VecDeque::with_capacity(tuning_capacity),
            ramp_exits: vec![0; num_ramps],
            requests_since_adjust: 0,
            total_requests: 0,
            total_correct: 0,
        }
    }

    /// Number of ramps currently monitored.
    pub fn num_ramps(&self) -> usize {
        self.num_ramps
    }

    /// Record feedback for one request.
    pub fn record(&mut self, feedback: RequestFeedback) {
        debug_assert_eq!(feedback.observations.len(), self.num_ramps);
        if self.accuracy_window.len() == self.accuracy_capacity {
            self.accuracy_window.pop_front();
        }
        self.accuracy_window.push_back(feedback.correct);
        if let Some(idx) = feedback.exited {
            if idx < self.num_ramps {
                self.ramp_exits[idx] += 1;
            }
        }
        self.requests_since_adjust += 1;
        self.total_requests += 1;
        if feedback.correct {
            self.total_correct += 1;
        }
        if self.tuning_window.len() == self.tuning_capacity {
            self.tuning_window.pop_front();
        }
        self.tuning_window.push_back(feedback);
    }

    /// Accuracy over the short trigger window (1.0 when empty).
    pub fn windowed_accuracy(&self) -> f64 {
        if self.accuracy_window.is_empty() {
            return 1.0;
        }
        self.accuracy_window.iter().filter(|&&c| c).count() as f64
            / self.accuracy_window.len() as f64
    }

    /// True once the trigger window has filled at least once.
    pub fn accuracy_window_full(&self) -> bool {
        self.accuracy_window.len() == self.accuracy_capacity
    }

    /// Cumulative accuracy since the monitor was created.
    pub fn cumulative_accuracy(&self) -> f64 {
        if self.total_requests == 0 {
            return 1.0;
        }
        self.total_correct as f64 / self.total_requests as f64
    }

    /// The recorded tuning window (oldest first).
    pub fn tuning_records(&self) -> Vec<RequestFeedback> {
        self.tuning_window.iter().cloned().collect()
    }

    /// Number of records currently in the tuning window.
    pub fn tuning_window_len(&self) -> usize {
        self.tuning_window.len()
    }

    /// Per-ramp exit rates since the last ramp adjustment.
    pub fn exit_rates(&self) -> Vec<f64> {
        if self.requests_since_adjust == 0 {
            return vec![0.0; self.num_ramps];
        }
        self.ramp_exits
            .iter()
            .map(|&e| e as f64 / self.requests_since_adjust as f64)
            .collect()
    }

    /// Raw per-ramp exit counts since the last ramp adjustment.
    pub fn exit_counts(&self) -> &[u64] {
        &self.ramp_exits
    }

    /// Requests observed since the last ramp adjustment.
    pub fn requests_since_adjust(&self) -> u64 {
        self.requests_since_adjust
    }

    /// Total requests observed.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Reset ramp-aligned state after the active ramp set changed; previous
    /// observations no longer line up with the new ramp indices.
    pub fn reset_for_new_ramps(&mut self, num_ramps: usize) {
        self.num_ramps = num_ramps;
        self.ramp_exits = vec![0; num_ramps];
        self.requests_since_adjust = 0;
        self.tuning_window.clear();
        // The accuracy trigger window deliberately survives: accuracy is a
        // property of released results, not of any particular ramp set.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feedback(entropies: &[f64], exited: Option<usize>, correct: bool) -> RequestFeedback {
        RequestFeedback {
            observations: entropies
                .iter()
                .map(|&e| RampObservation {
                    entropy: e,
                    agrees: correct,
                })
                .collect(),
            exited,
            correct,
            batch_size: 4,
        }
    }

    #[test]
    fn accuracy_window_tracks_recent_results() {
        let mut m = Monitor::new(2, 4, 16);
        assert_eq!(m.windowed_accuracy(), 1.0);
        for _ in 0..4 {
            m.record(feedback(&[0.1, 0.1], Some(0), true));
        }
        assert!(m.accuracy_window_full());
        assert_eq!(m.windowed_accuracy(), 1.0);
        for _ in 0..2 {
            m.record(feedback(&[0.1, 0.1], Some(0), false));
        }
        assert!((m.windowed_accuracy() - 0.5).abs() < 1e-9);
        // The window slides: four more correct results push the errors out.
        for _ in 0..4 {
            m.record(feedback(&[0.1, 0.1], None, true));
        }
        assert_eq!(m.windowed_accuracy(), 1.0);
        assert!(m.cumulative_accuracy() < 1.0);
    }

    #[test]
    fn exit_rates_count_per_ramp() {
        let mut m = Monitor::new(3, 16, 64);
        for i in 0..10 {
            let exited = match i % 3 {
                0 => Some(0),
                1 => Some(2),
                _ => None,
            };
            m.record(feedback(&[0.5, 0.5, 0.5], exited, true));
        }
        let rates = m.exit_rates();
        assert!((rates[0] - 0.4).abs() < 1e-9);
        assert_eq!(rates[1], 0.0);
        assert!((rates[2] - 0.3).abs() < 1e-9);
        assert_eq!(m.requests_since_adjust(), 10);
        assert_eq!(m.exit_counts(), &[4, 0, 3]);
    }

    #[test]
    fn tuning_window_is_bounded() {
        let mut m = Monitor::new(1, 16, 8);
        for i in 0..20 {
            m.record(feedback(&[i as f64 / 20.0], None, true));
        }
        assert_eq!(m.tuning_window_len(), 8);
        let records = m.tuning_records();
        // The oldest retained record is request 12 (entropy 0.6).
        assert!((records[0].observations[0].entropy - 0.6).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_ramp_state_but_keeps_accuracy() {
        let mut m = Monitor::new(2, 4, 8);
        for _ in 0..4 {
            m.record(feedback(&[0.1, 0.1], Some(1), false));
        }
        assert!(m.windowed_accuracy() < 1.0);
        m.reset_for_new_ramps(3);
        assert_eq!(m.num_ramps(), 3);
        assert_eq!(m.exit_counts(), &[0, 0, 0]);
        assert_eq!(m.requests_since_adjust(), 0);
        assert_eq!(m.tuning_window_len(), 0);
        // Accuracy history survives, so a violation can still trigger tuning
        // right after an adjustment.
        assert!(m.windowed_accuracy() < 1.0);
        assert_eq!(m.total_requests(), 4);
    }

    #[test]
    fn empty_exit_rates_are_zero() {
        let m = Monitor::new(2, 16, 64);
        assert_eq!(m.exit_rates(), vec![0.0, 0.0]);
        assert_eq!(m.cumulative_accuracy(), 1.0);
    }
}
