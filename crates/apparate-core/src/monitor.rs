//! Runtime monitoring: the feedback Apparate gets "for free" because every
//! input still runs to the end of the model.
//!
//! For every request and every active ramp the controller records the ramp's
//! highest-confidence result and error score — *irrespective of upstream
//! exiting decisions* (§3.2). The monitor maintains:
//!
//! * a short accuracy window (16 samples) whose violation triggers threshold
//!   tuning,
//! * a longer tuning window of full per-ramp observations used to evaluate
//!   counterfactual threshold configurations without extra inference,
//! * per-ramp exit counters since the last ramp-adjustment round, used for
//!   utility scores and candidate exit-rate bounds (§3.3).
//!
//! The tuning window is columnar ([`TuningWindow`]): observations live in
//! flat per-ramp-strided arrays with per-ramp entropy histograms maintained
//! at ingest time, so the incremental tuner reads pre-built aggregates
//! instead of replaying per-request records. Whole delivered
//! [`ProfileRecord`]s are ingested with [`Monitor::record_batch`] — slice
//! copies, no per-request allocation.

use apparate_exec::{ProfileRecord, RampObservation};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of unique [`TuningWindow`] instance ids: the tuner's caches key on
/// `(id, version)`, so two *different* windows that happen to agree on a
/// version counter can never alias each other's cached state. Never read for
/// anything observable — a collision-free label only, so the allocation order
/// being scheduling-dependent is fine.
static WINDOW_IDS: AtomicU64 = AtomicU64::new(1);

fn next_window_id() -> u64 {
    WINDOW_IDS.fetch_add(1, Ordering::Relaxed)
}

/// Feedback recorded for one request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestFeedback {
    /// Observation at every *active* ramp, in ramp order.
    pub observations: Vec<RampObservation>,
    /// The ramp index the deployed configuration exited this request at.
    pub exited: Option<usize>,
    /// Whether the released result matched the original model.
    pub correct: bool,
    /// Batch size the request was served with.
    pub batch_size: u32,
}

/// Buckets per ramp in the [`TuningWindow`]'s entropy histograms.
const HIST_BUCKETS: usize = 64;

#[inline]
fn hist_bucket(entropy: f64) -> usize {
    // Entropies are clamped to [0, 1] upstream; the min guards 1.0 exactly.
    ((entropy.max(0.0) * HIST_BUCKETS as f64) as usize).min(HIST_BUCKETS - 1)
}

/// The bounded tuning window in columnar form: a ring of request slots whose
/// per-ramp entropies/agreements live in flat stride-`num_ramps` arrays,
/// with per-ramp entropy histograms kept in sync on every push/evict.
///
/// The histograms are the pre-aggregated per-ramp summaries the incremental
/// tuner consults to skip candidate threshold ranges with no recorded mass;
/// the version counters let it key its sorted-column caches so only ramps
/// whose window content changed since the last tune are re-derived.
#[derive(Debug)]
pub struct TuningWindow {
    /// Process-unique instance label (see [`WINDOW_IDS`]).
    id: u64,
    num_ramps: usize,
    capacity: usize,
    /// Slot-major entropies: slot `s`, ramp `r` at `s * num_ramps + r`.
    entropies: Vec<f64>,
    /// Slot-major agreement flags, same layout as `entropies`.
    agrees: Vec<bool>,
    /// Per-slot deployed exit decision.
    exited: Vec<Option<usize>>,
    /// Per-slot released-result correctness.
    correct: Vec<bool>,
    /// Per-slot serving batch size.
    batch_size: Vec<u32>,
    /// Physical index of the oldest slot (0 until the ring first wraps).
    head: usize,
    len: usize,
    /// Bumped on every mutation; cache key for whole-window consumers.
    version: u64,
    /// Per-ramp mutation counters; cache keys for per-ramp derived state.
    ramp_versions: Vec<u64>,
    /// Per-ramp entropy histograms: ramp `r` bucket `b` at
    /// `r * HIST_BUCKETS + b`.
    hist: Vec<u32>,
}

impl Clone for TuningWindow {
    fn clone(&self) -> TuningWindow {
        // A clone may diverge from its source while both keep counting
        // versions from the same point, so it must not share the source's
        // cache identity.
        TuningWindow {
            id: next_window_id(),
            num_ramps: self.num_ramps,
            capacity: self.capacity,
            entropies: self.entropies.clone(),
            agrees: self.agrees.clone(),
            exited: self.exited.clone(),
            correct: self.correct.clone(),
            batch_size: self.batch_size.clone(),
            head: self.head,
            len: self.len,
            version: self.version,
            ramp_versions: self.ramp_versions.clone(),
            hist: self.hist.clone(),
        }
    }
}

impl TuningWindow {
    /// Create an empty window for `num_ramps` ramps holding up to `capacity`
    /// requests.
    pub fn new(num_ramps: usize, capacity: usize) -> TuningWindow {
        assert!(capacity > 0);
        TuningWindow {
            id: next_window_id(),
            num_ramps,
            capacity,
            entropies: vec![0.0; capacity * num_ramps],
            agrees: vec![false; capacity * num_ramps],
            exited: vec![None; capacity],
            correct: vec![false; capacity],
            batch_size: vec![0; capacity],
            head: 0,
            len: 0,
            version: 0,
            ramp_versions: vec![0; num_ramps],
            hist: vec![0; num_ramps * HIST_BUCKETS],
        }
    }

    /// Number of requests currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no requests are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of requests held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ramps per request.
    pub fn num_ramps(&self) -> usize {
        self.num_ramps
    }

    /// Process-unique instance id; combined with [`TuningWindow::version`]
    /// it identifies window *content* for caching.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Monotone counter bumped on every mutation: equal `(id, version)`
    /// pairs guarantee identical window content.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Per-ramp mutation counter: unchanged between two tunes means ramp
    /// `ramp`'s column (and anything derived from it) is still valid.
    pub fn ramp_version(&self, ramp: usize) -> u64 {
        self.ramp_versions[ramp]
    }

    /// Entropy observed at `ramp` for the request in physical slot `slot`.
    ///
    /// Physical slots `0..len()` are always valid; the ring only moves its
    /// head once full, at which point every slot is occupied. Slot order is
    /// *not* arrival order — evaluation over the window is order-independent.
    #[inline]
    pub fn entropy(&self, slot: usize, ramp: usize) -> f64 {
        self.entropies[slot * self.num_ramps + ramp]
    }

    /// Whether `ramp`'s prediction agreed with the original model for the
    /// request in physical slot `slot`.
    #[inline]
    pub fn agrees(&self, slot: usize, ramp: usize) -> bool {
        self.agrees[slot * self.num_ramps + ramp]
    }

    /// True when the per-ramp histogram proves no recorded entropy at `ramp`
    /// lies in `(lo, hi]`. A `false` answer is conservative: the bucket
    /// resolution may include neighbouring mass.
    pub fn range_provably_empty(&self, ramp: usize, lo: f64, hi: f64) -> bool {
        let base = ramp * HIST_BUCKETS;
        let from = hist_bucket(lo);
        let to = hist_bucket(hi);
        self.hist[base + from..=base + to].iter().all(|&c| c == 0)
    }

    /// Append one request's observations, evicting the oldest once full.
    pub fn push(
        &mut self,
        observations: &[RampObservation],
        exited: Option<usize>,
        correct: bool,
        batch_size: u32,
    ) {
        debug_assert_eq!(observations.len(), self.num_ramps);
        let slot = if self.len == self.capacity {
            let evicted = self.head;
            // Retire the evicted slot's entropies from the histograms before
            // overwriting them.
            for r in 0..self.num_ramps {
                let bucket = hist_bucket(self.entropies[evicted * self.num_ramps + r]);
                self.hist[r * HIST_BUCKETS + bucket] -= 1;
            }
            self.head = (self.head + 1) % self.capacity;
            evicted
        } else {
            // Invariant: the head stays at 0 until the ring first fills, so
            // physical slots 0..len are exactly the occupied ones.
            let slot = (self.head + self.len) % self.capacity;
            self.len += 1;
            slot
        };
        let base = slot * self.num_ramps;
        for (r, obs) in observations.iter().enumerate() {
            self.entropies[base + r] = obs.entropy;
            self.agrees[base + r] = obs.agrees;
            self.hist[r * HIST_BUCKETS + hist_bucket(obs.entropy)] += 1;
            self.ramp_versions[r] += 1;
        }
        self.exited[slot] = exited;
        self.correct[slot] = correct;
        self.batch_size[slot] = batch_size;
        self.version += 1;
    }

    /// Clear the window for a new ramp set of `num_ramps` ramps.
    pub fn clear_for_ramps(&mut self, num_ramps: usize) {
        self.num_ramps = num_ramps;
        self.entropies = vec![0.0; self.capacity * num_ramps];
        self.agrees = vec![false; self.capacity * num_ramps];
        self.exited.fill(None);
        self.correct.fill(false);
        self.batch_size.fill(0);
        self.head = 0;
        self.len = 0;
        self.version += 1;
        self.ramp_versions = vec![0; num_ramps];
        for v in &mut self.ramp_versions {
            *v = self.version;
        }
        self.hist = vec![0; num_ramps * HIST_BUCKETS];
    }

    /// Materialise the window as per-request records, oldest first (the
    /// full-retune oracle path and offline consumers).
    pub fn records(&self) -> Vec<RequestFeedback> {
        (0..self.len)
            .map(|i| {
                let slot = (self.head + i) % self.capacity;
                let base = slot * self.num_ramps;
                RequestFeedback {
                    observations: (0..self.num_ramps)
                        .map(|r| RampObservation {
                            entropy: self.entropies[base + r],
                            agrees: self.agrees[base + r],
                        })
                        .collect(),
                    exited: self.exited[slot],
                    correct: self.correct[slot],
                    batch_size: self.batch_size[slot],
                }
            })
            .collect()
    }
}

/// The controller's monitoring state.
#[derive(Debug, Clone)]
pub struct Monitor {
    num_ramps: usize,
    accuracy_capacity: usize,
    accuracy_window: VecDeque<bool>,
    tuning_window: TuningWindow,
    ramp_exits: Vec<u64>,
    requests_since_adjust: u64,
    total_requests: u64,
    total_correct: u64,
}

impl Monitor {
    /// Create a monitor for `num_ramps` active ramps.
    pub fn new(num_ramps: usize, accuracy_capacity: usize, tuning_capacity: usize) -> Monitor {
        assert!(accuracy_capacity > 0 && tuning_capacity > 0);
        Monitor {
            num_ramps,
            accuracy_capacity,
            accuracy_window: VecDeque::with_capacity(accuracy_capacity),
            tuning_window: TuningWindow::new(num_ramps, tuning_capacity),
            ramp_exits: vec![0; num_ramps],
            requests_since_adjust: 0,
            total_requests: 0,
            total_correct: 0,
        }
    }

    /// Number of ramps currently monitored.
    pub fn num_ramps(&self) -> usize {
        self.num_ramps
    }

    /// Shared bookkeeping for one request: everything except the tuning
    /// window's observation columns.
    #[inline]
    fn note_request(&mut self, exited: Option<usize>, correct: bool) {
        if self.accuracy_window.len() == self.accuracy_capacity {
            self.accuracy_window.pop_front();
        }
        self.accuracy_window.push_back(correct);
        if let Some(idx) = exited {
            if idx < self.num_ramps {
                self.ramp_exits[idx] += 1;
            }
        }
        self.requests_since_adjust += 1;
        self.total_requests += 1;
        if correct {
            self.total_correct += 1;
        }
    }

    /// Record feedback for one request.
    pub fn record(&mut self, feedback: RequestFeedback) {
        debug_assert_eq!(feedback.observations.len(), self.num_ramps);
        self.note_request(feedback.exited, feedback.correct);
        self.tuning_window.push(
            &feedback.observations,
            feedback.exited,
            feedback.correct,
            feedback.batch_size,
        );
    }

    /// Ingest one delivered [`ProfileRecord`] wholesale: every request in the
    /// batch enters the accuracy/tuning windows exactly as if fed one by one
    /// through [`Monitor::record`], but via slice copies into the columnar
    /// window — no per-request `Vec` is built.
    pub fn record_batch(&mut self, record: &ProfileRecord) {
        debug_assert_eq!(record.num_ramps, self.num_ramps);
        debug_assert_eq!(
            record.observations.len(),
            record.releases.len() * record.num_ramps
        );
        for (i, release) in record.releases.iter().enumerate() {
            self.note_request(release.exit, release.correct);
            self.tuning_window.push(
                record.request_observations(i),
                release.exit,
                release.correct,
                record.batch_size,
            );
        }
    }

    /// Accuracy over the short trigger window (1.0 when empty).
    pub fn windowed_accuracy(&self) -> f64 {
        if self.accuracy_window.is_empty() {
            return 1.0;
        }
        self.accuracy_window.iter().filter(|&&c| c).count() as f64
            / self.accuracy_window.len() as f64
    }

    /// True once the trigger window has filled at least once.
    pub fn accuracy_window_full(&self) -> bool {
        self.accuracy_window.len() == self.accuracy_capacity
    }

    /// Cumulative accuracy since the monitor was created.
    pub fn cumulative_accuracy(&self) -> f64 {
        if self.total_requests == 0 {
            return 1.0;
        }
        self.total_correct as f64 / self.total_requests as f64
    }

    /// The columnar tuning window (the incremental tuner's input).
    pub fn window(&self) -> &TuningWindow {
        &self.tuning_window
    }

    /// The recorded tuning window (oldest first).
    pub fn tuning_records(&self) -> Vec<RequestFeedback> {
        self.tuning_window.records()
    }

    /// Number of records currently in the tuning window.
    pub fn tuning_window_len(&self) -> usize {
        self.tuning_window.len()
    }

    /// Per-ramp exit rates since the last ramp adjustment.
    pub fn exit_rates(&self) -> Vec<f64> {
        if self.requests_since_adjust == 0 {
            return vec![0.0; self.num_ramps];
        }
        self.ramp_exits
            .iter()
            .map(|&e| e as f64 / self.requests_since_adjust as f64)
            .collect()
    }

    /// Raw per-ramp exit counts since the last ramp adjustment.
    pub fn exit_counts(&self) -> &[u64] {
        &self.ramp_exits
    }

    /// Requests observed since the last ramp adjustment.
    pub fn requests_since_adjust(&self) -> u64 {
        self.requests_since_adjust
    }

    /// Total requests observed.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Reset ramp-aligned state after the active ramp set changed; previous
    /// observations no longer line up with the new ramp indices.
    pub fn reset_for_new_ramps(&mut self, num_ramps: usize) {
        self.num_ramps = num_ramps;
        self.ramp_exits = vec![0; num_ramps];
        self.requests_since_adjust = 0;
        self.tuning_window.clear_for_ramps(num_ramps);
        // The accuracy trigger window deliberately survives: accuracy is a
        // property of released results, not of any particular ramp set.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_exec::RequestRelease;
    use apparate_sim::SimTime;

    fn feedback(entropies: &[f64], exited: Option<usize>, correct: bool) -> RequestFeedback {
        RequestFeedback {
            observations: entropies
                .iter()
                .map(|&e| RampObservation {
                    entropy: e,
                    agrees: correct,
                })
                .collect(),
            exited,
            correct,
            batch_size: 4,
        }
    }

    #[test]
    fn accuracy_window_tracks_recent_results() {
        let mut m = Monitor::new(2, 4, 16);
        assert_eq!(m.windowed_accuracy(), 1.0);
        for _ in 0..4 {
            m.record(feedback(&[0.1, 0.1], Some(0), true));
        }
        assert!(m.accuracy_window_full());
        assert_eq!(m.windowed_accuracy(), 1.0);
        for _ in 0..2 {
            m.record(feedback(&[0.1, 0.1], Some(0), false));
        }
        assert!((m.windowed_accuracy() - 0.5).abs() < 1e-9);
        // The window slides: four more correct results push the errors out.
        for _ in 0..4 {
            m.record(feedback(&[0.1, 0.1], None, true));
        }
        assert_eq!(m.windowed_accuracy(), 1.0);
        assert!(m.cumulative_accuracy() < 1.0);
    }

    #[test]
    fn exit_rates_count_per_ramp() {
        let mut m = Monitor::new(3, 16, 64);
        for i in 0..10 {
            let exited = match i % 3 {
                0 => Some(0),
                1 => Some(2),
                _ => None,
            };
            m.record(feedback(&[0.5, 0.5, 0.5], exited, true));
        }
        let rates = m.exit_rates();
        assert!((rates[0] - 0.4).abs() < 1e-9);
        assert_eq!(rates[1], 0.0);
        assert!((rates[2] - 0.3).abs() < 1e-9);
        assert_eq!(m.requests_since_adjust(), 10);
        assert_eq!(m.exit_counts(), &[4, 0, 3]);
    }

    #[test]
    fn tuning_window_is_bounded() {
        let mut m = Monitor::new(1, 16, 8);
        for i in 0..20 {
            m.record(feedback(&[i as f64 / 20.0], None, true));
        }
        assert_eq!(m.tuning_window_len(), 8);
        let records = m.tuning_records();
        // The oldest retained record is request 12 (entropy 0.6).
        assert!((records[0].observations[0].entropy - 0.6).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_ramp_state_but_keeps_accuracy() {
        let mut m = Monitor::new(2, 4, 8);
        for _ in 0..4 {
            m.record(feedback(&[0.1, 0.1], Some(1), false));
        }
        assert!(m.windowed_accuracy() < 1.0);
        m.reset_for_new_ramps(3);
        assert_eq!(m.num_ramps(), 3);
        assert_eq!(m.exit_counts(), &[0, 0, 0]);
        assert_eq!(m.requests_since_adjust(), 0);
        assert_eq!(m.tuning_window_len(), 0);
        // Accuracy history survives, so a violation can still trigger tuning
        // right after an adjustment.
        assert!(m.windowed_accuracy() < 1.0);
        assert_eq!(m.total_requests(), 4);
    }

    #[test]
    fn empty_exit_rates_are_zero() {
        let m = Monitor::new(2, 16, 64);
        assert_eq!(m.exit_rates(), vec![0.0, 0.0]);
        assert_eq!(m.cumulative_accuracy(), 1.0);
    }

    /// Build a flat ProfileRecord carrying the given per-request feedback.
    fn profile_record(rows: &[RequestFeedback]) -> ProfileRecord {
        let num_ramps = rows.first().map(|r| r.observations.len()).unwrap_or(0);
        ProfileRecord {
            completed_at: SimTime::ZERO,
            batch_size: rows.first().map(|r| r.batch_size).unwrap_or(0),
            num_ramps,
            observations: rows
                .iter()
                .flat_map(|r| r.observations.iter().copied())
                .collect(),
            releases: rows
                .iter()
                .enumerate()
                .map(|(i, r)| RequestRelease {
                    id: i as u64,
                    exit: r.exited,
                    correct: r.correct,
                })
                .collect(),
            config_epoch: 0,
        }
    }

    #[test]
    fn record_batch_matches_per_request_ingest() {
        let rows: Vec<RequestFeedback> = (0..20)
            .map(|i| {
                feedback(
                    &[i as f64 / 20.0, 1.0 - i as f64 / 20.0],
                    if i % 3 == 0 { Some(i % 2) } else { None },
                    i % 5 != 0,
                )
            })
            .collect();
        let mut one_by_one = Monitor::new(2, 4, 8);
        for row in &rows {
            one_by_one.record(row.clone());
        }
        let mut batched = Monitor::new(2, 4, 8);
        batched.record_batch(&profile_record(&rows[..12]));
        batched.record_batch(&profile_record(&rows[12..]));
        assert_eq!(batched.windowed_accuracy(), one_by_one.windowed_accuracy());
        assert_eq!(batched.exit_counts(), one_by_one.exit_counts());
        assert_eq!(batched.total_requests(), one_by_one.total_requests());
        assert_eq!(
            batched.cumulative_accuracy(),
            one_by_one.cumulative_accuracy()
        );
        let a = batched.tuning_records();
        let b = one_by_one.tuning_records();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.exited, y.exited);
            assert_eq!(x.correct, y.correct);
            assert_eq!(x.batch_size, y.batch_size);
            for (ox, oy) in x.observations.iter().zip(y.observations.iter()) {
                assert_eq!(ox.entropy, oy.entropy);
                assert_eq!(ox.agrees, oy.agrees);
            }
        }
        assert_eq!(batched.window().version(), one_by_one.window().version());
    }

    #[test]
    fn window_histograms_track_pushes_and_evictions() {
        let mut w = TuningWindow::new(1, 4);
        for i in 0..4 {
            w.push(
                &[RampObservation {
                    entropy: 0.1 + 0.2 * i as f64,
                    agrees: true,
                }],
                None,
                true,
                1,
            );
        }
        // Mass at 0.1, 0.3, 0.5, 0.7; nothing above 0.8.
        assert!(!w.range_provably_empty(0, 0.0, 1.0));
        assert!(w.range_provably_empty(0, 0.8, 1.0));
        // Evict 0.1 (oldest) by pushing 0.9: low range empties, high fills.
        w.push(
            &[RampObservation {
                entropy: 0.9,
                agrees: true,
            }],
            None,
            true,
            1,
        );
        assert!(w.range_provably_empty(0, 0.0, 0.05));
        assert!(!w.range_provably_empty(0, 0.8, 1.0));
        assert_eq!(w.len(), 4);
        // The materialised view drops the evicted record.
        let records = w.records();
        assert!((records[0].observations[0].entropy - 0.3).abs() < 1e-12);
        assert!((records[3].observations[0].entropy - 0.9).abs() < 1e-12);
    }

    #[test]
    fn window_versions_advance_on_every_mutation() {
        let mut w = TuningWindow::new(2, 4);
        let v0 = w.version();
        w.push(
            &[
                RampObservation {
                    entropy: 0.2,
                    agrees: true,
                },
                RampObservation {
                    entropy: 0.4,
                    agrees: false,
                },
            ],
            Some(0),
            true,
            2,
        );
        assert!(w.version() > v0);
        assert!(w.ramp_version(0) > 0 && w.ramp_version(1) > 0);
        let v1 = w.version();
        w.clear_for_ramps(3);
        assert!(w.version() > v1);
        assert_eq!(w.num_ramps(), 3);
        assert_eq!(w.len(), 0);
        assert!(w.range_provably_empty(2, 0.0, 1.0));
    }
}
