//! Property suite for the streaming admission front end, swept over seeds ×
//! burst shapes × replica counts:
//!
//! * hysteresis never oscillates — no two opposite-direction pace nudges
//!   within the stop-threshold band, anywhere in any decision log;
//! * the pacing rate never leaves the ±1% clamp;
//! * no admission queue ever exceeds its bound;
//! * the shed set is exactly the one the documented SLO queue model predicts
//!   (an independent replay of the queue semantics reproduces every
//!   admit/shed verdict, queue depth and modelled delay);
//! * pacing only ever delays arrivals, monotonically.
//!
//! Plus the causality half (mirroring the epoch-gating suites of earlier
//! PRs): admission decisions may consume only telemetry already *delivered*
//! over the charged feedback link — an in-flight `ProfileRecord` must not
//! perturb a single decision until its simulated transfer completes.

use std::collections::VecDeque;

use apparate_exec::{feedback_link, LinkCost, ProfileRecord};
use apparate_serving::{
    stream_arrivals, AdmissionConfig, ArrivalTrace, FleetDispatch, IngestOutcome, IngestSession,
    PACE_BASE_PPM, PACE_MAX_PPM, PACE_MIN_PPM,
};
use apparate_sim::{SimDuration, SimTime};
use apparate_telemetry::{
    render_metrics_json_lines, render_trace_json_lines, Telemetry, TelemetryConfig,
};

const SEEDS: [u64; 3] = [1, 7, 42];
const REPLICA_COUNTS: [usize; 4] = [1, 2, 4, 8];
const DISPATCHES: [FleetDispatch; 2] = [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded];

/// 50 req/s against a 15 ms batch-1 service: a single replica is ~33%
/// overloaded (sheds under every shape), eight replicas are far underloaded
/// (the controller should mostly idle) — the sweep covers both regimes.
fn service_estimate() -> SimDuration {
    SimDuration::from_millis(15)
}

fn admission_config() -> AdmissionConfig {
    AdmissionConfig::for_slo(SimDuration::from_millis(45), 3)
}

/// The burst shapes of the arrival-process module: steady, memoryless, and
/// diurnal-with-bursts.
fn burst_shapes(seed: u64) -> Vec<(&'static str, ArrivalTrace)> {
    vec![
        ("fixed-rate", ArrivalTrace::fixed_rate(400, 50.0)),
        ("poisson", ArrivalTrace::poisson(400, 50.0, seed)),
        ("maf-like", ArrivalTrace::maf_like(400, 50.0, seed)),
    ]
}

fn admission_outcome(
    trace: &ArrivalTrace,
    replicas: usize,
    dispatch: FleetDispatch,
) -> IngestOutcome {
    stream_arrivals(
        trace,
        replicas,
        dispatch,
        service_estimate(),
        Some(admission_config()),
        &Telemetry::disabled(),
    )
}

/// Independent replay of the documented queue semantics over a decision log:
/// bounded per-replica queues of modelled finish times, drained up to each
/// arrival's forwarded time, shed exactly when the selected queue is full.
/// Asserts every logged verdict, depth, delay and replica choice matches.
fn assert_shed_set_matches_queue_model(
    outcome: &IngestOutcome,
    replicas: usize,
    dispatch: FleetDispatch,
    context: &str,
) {
    let service = service_estimate();
    let bound = admission_config().queue_bound;
    let mut backlog = vec![SimTime::ZERO; replicas];
    let mut queues: Vec<VecDeque<SimTime>> = (0..replicas).map(|_| VecDeque::new()).collect();
    for (offered, d) in outcome.decisions.iter().enumerate() {
        for queue in &mut queues {
            while queue
                .front()
                .is_some_and(|&finish| finish <= d.forwarded_at)
            {
                queue.pop_front();
            }
        }
        let replica = match dispatch {
            FleetDispatch::RoundRobin => offered % replicas,
            FleetDispatch::LeastLoaded => (0..replicas)
                .min_by_key(|&r| (backlog[r], r))
                .expect("at least one replica"),
        };
        assert_eq!(replica, d.replica, "replica choice diverged ({context})");
        let depth = queues[replica].len();
        assert_eq!(depth, d.queue_depth, "queue depth diverged ({context})");
        let delay = backlog[replica].saturating_since(d.forwarded_at);
        assert_eq!(
            delay.as_micros(),
            d.delay_us,
            "modelled delay diverged ({context})"
        );
        let predicted_admit = depth < bound;
        assert_eq!(
            predicted_admit,
            d.admitted,
            "arrival {offered}: the SLO queue model predicts {} but the session {} ({context})",
            if predicted_admit { "admit" } else { "shed" },
            if d.admitted { "admitted" } else { "shed" },
        );
        if predicted_admit {
            backlog[replica] = backlog[replica].max(d.forwarded_at) + service;
            queues[replica].push_back(backlog[replica]);
        }
    }
}

#[test]
fn admission_properties_hold_across_seeds_shapes_and_replica_counts() {
    let bound = admission_config().queue_bound;
    for seed in SEEDS {
        for (shape, trace) in burst_shapes(seed) {
            for replicas in REPLICA_COUNTS {
                for dispatch in DISPATCHES {
                    let context = format!("seed={seed} shape={shape} ×{replicas} {dispatch}");
                    let outcome = admission_outcome(&trace, replicas, dispatch);
                    assert_eq!(outcome.stats.offered, trace.len(), "{context}");

                    // Hysteresis never oscillates.
                    assert_eq!(outcome.oscillations(), 0, "oscillation ({context})");

                    // Pace always within the ±1% clamp; queue depth bounded.
                    for d in &outcome.decisions {
                        assert!(
                            (PACE_MIN_PPM..=PACE_MAX_PPM).contains(&d.pace_ppm),
                            "pace {} outside clamp ({context})",
                            d.pace_ppm
                        );
                        if let Some(nudge) = d.nudge_ppm {
                            assert!(
                                nudge.unsigned_abs() <= (PACE_BASE_PPM / 100),
                                "nudge {nudge} exceeds 1% ({context})"
                            );
                        }
                        assert!(
                            d.queue_depth < bound || !d.admitted,
                            "admitted past the queue bound ({context})"
                        );
                        assert!(
                            d.forwarded_at >= d.at,
                            "pacing moved an arrival earlier ({context})"
                        );
                    }
                    assert!(
                        outcome.stats.max_depth <= bound,
                        "queue depth {} exceeded bound {bound} ({context})",
                        outcome.stats.max_depth
                    );
                    assert!(outcome.stats.min_pace_ppm >= PACE_MIN_PPM, "{context}");
                    assert!(outcome.stats.max_pace_ppm <= PACE_MAX_PPM, "{context}");

                    // Forwarded times are monotone across the admission stream.
                    for pair in outcome.decisions.windows(2) {
                        assert!(
                            pair[1].forwarded_at >= pair[0].forwarded_at,
                            "forwarded times not monotone ({context})"
                        );
                    }

                    // Shed requests are exactly those the SLO model predicts.
                    assert_shed_set_matches_queue_model(&outcome, replicas, dispatch, &context);
                }
            }
        }
    }
}

#[test]
fn underloaded_fleet_sheds_nothing_and_barely_slews() {
    // Eight replicas at 50 req/s with 15 ms service: offered load is ~9% of
    // capacity, so the SLO model should admit everything.
    for seed in SEEDS {
        let trace = ArrivalTrace::poisson(400, 50.0, seed);
        let outcome = admission_outcome(&trace, 8, FleetDispatch::LeastLoaded);
        assert_eq!(outcome.stats.shed, 0, "seed={seed}");
        assert_eq!(outcome.stats.admitted, trace.len(), "seed={seed}");
    }
}

#[test]
fn overloaded_single_replica_sheds() {
    // One replica at 100 req/s with 15 ms service is 50% overloaded: the
    // bounded queue must shed a sustained fraction under every shape.
    for seed in SEEDS {
        let shapes = [
            ("fixed-rate", ArrivalTrace::fixed_rate(400, 100.0)),
            ("poisson", ArrivalTrace::poisson(400, 100.0, seed)),
            ("maf-like", ArrivalTrace::maf_like(400, 100.0, seed)),
        ];
        for (shape, trace) in shapes {
            let outcome = admission_outcome(&trace, 1, FleetDispatch::LeastLoaded);
            assert!(
                outcome.stats.shed_rate() > 0.1,
                "seed={seed} shape={shape}: shed rate {:.3} too low for a 150% load",
                outcome.stats.shed_rate()
            );
        }
    }
}

#[test]
fn recording_telemetry_emits_admission_trace_without_perturbing_decisions() {
    // A recorded session must produce the `admission` event kind, the
    // queue-depth/pace gauges and the admitted/shed counters — and make
    // byte-for-byte the same decisions as the untraced session (observation
    // must never perturb the simulation).
    let trace = ArrivalTrace::maf_like(400, 100.0, 42);
    let telemetry = Telemetry::recording(TelemetryConfig::default());
    let traced = stream_arrivals(
        &trace,
        2,
        FleetDispatch::LeastLoaded,
        service_estimate(),
        Some(admission_config()),
        &telemetry,
    );
    let untraced = admission_outcome(&trace, 2, FleetDispatch::LeastLoaded);
    assert_eq!(traced.decisions, untraced.decisions);
    assert_eq!(traced.stats, untraced.stats);
    assert!(traced.stats.shed > 0, "overload fixture stopped shedding");

    let snapshot = telemetry.snapshot().expect("recording sink");
    let events = render_trace_json_lines(&snapshot);
    assert!(events.contains("\"kind\":\"admission\""));
    assert!(events.contains("\"admitted\":false"), "shed events missing");
    let metrics = render_metrics_json_lines(&snapshot);
    for series in [
        "admission_queue_depth",
        "admission_pace_ppm",
        "ingest_admitted",
        "ingest_shed",
    ] {
        assert!(metrics.contains(series), "missing metrics series {series}");
    }
}

// --- Causality: delivered-only feedback -----------------------------------

fn profile_record(completed_at: SimTime) -> ProfileRecord {
    ProfileRecord {
        completed_at,
        batch_size: 1,
        num_ramps: 0,
        observations: Vec::new(),
        releases: Vec::new(),
        config_epoch: 0,
    }
}

fn admission_decisions_with_link(
    trace: &ArrivalTrace,
    cost: LinkCost,
    sent_at: SimTime,
) -> IngestOutcome {
    let (tx, rx) = feedback_link::<ProfileRecord>(cost);
    // Two records: the first only anchors the completion cadence, the second
    // produces a refined per-request service estimate (80 ms — far above the
    // 15 ms static estimate, so any consumption visibly shifts the
    // controller's SLO-headroom offsets).
    tx.send(profile_record(SimTime::from_micros(1_000)), sent_at);
    tx.send(profile_record(SimTime::from_micros(81_000)), sent_at);
    let mut session = IngestSession::new(2, FleetDispatch::LeastLoaded, service_estimate())
        .with_admission(admission_config())
        .with_feedback(rx);
    for &at in trace.times() {
        session.offer(at);
    }
    session.finish()
}

#[test]
fn in_flight_profile_records_never_perturb_admission_decisions() {
    // The records are sent before the run but the charged link holds them in
    // flight past the end of the trace — so every decision must be
    // byte-identical to a session with no feedback link at all. Peeking at
    // undelivered telemetry is exactly what the charged-link design forbids.
    let trace = ArrivalTrace::maf_like(400, 50.0, 42);
    let undeliverable = LinkCost {
        fixed_us: 1e12,
        per_kib_us: 0.0,
    };
    let with_in_flight = admission_decisions_with_link(&trace, undeliverable, SimTime::ZERO);
    let without_feedback = admission_outcome(&trace, 2, FleetDispatch::LeastLoaded);
    assert_eq!(with_in_flight.decisions, without_feedback.decisions);
    assert_eq!(with_in_flight.stats, without_feedback.stats);
}

#[test]
fn delivered_profile_records_refine_the_controller() {
    // Same records over a free link, delivered before the first arrival: the
    // refined 80 ms service estimate erases the SLO headroom, so the
    // controller's offsets — and through them the pacing/decision log — must
    // visibly change. (Guards against the causality test passing vacuously
    // because feedback is ignored altogether.)
    let trace = ArrivalTrace::maf_like(400, 50.0, 42);
    let delivered = admission_decisions_with_link(&trace, LinkCost::FREE, SimTime::ZERO);
    let without_feedback = admission_outcome(&trace, 2, FleetDispatch::LeastLoaded);
    assert_ne!(
        delivered.decisions, without_feedback.decisions,
        "delivered feedback had no observable effect on admission control"
    );
}

#[test]
fn feedback_takes_effect_only_after_its_simulated_delivery_time() {
    // Records sent mid-trace over a fixed-latency link: every decision for
    // an arrival before the delivery time must match the no-feedback run
    // exactly; the runs must diverge only at or after delivery.
    let trace = ArrivalTrace::maf_like(400, 50.0, 42);
    let span = *trace.times().last().expect("non-empty trace");
    let mid = SimTime::from_micros(span.as_micros() / 2);
    let cost = LinkCost {
        fixed_us: 100.0,
        per_kib_us: 0.0,
    };
    let deliver_at = mid + SimDuration::from_micros(100);
    let mixed = admission_decisions_with_link(&trace, cost, mid);
    let without_feedback = admission_outcome(&trace, 2, FleetDispatch::LeastLoaded);
    let mut diverged = false;
    for (a, b) in mixed.decisions.iter().zip(&without_feedback.decisions) {
        if a.at < deliver_at {
            assert_eq!(
                a, b,
                "decision at {:?} diverged before the records were delivered",
                a.at
            );
        } else if a != b {
            diverged = true;
        }
    }
    assert!(
        diverged,
        "post-delivery decisions never consumed the delivered records"
    );
}
