//! Request arrival processes.
//!
//! The paper drives classification workloads with Microsoft Azure Functions
//! (MAF) trace snippets — bursty, time-varying arrival rates — CV workloads
//! with fixed-fps video frames, and generative workloads with Poisson arrivals
//! tuned to saturate the GPU (§4.1). This module synthesises all three.

use apparate_sim::{DeterministicRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A concrete sequence of arrival times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalTrace {
    times: Vec<SimTime>,
}

impl ArrivalTrace {
    /// Wrap raw arrival times (must be non-decreasing; enforced by sorting).
    pub fn from_times(mut times: Vec<SimTime>) -> ArrivalTrace {
        times.sort();
        ArrivalTrace { times }
    }

    /// Arrival times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Total span of the trace.
    pub fn span(&self) -> SimDuration {
        match (self.times.first(), self.times.last()) {
            (Some(&first), Some(&last)) => last - first,
            _ => SimDuration::ZERO,
        }
    }

    /// Mean arrival rate in requests per second.
    pub fn mean_rate(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        (self.len().saturating_sub(1)) as f64 / span
    }

    /// Fixed-rate arrivals: `n` requests at `rate_hz` requests per second
    /// (e.g. 30 fps video frames).
    pub fn fixed_rate(n: usize, rate_hz: f64) -> ArrivalTrace {
        assert!(rate_hz > 0.0, "rate must be positive");
        let gap_us = 1_000_000.0 / rate_hz;
        let times = (0..n)
            .map(|i| SimTime::from_micros((i as f64 * gap_us).round() as u64))
            .collect();
        ArrivalTrace { times }
    }

    /// Poisson arrivals with the given mean rate (requests per second).
    pub fn poisson(n: usize, rate_hz: f64, seed: u64) -> ArrivalTrace {
        assert!(rate_hz > 0.0, "rate must be positive");
        let rng = DeterministicRng::new(seed).child(0x9015_5071);
        let mut stream = rng.stream(&[0]);
        let mut t = 0.0f64;
        let times = (0..n)
            .map(|_| {
                t += stream.exponential(rate_hz);
                SimTime::from_micros((t * 1_000_000.0).round() as u64)
            })
            .collect();
        ArrivalTrace { times }
    }

    /// MAF-like bursty arrivals: a Poisson process whose rate is modulated by
    /// a slowly varying baseline (diurnal-style sinusoid) plus occasional
    /// multiplicative bursts, mimicking the Azure Functions traces used in
    /// prior serving work (Clockwork, AlpaServe) and in §4.1.
    pub fn maf_like(n: usize, mean_rate_hz: f64, seed: u64) -> ArrivalTrace {
        assert!(mean_rate_hz > 0.0, "rate must be positive");
        let rng = DeterministicRng::new(seed).child(0x3A41_F00D);
        let mut stream = rng.stream(&[1]);
        let mut t = 0.0f64;
        let mut times = Vec::with_capacity(n);
        // Burst state: occasionally the rate jumps by 2–4x for a short period.
        let mut burst_until = 0.0f64;
        let mut burst_factor = 1.0f64;
        for i in 0..n {
            // Slow sinusoidal modulation with period ~200 requests.
            let phase = i as f64 / 200.0 * std::f64::consts::TAU;
            let diurnal = 1.0 + 0.4 * phase.sin();
            if t >= burst_until && stream.chance(0.01) {
                burst_factor = stream.uniform(2.0, 4.0);
                burst_until = t + stream.uniform(0.2, 1.0);
            }
            let factor = if t < burst_until { burst_factor } else { 1.0 };
            let rate = (mean_rate_hz * diurnal * factor).max(0.1);
            t += stream.exponential(rate);
            times.push(SimTime::from_micros((t * 1_000_000.0).round() as u64));
        }
        ArrivalTrace { times }
    }

    /// Scale the arrival rate by `factor` (>1 compresses inter-arrival gaps).
    /// Used e.g. to upsample 30 fps video to 120 fps for the SLO sensitivity
    /// experiment (§4.2, Figure 17).
    pub fn scaled_rate(&self, factor: f64) -> ArrivalTrace {
        assert!(factor > 0.0, "factor must be positive");
        let times = self
            .times
            .iter()
            .map(|t| SimTime::from_micros((t.as_micros() as f64 / factor).round() as u64))
            .collect();
        ArrivalTrace { times }
    }

    /// Take the first `n` arrivals.
    pub fn truncated(&self, n: usize) -> ArrivalTrace {
        ArrivalTrace {
            times: self.times.iter().copied().take(n).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_spacing() {
        let t = ArrivalTrace::fixed_rate(31, 30.0);
        assert_eq!(t.len(), 31);
        let gap = t.times()[1] - t.times()[0];
        assert!((gap.as_millis_f64() - 33.333).abs() < 0.01);
        assert!((t.mean_rate() - 30.0).abs() < 0.5);
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let t = ArrivalTrace::poisson(5000, 100.0, 7);
        assert!(
            (t.mean_rate() - 100.0).abs() < 10.0,
            "rate {}",
            t.mean_rate()
        );
        // Times must be sorted (non-decreasing).
        assert!(t.times().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = ArrivalTrace::poisson(100, 50.0, 3);
        let b = ArrivalTrace::poisson(100, 50.0, 3);
        let c = ArrivalTrace::poisson(100, 50.0, 4);
        assert_eq!(a.times(), b.times());
        assert_ne!(a.times(), c.times());
    }

    #[test]
    fn maf_like_is_burstier_than_poisson() {
        let maf = ArrivalTrace::maf_like(4000, 80.0, 11);
        let poisson = ArrivalTrace::poisson(4000, 80.0, 11);
        // Coefficient of variation of inter-arrival gaps should be larger for
        // the bursty trace.
        let cv = |trace: &ArrivalTrace| {
            let gaps: Vec<f64> = trace
                .times()
                .windows(2)
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&maf) > cv(&poisson),
            "maf cv {} poisson cv {}",
            cv(&maf),
            cv(&poisson)
        );
    }

    #[test]
    fn scaled_rate_compresses_time() {
        let base = ArrivalTrace::fixed_rate(10, 30.0);
        let fast = base.scaled_rate(4.0);
        assert!((fast.mean_rate() - 120.0).abs() < 2.0);
        assert_eq!(fast.len(), base.len());
    }

    #[test]
    fn truncated_takes_prefix() {
        let t = ArrivalTrace::fixed_rate(100, 10.0).truncated(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.times()[4], SimTime::from_micros(400_000));
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = ArrivalTrace::from_times(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.mean_rate(), 0.0);
        assert_eq!(t.span(), SimDuration::ZERO);
    }
}
