//! The classification serving simulator.
//!
//! A discrete-event loop reproducing the serving pipeline of §2.1: requests
//! arrive according to a trace, wait in a FIFO queue, are drained into batches
//! by a [`BatchingPolicy`], and execute on a (single) simulated GPU. The
//! pluggable [`ExitPolicy`] decides, per batch, when each request's *result*
//! is released and how long the batch holds the GPU — this is the hook through
//! which vanilla serving, Apparate, and every baseline integrate without the
//! platform knowing anything about early exits (mirroring how Apparate "runs
//! directly atop existing serving platforms").

use crate::batching::{BatchDecision, BatchingPolicy};
use crate::request::{Request, RequestRecord};
use crate::traces::ArrivalTrace;
use apparate_exec::{
    FeedbackSender, LinkStats, ProfileRecord, RampObservation, RequestRelease, SampleSemantics,
};
use apparate_sim::{EventQueue, SimDuration, SimTime};
use apparate_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Window (in completed requests) of the `exit_rate_rolling` telemetry gauge.
const ROLLING_EXIT_WINDOW: usize = 256;

/// Per-batch profiling data a policy wants streamed to its controller: what
/// every active ramp observed for every request, plus the release decisions.
/// The platform stamps it with completion time and request ids and publishes
/// it on the GPU → controller feedback link (§3's non-blocking profiling
/// stream); policies without a controller return `None` and nothing is sent.
#[derive(Debug, Clone, Default)]
pub struct BatchProfile {
    /// Number of active ramps per request (the row stride of `observations`).
    pub num_ramps: usize,
    /// Flat request-major observations: request `i`'s ramp `r` observation is
    /// at index `i * num_ramps + r` (one contiguous allocation per batch).
    pub observations: Vec<RampObservation>,
    /// Per-request release metadata in batch order. The producing policy does
    /// not know request ids, so it leaves `id` zeroed; [`into_record`]
    /// stamps the real ids in place when the platform publishes the batch.
    ///
    /// [`into_record`]: BatchProfile::into_record
    pub releases: Vec<RequestRelease>,
    /// Configuration epoch the GPU was running when it produced the batch.
    pub config_epoch: u64,
}

impl BatchProfile {
    /// Stamp the profile into a wire-ready [`ProfileRecord`], filling in the
    /// request ids (batch order) the policy did not know. Borrows the ids so
    /// the caller can reuse one scratch buffer across batches.
    pub fn into_record(mut self, completed_at: SimTime, request_ids: &[u64]) -> ProfileRecord {
        debug_assert_eq!(self.releases.len(), request_ids.len());
        for (release, id) in self.releases.iter_mut().zip(request_ids) {
            release.id = *id;
        }
        ProfileRecord {
            completed_at,
            batch_size: request_ids.len() as u32,
            num_ramps: self.num_ramps,
            observations: self.observations,
            releases: self.releases,
            config_epoch: self.config_epoch,
        }
    }
}

/// Outcome of processing one batch, as reported by an [`ExitPolicy`].
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// How long the batch occupies the GPU (including any ramp overheads).
    pub gpu_time: SimDuration,
    /// Per-request outcomes, parallel to the batch slice passed in.
    pub per_request: Vec<RequestOutcome>,
    /// Profiling data for the policy's controller, if it has one; published by
    /// the platform on the feedback link when the batch completes.
    pub profile: Option<BatchProfile>,
}

/// Outcome for a single request within a batch.
#[derive(Debug, Clone, Copy)]
pub struct RequestOutcome {
    /// Offset from batch start at which the result is released.
    pub release_offset: SimDuration,
    /// Offset from batch start at which the input finishes the full model.
    pub completion_offset: SimDuration,
    /// Which active ramp (by index) the result exited at, if any.
    pub exit_ramp: Option<usize>,
    /// Whether the released result matches the original model's prediction.
    pub correct: bool,
}

/// A policy that maps batches to outcomes: vanilla serving, Apparate's
/// controller, static early-exit models, cascades, ...
pub trait ExitPolicy {
    /// Process one batch starting at `batch_start`. `batch` holds the requests
    /// in queue order.
    fn process_batch(&mut self, batch: &[Request], batch_start: SimTime) -> BatchOutcome;

    /// Human-readable policy name for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// Vanilla serving: every input runs the whole original model; the result is
/// released when the batch finishes.
#[derive(Debug, Clone)]
pub struct VanillaPolicy<F>
where
    F: Fn(u32) -> SimDuration,
{
    exec_time: F,
}

impl<F> VanillaPolicy<F>
where
    F: Fn(u32) -> SimDuration,
{
    /// Create a vanilla policy from a batch-size → execution-time function.
    pub fn new(exec_time: F) -> Self {
        VanillaPolicy { exec_time }
    }
}

impl<F> ExitPolicy for VanillaPolicy<F>
where
    F: Fn(u32) -> SimDuration,
{
    fn process_batch(&mut self, batch: &[Request], _batch_start: SimTime) -> BatchOutcome {
        let gpu_time = (self.exec_time)(batch.len() as u32);
        BatchOutcome {
            gpu_time,
            per_request: batch
                .iter()
                .map(|_| RequestOutcome {
                    release_offset: gpu_time,
                    completion_offset: gpu_time,
                    exit_ramp: None,
                    correct: true,
                })
                .collect(),
            profile: None,
        }
    }

    fn name(&self) -> &str {
        "vanilla"
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Batching policy.
    pub policy: BatchingPolicy,
    /// SLO attached to every request (None = no SLO).
    pub slo: Option<SimDuration>,
}

impl ServingConfig {
    /// Clockwork-style SLO-aware serving with the given SLO and max batch.
    pub fn clockwork(slo_ms: f64, max_batch_size: u32) -> ServingConfig {
        ServingConfig {
            policy: BatchingPolicy::Clockwork { max_batch_size },
            slo: Some(SimDuration::from_millis_f64(slo_ms)),
        }
    }

    /// TF-Serving-style knob batching.
    pub fn tf_serve(slo_ms: f64, max_batch_size: u32, batch_timeout_ms: f64) -> ServingConfig {
        ServingConfig {
            policy: BatchingPolicy::TfServe {
                max_batch_size,
                batch_timeout: SimDuration::from_millis_f64(batch_timeout_ms),
            },
            slo: Some(SimDuration::from_millis_f64(slo_ms)),
        }
    }
}

/// Aggregate result of one serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingOutcome {
    /// Per-request records, in completion order.
    pub records: Vec<RequestRecord>,
    /// Batch sizes actually launched, in launch order.
    pub batch_sizes: Vec<u32>,
    /// Total GPU busy time.
    pub gpu_busy: SimDuration,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// GPU → controller profiling-stream statistics, when the run published
    /// feedback (one [`ProfileRecord`] per batch); `None` otherwise.
    pub feedback: Option<LinkStats>,
}

impl ServingOutcome {
    /// Response latencies (release − arrival) in milliseconds.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.latency().as_millis_f64())
            .collect()
    }

    /// Mean batch size across launched batches.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            return 0.0;
        }
        self.batch_sizes.iter().map(|&b| b as f64).sum::<f64>() / self.batch_sizes.len() as f64
    }

    /// Throughput in requests per second (completed requests over makespan).
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / secs
    }

    /// Fraction of requests whose released result matches the original model.
    pub fn accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.correct).count() as f64 / self.records.len() as f64
    }

    /// Fraction of requests that violated their SLO.
    pub fn slo_violation_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.slo_violated).count() as f64 / self.records.len() as f64
    }

    /// Fraction of requests whose result exited at a ramp.
    pub fn exit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|r| r.exit_ramp.is_some())
            .count() as f64
            / self.records.len() as f64
    }
}

/// Internal discrete events.
#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(usize),
    GpuFree,
    TimeoutCheck,
}

/// The serving simulator itself.
pub struct ServingSimulator {
    config: ServingConfig,
    telemetry: Telemetry,
    dispatch_ids: Option<Vec<u64>>,
}

impl ServingSimulator {
    /// Create a simulator with the given configuration.
    pub fn new(config: ServingConfig) -> ServingSimulator {
        ServingSimulator {
            config,
            telemetry: Telemetry::disabled(),
            dispatch_ids: None,
        }
    }

    /// Attach a telemetry handle: runs record `batch-formed` and
    /// `slo-violation` events plus queue-depth / batch-size / rolling
    /// exit-rate series. The default is the zero-cost disabled handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ServingSimulator {
        self.telemetry = telemetry;
        self
    }

    /// Trace a `dispatch` event per arrival, tagged with the given shared
    /// (fleet-global) request ids — one per trace arrival, in trace order.
    /// Fleet runners use this so dispatch events are emitted *inside* the run,
    /// at the arrival's sim time, interleaved with the replica's other events
    /// in sim-time order. No-op without a recording telemetry handle.
    pub fn with_dispatch_ids(mut self, ids: Vec<u64>) -> ServingSimulator {
        self.dispatch_ids = Some(ids);
        self
    }

    /// Run the full trace through the platform with the given exit policy and
    /// batch-time estimator (used by SLO-aware batching decisions; usually the
    /// same function the policy itself uses for GPU time). No profiling
    /// feedback is published; see [`ServingSimulator::run_with_feedback`].
    pub fn run(
        &self,
        trace: &ArrivalTrace,
        samples: &[SampleSemantics],
        policy: &mut dyn ExitPolicy,
        estimate_batch_time: &dyn Fn(u32) -> SimDuration,
    ) -> ServingOutcome {
        self.run_with_feedback(trace, samples, policy, estimate_batch_time, None)
    }

    /// Run the full trace, publishing one [`ProfileRecord`] per launched batch
    /// on `feedback` when the batch completes on the GPU (the §3 profiling
    /// stream). Policies that return no [`BatchProfile`] publish nothing.
    pub fn run_with_feedback(
        &self,
        trace: &ArrivalTrace,
        samples: &[SampleSemantics],
        policy: &mut dyn ExitPolicy,
        estimate_batch_time: &dyn Fn(u32) -> SimDuration,
        feedback: Option<&FeedbackSender<ProfileRecord>>,
    ) -> ServingOutcome {
        assert_eq!(
            trace.len(),
            samples.len(),
            "one semantic sample per arrival is required"
        );
        if let Some(ids) = &self.dispatch_ids {
            assert_eq!(
                ids.len(),
                trace.len(),
                "one dispatch id per arrival is required"
            );
        }
        let requests: Vec<Request> = trace
            .times()
            .iter()
            .zip(samples.iter())
            .enumerate()
            .map(|(i, (&at, &sem))| Request::classification(i as u64, at, sem, self.config.slo))
            .collect();

        let mut events: EventQueue<Event> = EventQueue::new();
        for (i, req) in requests.iter().enumerate() {
            events.schedule(req.arrival, Event::Arrival(i));
        }

        let mut queue: VecDeque<Request> = VecDeque::new();
        let mut gpu_busy = false;
        let mut records: Vec<RequestRecord> = Vec::with_capacity(requests.len());
        let mut batch_sizes: Vec<u32> = Vec::new();
        let mut total_gpu_busy = SimDuration::ZERO;
        let first_arrival = trace.times().first().copied().unwrap_or(SimTime::ZERO);
        let mut last_completion = first_arrival;
        let traced = self.telemetry.is_enabled();
        // Rolling early-exit window behind the `exit_rate_rolling` gauge;
        // only maintained when a recording handle is attached.
        let mut rolling_exits: VecDeque<bool> = VecDeque::new();
        // Scratch for the request ids stamped into each published profile,
        // reused across batches.
        let mut profile_ids: Vec<u64> = Vec::new();
        let mut rolling_hits = 0usize;

        while let Some((now, event)) = events.pop() {
            match event {
                Event::Arrival(i) => {
                    queue.push_back(requests[i].clone());
                    if traced {
                        if let Some(ids) = &self.dispatch_ids {
                            let request_id = ids[i];
                            let replica = self.telemetry.replica();
                            self.telemetry.emit(now, || EventKind::Dispatch {
                                request_id,
                                replica,
                            });
                        }
                        self.telemetry.gauge(now, "queue_depth", queue.len() as f64);
                    }
                }
                Event::GpuFree => {
                    gpu_busy = false;
                }
                Event::TimeoutCheck => {}
            }
            if gpu_busy {
                continue;
            }
            // GPU is idle: ask the batching policy what to do.
            let queued: Vec<Request> = queue.iter().cloned().collect();
            match self.config.policy.decide(&queued, now, estimate_batch_time) {
                BatchDecision::Idle => {}
                BatchDecision::WaitUntil(at) => {
                    events.schedule(at, Event::TimeoutCheck);
                }
                BatchDecision::Launch(size) => {
                    let size = size.min(queue.len() as u32).max(1);
                    let batch: Vec<Request> = queue.drain(..size as usize).collect();
                    let outcome = policy.process_batch(&batch, now);
                    debug_assert_eq!(outcome.per_request.len(), batch.len());
                    if let (Some(sender), Some(profile)) = (feedback, outcome.profile) {
                        // The GPU streams the batch's profiling data the
                        // moment the batch completes, non-blocking for
                        // serving; the controller sees it one link latency
                        // later (§3, §4.5).
                        let completed_at = now + outcome.gpu_time;
                        profile_ids.clear();
                        profile_ids.extend(batch.iter().map(|r| r.id));
                        sender.send(
                            profile.into_record(completed_at, &profile_ids),
                            completed_at,
                        );
                    }
                    batch_sizes.push(size);
                    total_gpu_busy += outcome.gpu_time;
                    if traced {
                        let queue_depth = queue.len();
                        let gpu_us = outcome.gpu_time.as_micros();
                        self.telemetry.emit(now, || EventKind::BatchFormed {
                            size,
                            queue_depth,
                            gpu_us,
                        });
                        self.telemetry.counter("batches", 1);
                        self.telemetry.gauge(now, "queue_depth", queue_depth as f64);
                        self.telemetry.gauge(now, "batch_size", size as f64);
                        self.telemetry.observe("batch_size", size as f64);
                    }
                    for (req, out) in batch.iter().zip(outcome.per_request.iter()) {
                        let released = now + out.release_offset;
                        let completed = now + out.completion_offset;
                        let slo_violated = req.deadline().map(|d| released > d).unwrap_or(false);
                        if traced {
                            if slo_violated {
                                let request_id = req.id;
                                let latency_us = (released - req.arrival).as_micros();
                                let slo_us = self.config.slo.map(|s| s.as_micros()).unwrap_or(0);
                                self.telemetry.emit(released, || EventKind::SloViolation {
                                    request_id,
                                    latency_us,
                                    slo_us,
                                });
                                self.telemetry.counter("slo_violations", 1);
                            }
                            rolling_exits.push_back(out.exit_ramp.is_some());
                            rolling_hits += out.exit_ramp.is_some() as usize;
                            if rolling_exits.len() > ROLLING_EXIT_WINDOW {
                                rolling_hits -= rolling_exits.pop_front().unwrap_or(false) as usize;
                            }
                            self.telemetry.gauge(
                                released,
                                "exit_rate_rolling",
                                rolling_hits as f64 / rolling_exits.len() as f64,
                            );
                        }
                        records.push(RequestRecord {
                            id: req.id,
                            arrival: req.arrival,
                            batch_start: now,
                            batch_size: size,
                            released,
                            completed,
                            exit_ramp: out.exit_ramp,
                            correct: out.correct,
                            slo_violated,
                        });
                        if completed > last_completion {
                            last_completion = completed;
                        }
                    }
                    gpu_busy = true;
                    events.schedule(now + outcome.gpu_time, Event::GpuFree);
                }
            }
        }

        records.sort_by_key(|r| r.id);
        ServingOutcome {
            records,
            batch_sizes,
            gpu_busy: total_gpu_busy,
            makespan: last_completion - first_arrival,
            feedback: feedback.map(|sender| sender.stats()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_sim::Percentiles;

    fn samples(n: usize) -> Vec<SampleSemantics> {
        (0..n)
            .map(|i| SampleSemantics::new(i as u64, 0.5))
            .collect()
    }

    /// Execution time model: 10 ms fixed + 2 ms per item.
    fn exec_time(b: u32) -> SimDuration {
        SimDuration::from_millis(10 + 2 * b as u64)
    }

    #[test]
    fn vanilla_immediate_serving_completes_everything() {
        let trace = ArrivalTrace::fixed_rate(50, 20.0);
        let sim = ServingSimulator::new(ServingConfig {
            policy: BatchingPolicy::Immediate,
            slo: None,
        });
        let mut policy = VanillaPolicy::new(exec_time);
        let out = sim.run(&trace, &samples(50), &mut policy, &exec_time);
        assert_eq!(out.records.len(), 50);
        assert!(out.accuracy() >= 1.0 - 1e-12);
        assert_eq!(out.exit_rate(), 0.0);
        assert!(out.mean_batch_size() >= 1.0);
        // Requests arrive every 50 ms and take 12 ms, so no queueing.
        let p = Percentiles::from_samples(&out.latencies_ms());
        assert!((p.p50 - 12.0).abs() < 0.5, "p50 {}", p.p50);
    }

    #[test]
    fn overload_builds_queues_and_bigger_batches_help_throughput() {
        // 200 requests at 100 rps; exec = 10 + 2b ms, so batch-1 capacity is
        // ~83 rps (overloaded) while batch-8 capacity is ~307 rps.
        let trace = ArrivalTrace::fixed_rate(200, 100.0);
        let run = |max_batch: u32| {
            let sim = ServingSimulator::new(ServingConfig {
                policy: BatchingPolicy::TfServe {
                    max_batch_size: max_batch,
                    batch_timeout: SimDuration::from_millis(2),
                },
                slo: None,
            });
            let mut policy = VanillaPolicy::new(exec_time);
            sim.run(&trace, &samples(200), &mut policy, &exec_time)
        };
        let small = run(1);
        let large = run(8);
        assert!(large.mean_batch_size() > small.mean_batch_size());
        // Larger batches finish the backlog sooner (higher throughput)...
        assert!(large.makespan < small.makespan);
        // ...but the un-queued latency of an individual request is worse than
        // the batch-1 serving time (the tension of Figure 1/2).
        let small_p = Percentiles::from_samples(&small.latencies_ms());
        let large_p = Percentiles::from_samples(&large.latencies_ms());
        // Under overload batch-1 queues grow without bound, so median latency
        // is far worse for the small-batch configuration.
        assert!(small_p.p50 > large_p.p50);
    }

    #[test]
    fn clockwork_respects_slo_when_feasible() {
        let trace = ArrivalTrace::fixed_rate(100, 50.0);
        let sim = ServingSimulator::new(ServingConfig::clockwork(60.0, 16));
        let mut policy = VanillaPolicy::new(exec_time);
        let out = sim.run(&trace, &samples(100), &mut policy, &exec_time);
        assert_eq!(out.records.len(), 100);
        assert!(
            out.slo_violation_rate() < 0.05,
            "violation rate {}",
            out.slo_violation_rate()
        );
    }

    #[test]
    fn gpu_busy_never_exceeds_makespan() {
        let trace = ArrivalTrace::poisson(300, 80.0, 5);
        let sim = ServingSimulator::new(ServingConfig::clockwork(100.0, 8));
        let mut policy = VanillaPolicy::new(exec_time);
        let out = sim.run(&trace, &samples(300), &mut policy, &exec_time);
        assert!(out.gpu_busy <= out.makespan + SimDuration::from_millis(1));
        assert!(out.throughput_rps() > 0.0);
    }

    #[test]
    fn traced_run_records_batches_and_queue_series() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let trace = ArrivalTrace::poisson(120, 120.0, 7);
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        let sim = ServingSimulator::new(ServingConfig::clockwork(25.0, 8))
            .with_telemetry(telemetry.clone());
        let mut policy = VanillaPolicy::new(exec_time);
        let out = sim.run(&trace, &samples(120), &mut policy, &exec_time);
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.count_kind("batch-formed"), out.batch_sizes.len());
        assert_eq!(snap.counter_total("batches"), out.batch_sizes.len() as u64);
        let depth = snap.series_named("queue_depth");
        assert_eq!(depth.len(), 1, "one series on replica 0");
        assert!(!depth[0].points.is_empty());
        // SLO violations in the trace reconcile with the outcome.
        let violated = out.records.iter().filter(|r| r.slo_violated).count();
        assert_eq!(snap.count_kind("slo-violation"), violated);
        // Causality: within the (single) replica, timestamps are monotone.
        let stamps: Vec<u64> = snap.events.iter().map(|e| e.at.as_micros()).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn untraced_run_is_identical_to_traced_run() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let trace = ArrivalTrace::poisson(100, 80.0, 3);
        let run = |telemetry: Option<Telemetry>| {
            let mut sim = ServingSimulator::new(ServingConfig::clockwork(60.0, 8));
            if let Some(t) = telemetry {
                sim = sim.with_telemetry(t);
            }
            let mut policy = VanillaPolicy::new(exec_time);
            sim.run(&trace, &samples(100), &mut policy, &exec_time)
        };
        let plain = run(None);
        let traced = run(Some(Telemetry::recording(TelemetryConfig::default())));
        assert_eq!(plain.records, traced.records);
        assert_eq!(plain.batch_sizes, traced.batch_sizes);
    }

    #[test]
    fn records_are_in_request_order_and_causal() {
        let trace = ArrivalTrace::poisson(100, 60.0, 9);
        let sim = ServingSimulator::new(ServingConfig::clockwork(80.0, 4));
        let mut policy = VanillaPolicy::new(exec_time);
        let out = sim.run(&trace, &samples(100), &mut policy, &exec_time);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.batch_start >= r.arrival);
            assert!(r.released >= r.batch_start);
            assert!(r.completed >= r.released);
        }
    }
}
