//! Requests and per-request serving records.

use apparate_exec::SampleSemantics;
use apparate_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An inference request submitted to the serving platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Unique id (monotone in submission order).
    pub id: u64,
    /// Arrival time at the platform's queue.
    pub arrival: SimTime,
    /// Semantic description used by the ramp-semantics model.
    pub semantics: SampleSemantics,
    /// Response-time SLO, if the application specified one.
    pub slo: Option<SimDuration>,
    /// For generative requests: number of output tokens to produce. Zero for
    /// classification requests.
    pub output_tokens: u32,
}

impl Request {
    /// A classification request.
    pub fn classification(
        id: u64,
        arrival: SimTime,
        semantics: SampleSemantics,
        slo: Option<SimDuration>,
    ) -> Request {
        Request {
            id,
            arrival,
            semantics,
            slo,
            output_tokens: 0,
        }
    }

    /// A generative request producing `output_tokens` tokens.
    pub fn generative(
        id: u64,
        arrival: SimTime,
        semantics: SampleSemantics,
        output_tokens: u32,
    ) -> Request {
        Request {
            id,
            arrival,
            semantics,
            slo: None,
            output_tokens,
        }
    }

    /// The absolute SLO deadline, if any.
    pub fn deadline(&self) -> Option<SimTime> {
        self.slo.map(|slo| self.arrival + slo)
    }
}

/// What happened to one request, as recorded by the serving simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id.
    pub id: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// When the batch containing the request started executing.
    pub batch_start: SimTime,
    /// Size of that batch.
    pub batch_size: u32,
    /// When the *result* was released to the application (early exit or full model).
    pub released: SimTime,
    /// When the input finished its full pass through the model (>= `released`).
    pub completed: SimTime,
    /// Index of the ramp the result exited at, if any.
    pub exit_ramp: Option<usize>,
    /// Whether the released result matches the original model's output.
    pub correct: bool,
    /// Whether the response violated its SLO.
    pub slo_violated: bool,
}

impl RequestRecord {
    /// Response latency: queueing plus serving until the result was released.
    pub fn latency(&self) -> SimDuration {
        self.released - self.arrival
    }

    /// Time spent waiting in the queue.
    pub fn queue_delay(&self) -> SimDuration {
        self.batch_start - self.arrival
    }

    /// Serving time: from batch start until the result was released.
    pub fn serving_time(&self) -> SimDuration {
        self.released - self.batch_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RequestRecord {
        RequestRecord {
            id: 1,
            arrival: SimTime::from_millis(10),
            batch_start: SimTime::from_millis(14),
            batch_size: 4,
            released: SimTime::from_millis(20),
            completed: SimTime::from_millis(26),
            exit_ramp: Some(2),
            correct: true,
            slo_violated: false,
        }
    }

    #[test]
    fn latency_decomposition() {
        let r = record();
        assert_eq!(r.latency(), SimDuration::from_millis(10));
        assert_eq!(r.queue_delay(), SimDuration::from_millis(4));
        assert_eq!(r.serving_time(), SimDuration::from_millis(6));
    }

    #[test]
    fn deadline_only_with_slo() {
        let sem = SampleSemantics::new(0, 0.5);
        let r = Request::classification(
            0,
            SimTime::from_millis(5),
            sem,
            Some(SimDuration::from_millis(30)),
        );
        assert_eq!(r.deadline(), Some(SimTime::from_millis(35)));
        let r2 = Request::generative(1, SimTime::ZERO, sem, 64);
        assert_eq!(r2.deadline(), None);
        assert_eq!(r2.output_tokens, 64);
    }
}
