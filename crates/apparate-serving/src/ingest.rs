//! Streaming ingest with SLO-driven admission control.
//!
//! Everything upstream of this module replays a pre-materialised
//! [`ArrivalTrace`]: the whole trace is known before the first request is
//! dispatched. A real front end sees arrivals one at a time, and under
//! overload it must decide *per arrival* whether to admit, pace or shed —
//! before knowing anything about the future. This module is that front end:
//!
//! * [`IncrementalDispatcher`] — the one-event-at-a-time counterpart of
//!   [`shard_arrivals`](crate::fleet::shard_arrivals) /
//!   [`shard_requests`](crate::fleet::shard_requests). On the same arrival
//!   prefix it makes *exactly* the batch path's round-robin / least-loaded
//!   decisions (same formulas, same tie-breaks), so trace replay and
//!   streamed ingest of the same events agree replica-for-replica.
//! * [`AdmissionController`] — a rate-slew loop in the bark `RateAdjust`
//!   idiom: start/stop hysteresis thresholds on the observed queueing delay
//!   vs. the SLO headroom, a cubic proportional gain, and a hard ±1 % clamp
//!   on the pacing rate. Adjust smoothly, don't oscillate: once the offset
//!   falls inside the stop threshold the loop stops slewing and the pace
//!   snaps back to base, and it does not slew again until the offset exceeds
//!   the (larger) start threshold.
//! * [`IngestSession`] — per-replica *bounded* admission queues over a
//!   single-server backlog model, pacing actuation (admitted arrivals are
//!   forwarded no faster than the slewed rate), and load shedding: when the
//!   selected replica's queue is at its bound the request is rejected
//!   outright, which is the paper-faithful alternative to letting queueing
//!   delay blow through the SLO for *every* queued request. Every decision
//!   is logged as an [`AdmissionDecision`] and mirrored into telemetry
//!   (`admission` trace events, `admission_queue_depth` / `admission_pace_ppm`
//!   gauges, `ingest_admitted` / `ingest_shed` counters).
//!
//! The session is deliberately causal: decisions use only the arrival prefix,
//! the front end's own queue model, and — when a feedback receiver is
//! attached — [`ProfileRecord`]s **already delivered** over the charged link
//! ([`FeedbackReceiver::poll`] at the arrival's timestamp never surfaces
//! in-flight messages). With admission disabled the session is a pure
//! passthrough: forwarded times equal arrival times and the produced shards
//! are byte-identical to the batch sharding path, which is what lets the
//! determinism suite diff streamed ingest against trace replay.

use std::collections::VecDeque;

use crate::fleet::FleetDispatch;
use crate::fleet::TraceShard;
use crate::traces::ArrivalTrace;
use apparate_exec::{FeedbackReceiver, ProfileRecord};
use apparate_sim::{SimDuration, SimTime};
use apparate_telemetry::{EventKind, Telemetry};

/// Base pacing rate: admitted arrivals are forwarded at the offered rate.
pub const PACE_BASE_PPM: u64 = 1_000_000;
/// Lower pacing clamp: one percent below base (bark's `rate * 99 / 100`).
pub const PACE_MIN_PPM: u64 = PACE_BASE_PPM / 100 * 99;
/// Upper pacing clamp: one percent above base (bark's `rate * 101 / 100`).
pub const PACE_MAX_PPM: u64 = PACE_BASE_PPM / 100 * 101;

/// The incremental counterpart of the batch sharding path: one dispatch
/// decision per offered arrival, with the batch formulas reproduced exactly.
///
/// [`FleetDispatch::RoundRobin`] assigns offered arrival `i` to replica
/// `i % replicas` — the cursor advances for *every* offered arrival, admitted
/// or shed, because the batch path indexes by stream position. For
/// [`FleetDispatch::LeastLoaded`] the dispatcher models each replica as a
/// single-server queue and picks the replica whose virtual backlog drains
/// first (ties toward the lowest index); the backlog is charged only when the
/// arrival is actually [committed](IncrementalDispatcher::commit) as admitted,
/// because a shed request never reaches the replica.
#[derive(Debug, Clone)]
pub struct IncrementalDispatcher {
    replicas: usize,
    dispatch: FleetDispatch,
    offered: usize,
    backlog: Vec<SimTime>,
}

impl IncrementalDispatcher {
    /// Create a dispatcher over `replicas` replicas. Panics on zero replicas.
    pub fn new(replicas: usize, dispatch: FleetDispatch) -> IncrementalDispatcher {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        IncrementalDispatcher {
            replicas,
            dispatch,
            offered: 0,
            backlog: vec![SimTime::ZERO; replicas],
        }
    }

    /// Number of replicas dispatched across.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Arrivals offered so far (admitted and shed).
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// The modelled virtual backlog (finish time) of one replica.
    pub fn backlog(&self, replica: usize) -> SimTime {
        self.backlog[replica]
    }

    /// The replica the *next* offered arrival would be routed to, without
    /// committing anything. Matches `shard_arrivals` / `shard_requests` on
    /// the same prefix: `offered % replicas` for round-robin, the
    /// smallest-backlog replica (ties toward the lowest index) for
    /// least-loaded.
    pub fn select(&self) -> usize {
        match self.dispatch {
            FleetDispatch::RoundRobin => self.offered % self.replicas,
            FleetDispatch::LeastLoaded => (0..self.replicas)
                .min_by_key(|&r| (self.backlog[r], r))
                .expect("replicas >= 1"),
        }
    }

    /// Commit the arrival just [selected](IncrementalDispatcher::select):
    /// advance the round-robin cursor and, when the arrival was admitted,
    /// charge the replica's modelled backlog by `service` exactly the way the
    /// batch path does (`backlog = max(backlog, at) + service`).
    pub fn commit(&mut self, replica: usize, at: SimTime, service: SimDuration, admitted: bool) {
        self.offered += 1;
        if admitted {
            self.backlog[replica] = self.backlog[replica].max(at) + service;
        }
    }
}

/// The bark `RateAdjust` slew loop, transplanted from audio-clock offsets to
/// queueing-delay offsets: hysteresis start/stop thresholds, a cubic
/// proportional gain, and a hard ±1 % clamp on the resulting pacing rate.
///
/// The controller observes one signed offset per arrival — the modelled
/// queueing delay minus the SLO headroom, in microseconds; positive means the
/// replica is falling behind. While the offset magnitude stays inside the
/// stop threshold the loop is inert and the pace sits at
/// [`PACE_BASE_PPM`]; it only starts slewing once the magnitude exceeds the
/// (strictly larger) start threshold, and once slewing it keeps adjusting
/// down to the stop threshold. That gap is what prevents oscillation around
/// a single cutoff — the property suite asserts no two opposite-direction
/// nudges ever occur inside the stop band.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    start_slew: SimDuration,
    stop_slew: SimDuration,
    slew: bool,
    pace_ppm: u64,
}

impl AdmissionController {
    /// Create a controller with the given hysteresis thresholds. Panics
    /// unless `start_slew > stop_slew` (equal thresholds would degenerate to
    /// a single oscillation-prone cutoff).
    pub fn new(start_slew: SimDuration, stop_slew: SimDuration) -> AdmissionController {
        assert!(
            start_slew > stop_slew,
            "hysteresis requires start_slew > stop_slew"
        );
        AdmissionController {
            start_slew,
            stop_slew,
            slew: false,
            pace_ppm: PACE_BASE_PPM,
        }
    }

    /// Current pacing rate in parts-per-million of the offered arrival rate.
    pub fn pace_ppm(&self) -> u64 {
        self.pace_ppm
    }

    /// Whether the loop is currently slewing.
    pub fn is_slewing(&self) -> bool {
        self.slew
    }

    /// Stop-slew hysteresis threshold (the inner band).
    pub fn stop_slew(&self) -> SimDuration {
        self.stop_slew
    }

    /// One control tick. `offset_us` is the observed queueing delay minus the
    /// SLO headroom (positive = behind SLO). Returns the signed nudge the
    /// tick applied, as the new pace's offset from [`PACE_BASE_PPM`] in ppm —
    /// `None` when the loop did not slew (inside the stop band, or inside the
    /// start band while not already slewing).
    pub fn observe(&mut self, offset_us: i64) -> Option<i64> {
        let magnitude = offset_us.unsigned_abs();
        if magnitude < self.stop_slew.as_micros() {
            // Close enough: stop slewing and snap back to the base rate
            // (bark returns `None` here and the consumer reverts to base).
            self.slew = false;
            self.pace_ppm = PACE_BASE_PPM;
            return None;
        }
        if magnitude < self.start_slew.as_micros() && !self.slew {
            return None;
        }
        // Cubic proportional gain (bark's `offset.pow(3) / 48`), computed on
        // the offset in milliseconds and magnitude-clamped first so extreme
        // backlogs saturate the clamp instead of overflowing. Positive offset
        // (behind SLO) paces *down*.
        let off_ms = (offset_us / 1_000).clamp(-100, 100) as i128;
        let gain_ppm = off_ms.pow(3) / 48;
        let pace = (PACE_BASE_PPM as i128 - gain_ppm)
            .clamp(PACE_MIN_PPM as i128, PACE_MAX_PPM as i128) as u64;
        self.slew = true;
        self.pace_ppm = pace;
        Some(pace as i64 - PACE_BASE_PPM as i64)
    }
}

/// Configuration of the admission/pacing layer of an [`IngestSession`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Per-replica admission-queue bound: an arrival whose selected replica
    /// already holds this many queued requests is shed.
    pub queue_bound: usize,
    /// The response-time SLO admission defends. The controller's headroom is
    /// `slo - service_estimate`: delay beyond it cannot be served in time.
    pub slo: SimDuration,
    /// Hysteresis threshold that *starts* a slew (|offset| must exceed it).
    pub start_slew: SimDuration,
    /// Hysteresis threshold that *stops* a slew (|offset| inside it).
    pub stop_slew: SimDuration,
}

impl AdmissionConfig {
    /// Default thresholds for an SLO: slew on offsets beyond half the SLO,
    /// stop once inside a tenth of it — the same ×5 start/stop spread bark
    /// uses (500 µs / 100 µs).
    pub fn for_slo(slo: SimDuration, queue_bound: usize) -> AdmissionConfig {
        AdmissionConfig {
            queue_bound,
            slo,
            start_slew: slo / 2,
            stop_slew: slo / 10,
        }
    }
}

/// One logged front-end decision: where the arrival went (or why it didn't),
/// and the control state that produced the decision. The property suite
/// replays these against a reference model of the documented queue semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionDecision {
    /// Position of the arrival in the offered stream.
    pub index: usize,
    /// Original arrival time.
    pub at: SimTime,
    /// Pacing-forwarded arrival time (`at` when admission is disabled).
    pub forwarded_at: SimTime,
    /// Replica the dispatcher selected.
    pub replica: usize,
    /// Selected replica's admission-queue depth *before* this arrival was
    /// enqueued (expired entries already drained).
    pub queue_depth: usize,
    /// Modelled queueing delay on the selected replica, µs.
    pub delay_us: u64,
    /// Controller input: delay minus SLO headroom, µs (0 when admission is
    /// disabled).
    pub offset_us: i64,
    /// Pacing rate in force after this tick, ppm.
    pub pace_ppm: u64,
    /// The slew nudge this tick applied (pace offset from base, ppm), if the
    /// controller slewed.
    pub nudge_ppm: Option<i64>,
    /// Whether the arrival was admitted (false = shed).
    pub admitted: bool,
}

/// Aggregate counters over one ingest session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Arrivals offered to the front end.
    pub offered: usize,
    /// Arrivals admitted to a replica queue.
    pub admitted: usize,
    /// Arrivals shed at the queue bound.
    pub shed: usize,
    /// Largest admission-queue depth observed (after enqueue).
    pub max_depth: usize,
    /// Control ticks that slewed the pace.
    pub nudges: usize,
    /// Smallest pace the controller reached, ppm.
    pub min_pace_ppm: u64,
    /// Largest pace the controller reached, ppm.
    pub max_pace_ppm: u64,
}

impl IngestStats {
    fn new() -> IngestStats {
        IngestStats {
            offered: 0,
            admitted: 0,
            shed: 0,
            max_depth: 0,
            nudges: 0,
            min_pace_ppm: PACE_BASE_PPM,
            max_pace_ppm: PACE_BASE_PPM,
        }
    }

    /// Fraction of offered arrivals shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }
}

/// Count hysteresis oscillations in a decision log: adjacent pairs of
/// opposite-direction pace nudges where either tick's offset magnitude was
/// already inside the stop threshold. The hysteresis gap makes this
/// impossible by construction — a nudge requires `|offset| >= stop_slew` —
/// and the property suite pins the count at zero across every tested seed.
pub fn count_oscillations(decisions: &[AdmissionDecision], stop_slew: SimDuration) -> usize {
    let stop = stop_slew.as_micros();
    let mut oscillations = 0usize;
    let mut prev: Option<(i64, u64)> = None; // (signed nudge, |offset|)
    for d in decisions {
        if let Some(nudge) = d.nudge_ppm {
            if nudge == 0 {
                continue;
            }
            let magnitude = d.offset_us.unsigned_abs();
            if let Some((prev_nudge, prev_magnitude)) = prev {
                let opposite = (nudge > 0) != (prev_nudge > 0);
                if opposite && (magnitude < stop || prev_magnitude < stop) {
                    oscillations += 1;
                }
            }
            prev = Some((nudge, magnitude));
        }
    }
    oscillations
}

/// Everything an [`IngestSession`] produced: the admitted per-replica shards
/// (forwarded arrival times, original stream indices), the full decision log,
/// and the aggregate counters.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// One shard per replica: admitted arrivals at their *forwarded* times,
    /// `indices` pointing back into the offered stream. With admission
    /// disabled these are identical to the batch sharding path's output.
    pub shards: Vec<TraceShard>,
    /// Per-arrival decision log, in offer order.
    pub decisions: Vec<AdmissionDecision>,
    /// Aggregate counters.
    pub stats: IngestStats,
    /// The stop-slew threshold the session ran with (for oscillation
    /// counting); `None` when admission was disabled.
    pub stop_slew: Option<SimDuration>,
}

impl IngestOutcome {
    /// Hysteresis oscillations in this session's decision log (see
    /// [`count_oscillations`]); zero when admission was disabled.
    pub fn oscillations(&self) -> usize {
        match self.stop_slew {
            Some(stop) => count_oscillations(&self.decisions, stop),
            None => 0,
        }
    }
}

/// Admission-layer state of a session (absent = passthrough streaming).
#[derive(Debug)]
struct AdmissionState {
    config: AdmissionConfig,
    controller: AdmissionController,
    /// Per-replica queues of modelled request finish times.
    queues: Vec<VecDeque<SimTime>>,
    prev_at: Option<SimTime>,
    prev_fwd: SimTime,
    /// Delivered-feedback refinement of the per-request service estimate, µs.
    refined_service_us: Option<f64>,
    last_completed: Option<SimTime>,
}

/// A streaming front end over one shared arrival stream: consumes arrivals
/// one at a time (no knowledge of the future), dispatches them incrementally,
/// and — when an [`AdmissionConfig`] is attached — paces and sheds to defend
/// the SLO. See the [module docs](self) for the model.
pub struct IngestSession {
    dispatcher: IncrementalDispatcher,
    service_estimate: SimDuration,
    admission: Option<AdmissionState>,
    feedback: Option<FeedbackReceiver<ProfileRecord>>,
    times: Vec<Vec<SimTime>>,
    indices: Vec<Vec<usize>>,
    decisions: Vec<AdmissionDecision>,
    stats: IngestStats,
    telemetry: Telemetry,
    replica_telemetry: Vec<Telemetry>,
}

impl IngestSession {
    /// Create a session dispatching across `replicas` replicas.
    /// `service_estimate` is the dispatcher's per-request service-time
    /// estimate — the same coarse batch-1 execution time the batch sharding
    /// path uses. Without an [`AdmissionConfig`]
    /// (see [`IngestSession::with_admission`]) the session is a pure
    /// passthrough whose shards match the batch path byte for byte.
    pub fn new(
        replicas: usize,
        dispatch: FleetDispatch,
        service_estimate: SimDuration,
    ) -> IngestSession {
        IngestSession {
            dispatcher: IncrementalDispatcher::new(replicas, dispatch),
            service_estimate,
            admission: None,
            feedback: None,
            times: vec![Vec::new(); replicas],
            indices: vec![Vec::new(); replicas],
            decisions: Vec::new(),
            stats: IngestStats::new(),
            telemetry: Telemetry::disabled(),
            replica_telemetry: Vec::new(),
        }
    }

    /// Enable SLO-driven admission: bounded per-replica queues, the
    /// rate-slew pacing loop, and load shedding at the queue bound.
    pub fn with_admission(mut self, config: AdmissionConfig) -> IngestSession {
        let replicas = self.dispatcher.replicas();
        self.admission = Some(AdmissionState {
            config,
            controller: AdmissionController::new(config.start_slew, config.stop_slew),
            queues: (0..replicas).map(|_| VecDeque::new()).collect(),
            prev_at: None,
            prev_fwd: SimTime::ZERO,
            refined_service_us: None,
            last_completed: None,
        });
        self
    }

    /// Attach the consumer half of a charged profiling link. Before each
    /// decision the session polls it *at the arrival's timestamp*, so only
    /// records whose simulated transfer has completed can refine the service
    /// estimate — the front end can never peek at in-flight telemetry. The
    /// refinement (an EWMA over the per-request completion cadence of
    /// delivered [`ProfileRecord`]s) feeds the controller's SLO headroom only;
    /// the dispatcher's backlog model keeps the static estimate, matching
    /// what a front end knows about the model a priori.
    pub fn with_feedback(mut self, feedback: FeedbackReceiver<ProfileRecord>) -> IngestSession {
        self.feedback = Some(feedback);
        self
    }

    /// Attach a telemetry sink: per-decision `admission` events and
    /// queue-depth gauges land in the selected replica's buffer (derived via
    /// [`Telemetry::for_replica`]), pace gauges and admitted/shed counters on
    /// the root handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> IngestSession {
        self.replica_telemetry = (0..self.dispatcher.replicas())
            .map(|r| telemetry.for_replica(r as u32))
            .collect();
        self.telemetry = telemetry;
        self
    }

    /// Offer one arrival with the session's default service estimate
    /// (classification: every request costs one batch-1 pass).
    pub fn offer(&mut self, at: SimTime) -> AdmissionDecision {
        self.offer_weighted(at, self.service_estimate)
    }

    /// Offer one arrival with an explicit service weight (generative: the
    /// per-token estimate times the request's output length, mirroring
    /// [`shard_requests`](crate::fleet::shard_requests)). Arrival times must
    /// be offered in non-decreasing order.
    pub fn offer_weighted(&mut self, at: SimTime, service: SimDuration) -> AdmissionDecision {
        let index = self.dispatcher.offered();
        // Delivered-only feedback refinement: poll at the arrival timestamp,
        // never beyond it. The charged link guarantees nothing in flight at
        // `at` is surfaced.
        if let Some(rx) = &mut self.feedback {
            let delivered = rx.poll(at);
            if let Some(admission) = &mut self.admission {
                for record in &delivered {
                    if let Some(prev_completed) = admission.last_completed {
                        let gap = record.completed_at.saturating_since(prev_completed);
                        let per_request_us =
                            gap.as_micros() as f64 / record.batch_size.max(1) as f64;
                        admission.refined_service_us = Some(match admission.refined_service_us {
                            Some(ewma) => ewma * 0.8 + per_request_us * 0.2,
                            None => per_request_us,
                        });
                    }
                    admission.last_completed = Some(record.completed_at);
                }
            }
        }

        let decision = match &mut self.admission {
            None => {
                // Passthrough: the batch sharding path, one event at a time.
                let replica = self.dispatcher.select();
                self.dispatcher.commit(replica, at, service, true);
                AdmissionDecision {
                    index,
                    at,
                    forwarded_at: at,
                    replica,
                    queue_depth: 0,
                    delay_us: 0,
                    offset_us: 0,
                    pace_ppm: PACE_BASE_PPM,
                    nudge_ppm: None,
                    admitted: true,
                }
            }
            Some(admission) => {
                // Pacing actuation: stretch the offered inter-arrival gap by
                // base/pace (pace below base ⇒ wider gaps ⇒ slower admission),
                // never forwarding before the arrival actually happened. The
                // pace applied here is the one the *previous* tick set.
                let pace = admission.controller.pace_ppm();
                let gap = match admission.prev_at {
                    Some(prev) => at.saturating_since(prev),
                    None => SimDuration::ZERO,
                };
                let paced_gap_us =
                    (gap.as_micros() as u128 * PACE_BASE_PPM as u128 / pace as u128) as u64;
                let forwarded_at = if admission.prev_at.is_some() {
                    at.max(admission.prev_fwd + SimDuration::from_micros(paced_gap_us))
                } else {
                    at
                };
                admission.prev_at = Some(at);
                admission.prev_fwd = forwarded_at;

                // Drain requests whose modelled service finished by now.
                for queue in &mut admission.queues {
                    while queue.front().is_some_and(|&finish| finish <= forwarded_at) {
                        queue.pop_front();
                    }
                }

                let replica = self.dispatcher.select();
                let delay_us = self
                    .dispatcher
                    .backlog(replica)
                    .saturating_since(forwarded_at)
                    .as_micros();
                // SLO headroom: how much queueing delay a request can absorb
                // and still be served inside the SLO, under the current
                // (possibly feedback-refined) service estimate.
                let service_us = admission
                    .refined_service_us
                    .unwrap_or(self.service_estimate.as_micros() as f64);
                let headroom_us = (admission.config.slo.as_micros() as f64 - service_us).max(0.0);
                let offset_us = delay_us as i64 - headroom_us.round() as i64;
                let nudge_ppm = admission.controller.observe(offset_us);

                let queue_depth = admission.queues[replica].len();
                let admitted = queue_depth < admission.config.queue_bound;
                self.dispatcher
                    .commit(replica, forwarded_at, service, admitted);
                if admitted {
                    admission.queues[replica].push_back(self.dispatcher.backlog(replica));
                }
                AdmissionDecision {
                    index,
                    at,
                    forwarded_at,
                    replica,
                    queue_depth,
                    delay_us,
                    offset_us,
                    pace_ppm: admission.controller.pace_ppm(),
                    nudge_ppm,
                    admitted,
                }
            }
        };

        self.stats.offered += 1;
        if decision.admitted {
            self.stats.admitted += 1;
            self.times[decision.replica].push(decision.forwarded_at);
            self.indices[decision.replica].push(index);
        } else {
            self.stats.shed += 1;
        }
        if let Some(admission) = &self.admission {
            let depth_after = admission.queues[decision.replica].len();
            self.stats.max_depth = self.stats.max_depth.max(depth_after);
        }
        if decision.nudge_ppm.is_some() {
            self.stats.nudges += 1;
        }
        self.stats.min_pace_ppm = self.stats.min_pace_ppm.min(decision.pace_ppm);
        self.stats.max_pace_ppm = self.stats.max_pace_ppm.max(decision.pace_ppm);

        if self.telemetry.is_enabled() {
            let replica_telemetry = &self.replica_telemetry[decision.replica];
            replica_telemetry.emit(decision.forwarded_at, || EventKind::Admission {
                request_id: index as u64,
                replica: decision.replica as u32,
                queue_depth: decision.queue_depth,
                admitted: decision.admitted,
                pace_ppm: decision.pace_ppm,
            });
            replica_telemetry.gauge(
                decision.forwarded_at,
                "admission_queue_depth",
                decision.queue_depth as f64,
            );
            self.telemetry.gauge(
                decision.forwarded_at,
                "admission_pace_ppm",
                decision.pace_ppm as f64,
            );
            self.telemetry.counter(
                if decision.admitted {
                    "ingest_admitted"
                } else {
                    "ingest_shed"
                },
                1,
            );
        }

        self.decisions.push(decision);
        decision
    }

    /// Finish the session: per-replica shards of the admitted arrivals (at
    /// their forwarded times), the decision log, and the counters.
    pub fn finish(self) -> IngestOutcome {
        let shards = self
            .times
            .into_iter()
            .zip(self.indices)
            .map(|(times, indices)| TraceShard {
                trace: ArrivalTrace::from_times(times),
                indices,
            })
            .collect();
        IngestOutcome {
            shards,
            decisions: self.decisions,
            stats: self.stats,
            stop_slew: self.admission.map(|a| a.config.stop_slew),
        }
    }
}

/// Stream a whole arrival trace through an [`IngestSession`] — the
/// convenience wrapper the experiment runners use. Admission is enabled when
/// `admission` is `Some`; the telemetry sink receives the per-decision trace.
pub fn stream_arrivals(
    trace: &ArrivalTrace,
    replicas: usize,
    dispatch: FleetDispatch,
    service_estimate: SimDuration,
    admission: Option<AdmissionConfig>,
    telemetry: &Telemetry,
) -> IngestOutcome {
    let mut session = IngestSession::new(replicas, dispatch, service_estimate);
    if let Some(config) = admission {
        session = session.with_admission(config);
    }
    if telemetry.is_enabled() {
        session = session.with_telemetry(telemetry.clone());
    }
    for &at in trace.times() {
        session.offer(at);
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{shard_arrivals, shard_requests};
    use crate::request::Request;
    use apparate_exec::SampleSemantics;

    fn sample(i: u64) -> SampleSemantics {
        SampleSemantics {
            seed: i,
            difficulty: 0.5,
        }
    }

    #[test]
    fn incremental_round_robin_matches_batch_path_on_every_prefix() {
        let trace = ArrivalTrace::poisson(300, 40.0, 11);
        let service = SimDuration::from_millis(20);
        for replicas in [1usize, 2, 4, 8] {
            let batch = shard_arrivals(&trace, replicas, FleetDispatch::RoundRobin, service);
            let mut assignment = vec![usize::MAX; trace.len()];
            for (r, shard) in batch.iter().enumerate() {
                for &i in &shard.indices {
                    assignment[i] = r;
                }
            }
            let mut dispatcher = IncrementalDispatcher::new(replicas, FleetDispatch::RoundRobin);
            for (i, &at) in trace.times().iter().enumerate() {
                let r = dispatcher.select();
                assert_eq!(r, assignment[i], "arrival {i} at {replicas} replicas");
                dispatcher.commit(r, at, service, true);
            }
        }
    }

    #[test]
    fn incremental_least_loaded_matches_batch_path_on_every_prefix() {
        let trace = ArrivalTrace::maf_like(400, 80.0, 7);
        let service = SimDuration::from_millis(15);
        for replicas in [1usize, 2, 4, 8] {
            let batch = shard_arrivals(&trace, replicas, FleetDispatch::LeastLoaded, service);
            let mut assignment = vec![usize::MAX; trace.len()];
            for (r, shard) in batch.iter().enumerate() {
                for &i in &shard.indices {
                    assignment[i] = r;
                }
            }
            let mut dispatcher = IncrementalDispatcher::new(replicas, FleetDispatch::LeastLoaded);
            for (i, &at) in trace.times().iter().enumerate() {
                let r = dispatcher.select();
                assert_eq!(r, assignment[i], "arrival {i} at {replicas} replicas");
                dispatcher.commit(r, at, service, true);
            }
        }
    }

    #[test]
    fn incremental_least_loaded_matches_request_sharding_with_token_weights() {
        // The generative batch path weights each request's backlog charge by
        // its output length; the incremental path must reproduce the same
        // decisions when offered the same weights.
        let trace = ArrivalTrace::poisson(120, 2.0, 9);
        let per_token = SimDuration::from_micros(900);
        let requests: Vec<Request> = trace
            .times()
            .iter()
            .enumerate()
            .map(|(i, &at)| Request::generative(i as u64, at, sample(i as u64), (i % 60) as u32))
            .collect();
        for replicas in [1usize, 2, 4] {
            let batch = shard_requests(&requests, replicas, FleetDispatch::LeastLoaded, per_token);
            let mut assignment = vec![usize::MAX; requests.len()];
            for (r, shard) in batch.iter().enumerate() {
                for &i in &shard.indices {
                    assignment[i] = r;
                }
            }
            let mut dispatcher = IncrementalDispatcher::new(replicas, FleetDispatch::LeastLoaded);
            for (i, request) in requests.iter().enumerate() {
                let service = SimDuration::from_micros_f64(
                    per_token.as_micros() as f64 * request.output_tokens.max(1) as f64,
                );
                let r = dispatcher.select();
                assert_eq!(r, assignment[i], "request {i} at {replicas} replicas");
                dispatcher.commit(r, request.arrival, service, true);
            }
        }
    }

    #[test]
    fn passthrough_session_reproduces_batch_shards_exactly() {
        let trace = ArrivalTrace::maf_like(500, 120.0, 3);
        let service = SimDuration::from_millis(12);
        for &dispatch in &[FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
            for replicas in [1usize, 2, 4] {
                let batch = shard_arrivals(&trace, replicas, dispatch, service);
                let streamed = stream_arrivals(
                    &trace,
                    replicas,
                    dispatch,
                    service,
                    None,
                    &Telemetry::disabled(),
                );
                assert_eq!(streamed.stats.shed, 0);
                for (b, s) in batch.iter().zip(&streamed.shards) {
                    assert_eq!(b.trace.times(), s.trace.times());
                    assert_eq!(b.indices, s.indices);
                }
            }
        }
    }

    #[test]
    fn controller_hysteresis_starts_and_stops_at_the_right_thresholds() {
        let mut ctl =
            AdmissionController::new(SimDuration::from_millis(50), SimDuration::from_millis(10));
        // Inside the start band while idle: no slew.
        assert_eq!(ctl.observe(20_000), None);
        assert!(!ctl.is_slewing());
        assert_eq!(ctl.pace_ppm(), PACE_BASE_PPM);
        // Beyond the start threshold: slew down.
        let nudge = ctl.observe(60_000).expect("slew starts");
        assert!(nudge < 0, "behind SLO paces down, nudge {nudge}");
        assert!(ctl.is_slewing());
        assert!(ctl.pace_ppm() < PACE_BASE_PPM);
        // Between stop and start while slewing: keeps slewing.
        assert!(ctl.observe(20_000).is_some());
        assert!(ctl.is_slewing());
        // Inside the stop band: snaps back to base.
        assert_eq!(ctl.observe(5_000), None);
        assert!(!ctl.is_slewing());
        assert_eq!(ctl.pace_ppm(), PACE_BASE_PPM);
    }

    #[test]
    fn controller_pace_never_leaves_the_one_percent_clamp() {
        let mut ctl =
            AdmissionController::new(SimDuration::from_millis(50), SimDuration::from_millis(10));
        for offset in [i64::MAX / 2, 10_000_000, -10_000_000, i64::MIN / 2] {
            ctl.observe(offset);
            assert!(
                (PACE_MIN_PPM..=PACE_MAX_PPM).contains(&ctl.pace_ppm()),
                "offset {offset} drove pace to {}",
                ctl.pace_ppm()
            );
        }
    }

    #[test]
    fn queue_bound_sheds_and_depth_stays_bounded() {
        // 200 arrivals in one microsecond-spaced burst against a replica that
        // needs 10 ms per request: the queue must cap at the bound and the
        // overflow must shed.
        let times: Vec<SimTime> = (0..200).map(SimTime::from_micros).collect();
        let trace = ArrivalTrace::from_times(times);
        let config = AdmissionConfig::for_slo(SimDuration::from_millis(50), 8);
        let out = stream_arrivals(
            &trace,
            1,
            FleetDispatch::LeastLoaded,
            SimDuration::from_millis(10),
            Some(config),
            &Telemetry::disabled(),
        );
        assert!(out.stats.shed > 0, "overload must shed");
        assert!(
            out.stats.max_depth <= config.queue_bound,
            "depth {} exceeded bound {}",
            out.stats.max_depth,
            config.queue_bound
        );
        assert_eq!(out.stats.admitted + out.stats.shed, out.stats.offered);
        let shard_total: usize = out.shards.iter().map(|s| s.indices.len()).sum();
        assert_eq!(shard_total, out.stats.admitted);
    }

    #[test]
    fn forwarded_times_are_monotone_and_never_early() {
        let trace = ArrivalTrace::maf_like(600, 300.0, 21);
        let config = AdmissionConfig::for_slo(SimDuration::from_millis(40), 16);
        let mut session =
            IngestSession::new(2, FleetDispatch::LeastLoaded, SimDuration::from_millis(8))
                .with_admission(config);
        let mut prev_fwd = SimTime::ZERO;
        for &at in trace.times() {
            let d = session.offer(at);
            assert!(d.forwarded_at >= at, "pacing may only delay arrivals");
            assert!(d.forwarded_at >= prev_fwd, "forwarded times are monotone");
            prev_fwd = d.forwarded_at;
        }
    }

    #[test]
    fn session_stats_track_decision_log() {
        let trace = ArrivalTrace::maf_like(400, 200.0, 5);
        let config = AdmissionConfig::for_slo(SimDuration::from_millis(30), 6);
        let out = stream_arrivals(
            &trace,
            2,
            FleetDispatch::LeastLoaded,
            SimDuration::from_millis(9),
            Some(config),
            &Telemetry::disabled(),
        );
        assert_eq!(out.decisions.len(), out.stats.offered);
        assert_eq!(
            out.decisions.iter().filter(|d| d.admitted).count(),
            out.stats.admitted
        );
        assert_eq!(
            out.decisions
                .iter()
                .filter(|d| d.nudge_ppm.is_some())
                .count(),
            out.stats.nudges
        );
        assert_eq!(out.oscillations(), 0, "hysteresis must not oscillate");
    }
}
