//! Serving-platform substrate for the Apparate reproduction.
//!
//! Reproduces the serving pipeline of §2.1 as a discrete-event simulation:
//!
//! * [`request`] — requests, SLOs and per-request serving records.
//! * [`traces`] — arrival processes (fixed fps, Poisson, MAF-like bursty).
//! * [`batching`] — queue-draining policies: TF-Serving knobs, Clockwork-style
//!   SLO-aware batching, and immediate (batch-1) scheduling.
//! * [`platform`] — the classification serving loop with the pluggable
//!   [`ExitPolicy`] hook through which Apparate and every baseline
//!   integrate.
//! * [`generative`] — continuous-batching decode loop with the analogous
//!   [`TokenPolicy`] hook.
//! * [`fleet`] — multi-replica scale-out: deterministic sharding of one
//!   shared workload across N replicas (round-robin / least-loaded dispatch)
//!   and fleet-level outcome aggregation, for both classification arrival
//!   traces and generative request streams (whole sequences dispatched,
//!   backlog weighted by output length).
//! * [`ingest`] — streaming front end: incremental (one-event-at-a-time)
//!   dispatch matching the batch sharding path, bounded per-replica
//!   admission queues, and an SLO-driven rate-slew pacing controller with
//!   hysteresis and load shedding (bark's `RateAdjust` idiom).
//! * [`metrics`] — latency/accuracy/throughput summaries and win computations.
//!
//! Entry points: [`ServingSimulator::run`] (single replica),
//! [`ReplicaFleet::serve`] (fleet, wall-clock parallel via [`FleetRun`]),
//! [`GenerativeSimulator::run`] (decode loop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batching;
pub mod fleet;
pub mod generative;
pub mod ingest;
pub mod metrics;
pub mod platform;
pub mod request;
pub mod traces;

pub use batching::{BatchDecision, BatchingPolicy};
pub use fleet::{
    available_threads, shard_arrivals, shard_requests, FleetDispatch, FleetOutcome,
    FleetOutcomeView, FleetRun, FleetUnit, GenerativeFleetOutcome, GenerativeReplicaFleet,
    ReplicaFleet, ReplicaOutcome, ReplicaUnit, RequestShard, TokenReplicaUnit, TraceShard,
};
pub use generative::{
    ContinuousBatchingConfig, GenerativeOutcome, GenerativeSimulator, StepOutcome, TokenOutcome,
    TokenPolicy, TokenRecord, TokenSemantics, TokenSlot, VanillaTokenPolicy,
};
pub use ingest::{
    count_oscillations, stream_arrivals, AdmissionConfig, AdmissionController, AdmissionDecision,
    IncrementalDispatcher, IngestOutcome, IngestSession, IngestStats, PACE_BASE_PPM, PACE_MAX_PPM,
    PACE_MIN_PPM,
};
pub use metrics::{latency_cdf, tpt_cdf, LatencySummary, LatencyWins};
pub use platform::{
    BatchOutcome, BatchProfile, ExitPolicy, RequestOutcome, ServingConfig, ServingOutcome,
    ServingSimulator, VanillaPolicy,
};
pub use request::{Request, RequestRecord};
pub use traces::ArrivalTrace;
