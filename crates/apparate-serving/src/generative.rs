//! Continuous-batching simulator for generative (auto-regressive) serving.
//!
//! Generative platforms (vLLM, Orca, HuggingFace Pipelines) use *continuous
//! batching*: every decode step batches all currently active sequences; as a
//! sequence finishes, a queued request immediately takes its slot (§2.1). The
//! paper's generative latency metric is the time-per-token (TPT) distribution.
//!
//! Exactly as with classification serving, the early-exit behaviour is
//! injected through a policy trait ([`TokenPolicy`]): vanilla serving releases
//! each token when the decode step finishes, Apparate releases it when its
//! ramp exits (while parallel-decoding the remaining layers, §3.4), FREE uses
//! one static ramp.

use crate::platform::BatchProfile;
use crate::request::Request;
use apparate_exec::{FeedbackSender, LinkStats, ProfileRecord, SampleSemantics};
use apparate_sim::{SimDuration, SimTime};
use apparate_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One sequence's slot in a decode step.
#[derive(Debug, Clone, Copy)]
pub struct TokenSlot {
    /// Owning request.
    pub request_id: u64,
    /// Index of the token being generated (0-based).
    pub token_index: u32,
    /// Semantics of this token (difficulty etc.).
    pub semantics: SampleSemantics,
}

/// Outcome of one token within a decode step.
#[derive(Debug, Clone, Copy)]
pub struct TokenOutcome {
    /// Offset from step start at which the token is released to the client.
    pub release_offset: SimDuration,
    /// Ramp index the token exited at, if any.
    pub exit_ramp: Option<usize>,
    /// Whether the released token matches what the original model would emit.
    pub correct: bool,
}

/// Outcome of one decode step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// GPU time the step occupies (all sequences advance together).
    pub gpu_time: SimDuration,
    /// Per-token outcomes, parallel to the slots passed in.
    pub per_token: Vec<TokenOutcome>,
    /// Profiling data for the policy's controller, if it has one; published by
    /// the decode loop on the feedback link when the step completes.
    pub profile: Option<BatchProfile>,
}

/// Policy deciding token release times within each decode step.
pub trait TokenPolicy {
    /// Process one decode step over the given slots.
    fn process_step(&mut self, slots: &[TokenSlot], step_start: SimTime) -> StepOutcome;

    /// Policy name for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// Vanilla generative serving: each token is released when its decode step
/// completes; the step time is the full decoder latency for the batch.
pub struct VanillaTokenPolicy<F>
where
    F: Fn(u32) -> SimDuration,
{
    decode_time: F,
}

impl<F> VanillaTokenPolicy<F>
where
    F: Fn(u32) -> SimDuration,
{
    /// Create from a batch-size → decode-step-time function.
    pub fn new(decode_time: F) -> Self {
        VanillaTokenPolicy { decode_time }
    }
}

impl<F> TokenPolicy for VanillaTokenPolicy<F>
where
    F: Fn(u32) -> SimDuration,
{
    fn process_step(&mut self, slots: &[TokenSlot], _step_start: SimTime) -> StepOutcome {
        let gpu_time = (self.decode_time)(slots.len() as u32);
        StepOutcome {
            gpu_time,
            per_token: slots
                .iter()
                .map(|_| TokenOutcome {
                    release_offset: gpu_time,
                    exit_ramp: None,
                    correct: true,
                })
                .collect(),
            profile: None,
        }
    }

    fn name(&self) -> &str {
        "vanilla"
    }
}

/// Record of one emitted token.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TokenRecord {
    /// Owning request.
    pub request_id: u64,
    /// Token index within the request.
    pub token_index: u32,
    /// Release time.
    pub released: SimTime,
    /// Time-per-token: interval since the previous token of the same request
    /// (or since the request joined the running batch, for its first token).
    pub tpt: SimDuration,
    /// Exit ramp, if any.
    pub exit_ramp: Option<usize>,
    /// Agreement with the original model.
    pub correct: bool,
    /// Whether this token's inter-token time exceeded the configured TBT SLO
    /// (always `false` when the run has no [`ContinuousBatchingConfig::tbt_slo`]).
    pub slo_violated: bool,
}

/// Aggregate result of one generative serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerativeOutcome {
    /// Every emitted token.
    pub tokens: Vec<TokenRecord>,
    /// Number of completed requests.
    pub completed_requests: usize,
    /// Total wall-clock span.
    pub makespan: SimDuration,
    /// Total GPU busy time.
    pub gpu_busy: SimDuration,
    /// Decode-step batch sizes.
    pub batch_sizes: Vec<u32>,
    /// GPU → controller profiling-stream statistics, when the run published
    /// feedback (one [`ProfileRecord`] per decode step); `None` otherwise.
    pub feedback: Option<LinkStats>,
}

impl GenerativeOutcome {
    /// Time-per-token values in milliseconds.
    pub fn tpt_ms(&self) -> Vec<f64> {
        self.tokens.iter().map(|t| t.tpt.as_millis_f64()).collect()
    }

    /// Token-level agreement rate with the original model — the proxy for the
    /// sequence-level ROUGE-L / F1 scores the paper reports.
    pub fn sequence_accuracy(&self) -> f64 {
        if self.tokens.is_empty() {
            return 1.0;
        }
        self.tokens.iter().filter(|t| t.correct).count() as f64 / self.tokens.len() as f64
    }

    /// Fraction of tokens that exited at a ramp.
    pub fn exit_rate(&self) -> f64 {
        if self.tokens.is_empty() {
            return 0.0;
        }
        self.tokens.iter().filter(|t| t.exit_ramp.is_some()).count() as f64
            / self.tokens.len() as f64
    }

    /// Generation throughput in tokens per second.
    pub fn tokens_per_second(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.tokens.len() as f64 / secs
    }

    /// Mean decode-step batch size.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            return 0.0;
        }
        self.batch_sizes.iter().map(|&b| b as f64).sum::<f64>() / self.batch_sizes.len() as f64
    }

    /// Fraction of tokens whose inter-token time violated the TBT SLO
    /// (0 when the run was configured without one).
    pub fn slo_violation_rate(&self) -> f64 {
        if self.tokens.is_empty() {
            return 0.0;
        }
        self.tokens.iter().filter(|t| t.slo_violated).count() as f64 / self.tokens.len() as f64
    }
}

/// Configuration of the continuous-batching loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ContinuousBatchingConfig {
    /// Maximum number of sequences decoded together.
    pub max_batch_size: u32,
    /// Time-between-tokens SLO: a token whose inter-token interval exceeds
    /// this is an SLO violation (the generative analogue of the per-request
    /// response SLO, §2.1). `None` disables violation accounting.
    pub tbt_slo: Option<SimDuration>,
}

impl Default for ContinuousBatchingConfig {
    fn default() -> Self {
        ContinuousBatchingConfig {
            max_batch_size: 16,
            tbt_slo: None,
        }
    }
}

/// Per-sequence token semantics provider: given (request id, token index),
/// return the semantics of that token. Token difficulties are correlated
/// within a sequence (auto-regressive continuity, §4.3).
pub trait TokenSemantics {
    /// Semantics of token `token_index` of request `request_id`.
    fn token(&self, request_id: u64, token_index: u32) -> SampleSemantics;
}

/// The continuous-batching generative simulator.
pub struct GenerativeSimulator {
    config: ContinuousBatchingConfig,
    telemetry: Telemetry,
    dispatch_events: bool,
}

#[derive(Debug, Clone)]
struct ActiveSequence {
    request_id: u64,
    next_token: u32,
    total_tokens: u32,
    last_release: SimTime,
}

impl GenerativeSimulator {
    /// Create a simulator.
    pub fn new(config: ContinuousBatchingConfig) -> GenerativeSimulator {
        GenerativeSimulator {
            config,
            telemetry: Telemetry::disabled(),
            dispatch_events: false,
        }
    }

    /// Attach a telemetry handle: decode steps record `batch-formed` events
    /// plus batch-size / pending-queue series, and TBT-SLO violations record
    /// `slo-violation` events. The default is the zero-cost disabled handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> GenerativeSimulator {
        self.telemetry = telemetry;
        self
    }

    /// Trace a `dispatch` event per request, stamped at its arrival time and
    /// emitted when the sequence is admitted into the continuous batch. Fleet
    /// runners enable this so dispatch events are produced *inside* the run,
    /// interleaved with decode events in sim-time order (requests carry their
    /// fleet-global ids already). No-op without a recording telemetry handle.
    pub fn with_dispatch_events(mut self) -> GenerativeSimulator {
        self.dispatch_events = true;
        self
    }

    /// Run the generative workload. No profiling feedback is published; see
    /// [`GenerativeSimulator::run_with_feedback`].
    pub fn run(
        &self,
        requests: &[Request],
        semantics: &dyn TokenSemantics,
        policy: &mut dyn TokenPolicy,
    ) -> GenerativeOutcome {
        self.run_with_feedback(requests, semantics, policy, None)
    }

    /// Run the generative workload, publishing one [`ProfileRecord`] per
    /// decode step on `feedback` when the step completes (the §3 profiling
    /// stream, at token granularity). Policies that return no profile publish
    /// nothing.
    pub fn run_with_feedback(
        &self,
        requests: &[Request],
        semantics: &dyn TokenSemantics,
        policy: &mut dyn TokenPolicy,
        feedback: Option<&FeedbackSender<ProfileRecord>>,
    ) -> GenerativeOutcome {
        let mut pending: VecDeque<&Request> = {
            let mut sorted: Vec<&Request> = requests.iter().collect();
            sorted.sort_by_key(|r| r.arrival);
            sorted.into_iter().collect()
        };
        let mut active: Vec<ActiveSequence> = Vec::new();
        // Reused across decode steps: the slot staging buffer and the
        // profile id scratch would otherwise be fresh allocations per step
        // (the hottest loop in the simulator).
        let mut slots: Vec<TokenSlot> = Vec::new();
        let mut profile_ids: Vec<u64> = Vec::new();
        let mut tokens: Vec<TokenRecord> = Vec::new();
        let mut batch_sizes: Vec<u32> = Vec::new();
        let mut gpu_busy = SimDuration::ZERO;
        let first_arrival = pending.front().map(|r| r.arrival).unwrap_or(SimTime::ZERO);
        let mut now = first_arrival;
        let mut completed = 0usize;

        loop {
            // Admit pending requests that have arrived, up to the batch cap.
            while active.len() < self.config.max_batch_size as usize {
                match pending.front() {
                    Some(r) if r.arrival <= now => {
                        let r = pending.pop_front().expect("peeked");
                        if self.dispatch_events && self.telemetry.is_enabled() {
                            let request_id = r.id;
                            let replica = self.telemetry.replica();
                            self.telemetry.emit(r.arrival, || EventKind::Dispatch {
                                request_id,
                                replica,
                            });
                        }
                        active.push(ActiveSequence {
                            request_id: r.id,
                            next_token: 0,
                            total_tokens: r.output_tokens.max(1),
                            last_release: now.max(r.arrival),
                        });
                    }
                    _ => break,
                }
            }
            if active.is_empty() {
                match pending.front() {
                    // Jump to the next arrival.
                    Some(r) => {
                        now = r.arrival;
                        continue;
                    }
                    None => break,
                }
            }
            // One decode step over all active sequences.
            slots.clear();
            slots.extend(active.iter().map(|s| TokenSlot {
                request_id: s.request_id,
                token_index: s.next_token,
                semantics: semantics.token(s.request_id, s.next_token),
            }));
            batch_sizes.push(slots.len() as u32);
            let outcome = policy.process_step(&slots, now);
            debug_assert_eq!(outcome.per_token.len(), slots.len());
            if let (Some(sender), Some(profile)) = (feedback, outcome.profile) {
                let completed_at = now + outcome.gpu_time;
                profile_ids.clear();
                profile_ids.extend(slots.iter().map(|s| s.request_id));
                sender.send(
                    profile.into_record(completed_at, &profile_ids),
                    completed_at,
                );
            }
            gpu_busy += outcome.gpu_time;
            let traced = self.telemetry.is_enabled();
            if traced {
                let size = slots.len() as u32;
                let queue_depth = pending.len();
                let gpu_us = outcome.gpu_time.as_micros();
                self.telemetry.emit(now, || EventKind::BatchFormed {
                    size,
                    queue_depth,
                    gpu_us,
                });
                self.telemetry.counter("decode_steps", 1);
                self.telemetry.gauge(now, "gen_batch_size", size as f64);
                self.telemetry.gauge(now, "gen_pending", queue_depth as f64);
                self.telemetry.observe("gen_batch_size", size as f64);
            }
            for (seq, out) in active.iter_mut().zip(outcome.per_token.iter()) {
                let released = now + out.release_offset;
                let tpt = released - seq.last_release;
                let slo_violated = self.config.tbt_slo.map(|slo| tpt > slo).unwrap_or(false);
                if traced && slo_violated {
                    let request_id = seq.request_id;
                    let latency_us = tpt.as_micros();
                    let slo_us = self.config.tbt_slo.map(|s| s.as_micros()).unwrap_or(0);
                    self.telemetry.emit(released, || EventKind::SloViolation {
                        request_id,
                        latency_us,
                        slo_us,
                    });
                    self.telemetry.counter("slo_violations", 1);
                }
                tokens.push(TokenRecord {
                    request_id: seq.request_id,
                    token_index: seq.next_token,
                    released,
                    tpt,
                    exit_ramp: out.exit_ramp,
                    correct: out.correct,
                    slo_violated,
                });
                seq.last_release = released;
                seq.next_token += 1;
            }
            now += outcome.gpu_time;
            // Retire finished sequences; their slots are immediately reusable.
            let before = active.len();
            active.retain(|s| s.next_token < s.total_tokens);
            completed += before - active.len();
            if active.is_empty() && pending.is_empty() {
                break;
            }
        }

        GenerativeOutcome {
            tokens,
            completed_requests: completed,
            makespan: now - first_arrival,
            gpu_busy,
            batch_sizes,
            feedback: feedback.map(|sender| sender.stats()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::ArrivalTrace;

    struct UniformTokens;
    impl TokenSemantics for UniformTokens {
        fn token(&self, request_id: u64, token_index: u32) -> SampleSemantics {
            SampleSemantics::new(request_id * 10_000 + token_index as u64, 0.4)
        }
    }

    fn decode_time(b: u32) -> SimDuration {
        SimDuration::from_micros(10_000 + 1_500 * b as u64)
    }

    fn make_requests(n: usize, tokens_each: u32, rate: f64) -> Vec<Request> {
        let trace = ArrivalTrace::poisson(n, rate, 3);
        trace
            .times()
            .iter()
            .enumerate()
            .map(|(i, &at)| {
                Request::generative(
                    i as u64,
                    at,
                    SampleSemantics::new(i as u64, 0.4),
                    tokens_each,
                )
            })
            .collect()
    }

    #[test]
    fn all_tokens_are_generated() {
        let requests = make_requests(10, 20, 5.0);
        let sim = GenerativeSimulator::new(ContinuousBatchingConfig {
            max_batch_size: 4,
            tbt_slo: None,
        });
        let mut policy = VanillaTokenPolicy::new(decode_time);
        let out = sim.run(&requests, &UniformTokens, &mut policy);
        assert_eq!(out.tokens.len(), 10 * 20);
        assert_eq!(out.completed_requests, 10);
        assert!(out.sequence_accuracy() >= 1.0 - 1e-12);
        assert_eq!(out.exit_rate(), 0.0);
    }

    #[test]
    fn token_indices_are_contiguous_per_request() {
        let requests = make_requests(5, 15, 10.0);
        let sim = GenerativeSimulator::new(ContinuousBatchingConfig {
            max_batch_size: 8,
            tbt_slo: None,
        });
        let mut policy = VanillaTokenPolicy::new(decode_time);
        let out = sim.run(&requests, &UniformTokens, &mut policy);
        for r in 0..5u64 {
            let mut indices: Vec<u32> = out
                .tokens
                .iter()
                .filter(|t| t.request_id == r)
                .map(|t| t.token_index)
                .collect();
            indices.sort_unstable();
            assert_eq!(indices, (0..15).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn saturated_serving_fills_the_batch() {
        // Arrival rate far above service capacity keeps the continuous batch full.
        let requests = make_requests(40, 30, 1_000.0);
        let sim = GenerativeSimulator::new(ContinuousBatchingConfig {
            max_batch_size: 8,
            tbt_slo: None,
        });
        let mut policy = VanillaTokenPolicy::new(decode_time);
        let out = sim.run(&requests, &UniformTokens, &mut policy);
        assert!(
            out.mean_batch_size() > 7.0,
            "mean batch {}",
            out.mean_batch_size()
        );
    }

    #[test]
    fn tpt_equals_step_time_for_vanilla_steady_state() {
        let requests = make_requests(4, 50, 1_000.0);
        let sim = GenerativeSimulator::new(ContinuousBatchingConfig {
            max_batch_size: 4,
            tbt_slo: None,
        });
        let mut policy = VanillaTokenPolicy::new(decode_time);
        let out = sim.run(&requests, &UniformTokens, &mut policy);
        // Once all four sequences are admitted (and before any retires), every
        // TPT equals the batch-4 step time; during ramp-up/drain the batch is
        // smaller, so TPT is bounded by the batch-1 and batch-4 step times.
        let step4 = decode_time(4).as_millis_f64();
        let step1 = decode_time(1).as_millis_f64();
        let later_tpts: Vec<f64> = out
            .tokens
            .iter()
            .filter(|t| t.token_index > 0)
            .map(|t| t.tpt.as_millis_f64())
            .collect();
        assert!(!later_tpts.is_empty());
        let full_batch = later_tpts
            .iter()
            .filter(|&&tpt| (tpt - step4).abs() < 0.5)
            .count();
        assert!(
            full_batch as f64 / later_tpts.len() as f64 > 0.8,
            "most steady-state TPTs should equal the full-batch step time"
        );
        for tpt in later_tpts {
            assert!(
                tpt >= step1 - 0.5 && tpt <= step4 + 0.5,
                "tpt {tpt} outside [{step1}, {step4}]"
            );
        }
    }

    #[test]
    fn makespan_and_throughput_are_positive() {
        let requests = make_requests(8, 10, 20.0);
        let sim = GenerativeSimulator::new(ContinuousBatchingConfig::default());
        let mut policy = VanillaTokenPolicy::new(decode_time);
        let out = sim.run(&requests, &UniformTokens, &mut policy);
        assert!(out.makespan > SimDuration::ZERO);
        assert!(out.tokens_per_second() > 0.0);
        assert!(out.gpu_busy <= out.makespan);
    }

    #[test]
    fn tbt_slo_violations_are_counted() {
        let requests = make_requests(8, 20, 1_000.0);
        // Full batch-8 steps take 22 ms; a 15 ms TBT SLO is violated by every
        // full-batch token but met during ramp-up/drain at small batch sizes.
        let run = |tbt_slo: Option<SimDuration>| {
            let sim = GenerativeSimulator::new(ContinuousBatchingConfig {
                max_batch_size: 8,
                tbt_slo,
            });
            let mut policy = VanillaTokenPolicy::new(decode_time);
            sim.run(&requests, &UniformTokens, &mut policy)
        };
        let without = run(None);
        assert_eq!(without.slo_violation_rate(), 0.0);
        let strict = run(Some(SimDuration::from_millis(15)));
        assert!(
            strict.slo_violation_rate() > 0.5,
            "rate {}",
            strict.slo_violation_rate()
        );
        let generous = run(Some(SimDuration::from_millis(60)));
        assert_eq!(generous.slo_violation_rate(), 0.0);
        // The SLO accounting must not perturb the simulated schedule.
        assert_eq!(without.batch_sizes, strict.batch_sizes);
        assert_eq!(without.makespan, strict.makespan);
    }

    #[test]
    fn traced_generative_run_records_steps_and_violations() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let requests = make_requests(8, 20, 1_000.0);
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        let sim = GenerativeSimulator::new(ContinuousBatchingConfig {
            max_batch_size: 8,
            tbt_slo: Some(SimDuration::from_millis(15)),
        })
        .with_telemetry(telemetry.clone());
        let mut policy = VanillaTokenPolicy::new(decode_time);
        let out = sim.run(&requests, &UniformTokens, &mut policy);
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.count_kind("batch-formed"), out.batch_sizes.len());
        assert_eq!(
            snap.count_kind("slo-violation"),
            out.tokens.iter().filter(|t| t.slo_violated).count()
        );
        assert!(!snap.series_named("gen_batch_size").is_empty());
    }
}
