//! Metric summaries and baseline comparisons.
//!
//! The paper's headline numbers are *latency wins*: the percentage reduction
//! in a latency percentile relative to vanilla serving, under unchanged
//! throughput and an accuracy constraint. This module turns raw
//! [`ServingOutcome`]s / [`GenerativeOutcome`]s into those summaries.

use crate::generative::GenerativeOutcome;
use crate::platform::ServingOutcome;
use apparate_sim::stats::percent_improvement;
use apparate_sim::{Cdf, Percentiles};
use serde::{Deserialize, Serialize};

/// Latency + accuracy + throughput summary of one serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Which policy produced it.
    pub policy: String,
    /// Latency percentiles in milliseconds.
    pub latency_ms: Percentiles,
    /// Accuracy relative to the original model.
    pub accuracy: f64,
    /// Throughput in requests (or tokens) per second.
    pub throughput: f64,
    /// Mean batch size.
    pub mean_batch_size: f64,
    /// SLO violation rate: response SLO for classification runs, TBT SLO for
    /// generative runs.
    pub slo_violation_rate: f64,
    /// Fraction of results that exited early.
    pub exit_rate: f64,
}

impl LatencySummary {
    /// Summarise a classification serving outcome.
    pub fn from_outcome(policy: impl Into<String>, outcome: &ServingOutcome) -> LatencySummary {
        LatencySummary {
            policy: policy.into(),
            latency_ms: Percentiles::from_samples(&outcome.latencies_ms()),
            accuracy: outcome.accuracy(),
            throughput: outcome.throughput_rps(),
            mean_batch_size: outcome.mean_batch_size(),
            slo_violation_rate: outcome.slo_violation_rate(),
            exit_rate: outcome.exit_rate(),
        }
    }

    /// Summarise a generative outcome (latencies are per-token).
    pub fn from_generative(
        policy: impl Into<String>,
        outcome: &GenerativeOutcome,
    ) -> LatencySummary {
        LatencySummary {
            policy: policy.into(),
            latency_ms: Percentiles::from_samples(&outcome.tpt_ms()),
            accuracy: outcome.sequence_accuracy(),
            throughput: outcome.tokens_per_second(),
            mean_batch_size: outcome.mean_batch_size(),
            slo_violation_rate: outcome.slo_violation_rate(),
            exit_rate: outcome.exit_rate(),
        }
    }
}

/// Percentage latency wins of a system against a baseline, at the percentiles
/// the paper reports.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyWins {
    /// Win at the 25th percentile (%).
    pub p25: f64,
    /// Win at the median (%).
    pub p50: f64,
    /// Win at the 95th percentile (%); negative values indicate added tail latency.
    pub p95: f64,
    /// Win on the mean (%).
    pub mean: f64,
}

impl LatencyWins {
    /// Compute wins of `system` over `baseline`.
    pub fn of(baseline: &LatencySummary, system: &LatencySummary) -> LatencyWins {
        LatencyWins {
            p25: percent_improvement(baseline.latency_ms.p25, system.latency_ms.p25),
            p50: percent_improvement(baseline.latency_ms.p50, system.latency_ms.p50),
            p95: percent_improvement(baseline.latency_ms.p95, system.latency_ms.p95),
            mean: percent_improvement(baseline.latency_ms.mean, system.latency_ms.mean),
        }
    }
}

/// Latency CDF of an outcome, for CDF-style figures (2, 4, 14, 16).
pub fn latency_cdf(outcome: &ServingOutcome) -> Cdf {
    Cdf::from_samples(&outcome.latencies_ms())
}

/// TPT CDF of a generative outcome.
pub fn tpt_cdf(outcome: &GenerativeOutcome) -> Cdf {
    Cdf::from_samples(&outcome.tpt_ms())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::BatchingPolicy;
    use crate::platform::{ServingConfig, ServingSimulator, VanillaPolicy};
    use crate::traces::ArrivalTrace;
    use apparate_exec::SampleSemantics;
    use apparate_sim::SimDuration;

    fn exec_time(b: u32) -> SimDuration {
        SimDuration::from_millis(10 + 2 * b as u64)
    }

    fn run_once() -> ServingOutcome {
        let trace = ArrivalTrace::fixed_rate(50, 20.0);
        let samples: Vec<SampleSemantics> = (0..50).map(|i| SampleSemantics::new(i, 0.5)).collect();
        let sim = ServingSimulator::new(ServingConfig {
            policy: BatchingPolicy::Immediate,
            slo: None,
        });
        let mut policy = VanillaPolicy::new(exec_time);
        sim.run(&trace, &samples, &mut policy, &exec_time)
    }

    #[test]
    fn summary_reflects_outcome() {
        let outcome = run_once();
        let summary = LatencySummary::from_outcome("vanilla", &outcome);
        assert_eq!(summary.policy, "vanilla");
        assert!(summary.latency_ms.p50 > 0.0);
        assert!(summary.accuracy >= 1.0 - 1e-12);
        assert!(summary.throughput > 0.0);
        assert_eq!(summary.exit_rate, 0.0);
    }

    #[test]
    fn wins_are_zero_against_self_and_positive_against_slower() {
        let outcome = run_once();
        let summary = LatencySummary::from_outcome("vanilla", &outcome);
        let self_wins = LatencyWins::of(&summary, &summary);
        assert!(self_wins.p50.abs() < 1e-9);
        let mut slower = summary.clone();
        slower.latency_ms.p50 *= 2.0;
        slower.latency_ms.p25 *= 2.0;
        let wins = LatencyWins::of(&slower, &summary);
        assert!((wins.p50 - 50.0).abs() < 1e-9);
        assert!((wins.p25 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone() {
        let outcome = run_once();
        let cdf = latency_cdf(&outcome);
        let points = cdf.points();
        assert!(points
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].0 <= w[1].0));
    }
}
