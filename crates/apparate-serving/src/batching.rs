//! Batching policies.
//!
//! These reproduce the queue-management strategies discussed in §2.1:
//!
//! * [`BatchingPolicy::TfServe`] — TensorFlow-Serving style knobs
//!   (`max_batch_size`, `batch_timeout_micros`): launch a full batch when
//!   enough requests are queued, otherwise wait until the oldest request has
//!   waited `batch_timeout` and launch whatever is there.
//! * [`BatchingPolicy::Clockwork`] — SLO-aware, work-conserving: whenever the
//!   GPU is free and requests are queued, launch the largest batch whose
//!   estimated completion still meets the earliest deadline in the batch
//!   (falling back to batch 1 when even that would violate).
//! * [`BatchingPolicy::Immediate`] — batch size 1, schedule as soon as the GPU
//!   is free; the latency lower bound shown as grey lines in Figure 2.

use crate::request::Request;
use apparate_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What the policy wants the platform to do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDecision {
    /// Launch a batch of the given size (drawn from the head of the queue).
    Launch(u32),
    /// Do nothing until the given time (or until the next arrival/GPU-free
    /// event, whichever comes first).
    WaitUntil(SimTime),
    /// Nothing to do (empty queue).
    Idle,
}

/// A batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchingPolicy {
    /// TensorFlow-Serving style `max_batch_size` / `batch_timeout` knobs.
    TfServe {
        /// Maximum batch size.
        max_batch_size: u32,
        /// How long the oldest queued request may wait before a partial batch
        /// is launched anyway.
        batch_timeout: SimDuration,
    },
    /// Clockwork-style SLO-aware work-conserving batching.
    Clockwork {
        /// Maximum batch size.
        max_batch_size: u32,
    },
    /// Always batch size 1, as soon as the GPU is free.
    Immediate,
}

impl BatchingPolicy {
    /// Decide what to do given the queued requests (oldest first), the current
    /// time, and an estimator of batch execution time.
    ///
    /// The platform only calls this when the GPU is idle.
    pub fn decide(
        &self,
        queue: &[Request],
        now: SimTime,
        exec_time: &dyn Fn(u32) -> SimDuration,
    ) -> BatchDecision {
        if queue.is_empty() {
            return BatchDecision::Idle;
        }
        match *self {
            BatchingPolicy::Immediate => BatchDecision::Launch(1),
            BatchingPolicy::TfServe {
                max_batch_size,
                batch_timeout,
            } => {
                let queued = queue.len() as u32;
                if queued >= max_batch_size {
                    return BatchDecision::Launch(max_batch_size);
                }
                let oldest = queue[0].arrival;
                let launch_at = oldest + batch_timeout;
                if now >= launch_at {
                    BatchDecision::Launch(queued)
                } else {
                    BatchDecision::WaitUntil(launch_at)
                }
            }
            BatchingPolicy::Clockwork { max_batch_size } => {
                let queued = queue.len() as u32;
                let cap = queued.min(max_batch_size);
                // Find the largest batch whose completion meets the earliest
                // deadline among its members. Requests are oldest-first, so the
                // earliest deadline in a prefix is (usually) the head's.
                let mut best = 1u32;
                for b in 1..=cap {
                    let completion = now + exec_time(b);
                    let earliest_deadline = queue[..b as usize]
                        .iter()
                        .filter_map(|r| r.deadline())
                        .min();
                    match earliest_deadline {
                        Some(deadline) if completion > deadline => break,
                        _ => best = b,
                    }
                }
                BatchDecision::Launch(best)
            }
        }
    }

    /// The policy's hard cap on batch size.
    pub fn max_batch_size(&self) -> u32 {
        match *self {
            BatchingPolicy::TfServe { max_batch_size, .. } => max_batch_size,
            BatchingPolicy::Clockwork { max_batch_size } => max_batch_size,
            BatchingPolicy::Immediate => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apparate_exec::SampleSemantics;

    fn requests(arrivals_ms: &[u64], slo_ms: Option<u64>) -> Vec<Request> {
        arrivals_ms
            .iter()
            .enumerate()
            .map(|(i, &ms)| {
                Request::classification(
                    i as u64,
                    SimTime::from_millis(ms),
                    SampleSemantics::new(i as u64, 0.5),
                    slo_ms.map(SimDuration::from_millis),
                )
            })
            .collect()
    }

    fn linear_exec(per_item_ms: u64) -> impl Fn(u32) -> SimDuration {
        move |b| SimDuration::from_millis(per_item_ms * b as u64)
    }

    #[test]
    fn immediate_always_launches_one() {
        let q = requests(&[0, 1, 2], None);
        let d = BatchingPolicy::Immediate.decide(&q, SimTime::from_millis(5), &linear_exec(1));
        assert_eq!(d, BatchDecision::Launch(1));
        assert_eq!(BatchingPolicy::Immediate.max_batch_size(), 1);
    }

    #[test]
    fn empty_queue_is_idle() {
        for policy in [
            BatchingPolicy::Immediate,
            BatchingPolicy::TfServe {
                max_batch_size: 8,
                batch_timeout: SimDuration::from_millis(10),
            },
            BatchingPolicy::Clockwork { max_batch_size: 8 },
        ] {
            assert_eq!(
                policy.decide(&[], SimTime::ZERO, &linear_exec(1)),
                BatchDecision::Idle
            );
        }
    }

    #[test]
    fn tfserve_launches_full_batch_when_enough_queued() {
        let policy = BatchingPolicy::TfServe {
            max_batch_size: 4,
            batch_timeout: SimDuration::from_millis(50),
        };
        let q = requests(&[0, 1, 2, 3, 4, 5], None);
        assert_eq!(
            policy.decide(&q, SimTime::from_millis(6), &linear_exec(1)),
            BatchDecision::Launch(4)
        );
    }

    #[test]
    fn tfserve_waits_for_timeout_then_launches_partial() {
        let policy = BatchingPolicy::TfServe {
            max_batch_size: 8,
            batch_timeout: SimDuration::from_millis(20),
        };
        let q = requests(&[10, 12], None);
        // Before the timeout: wait until oldest arrival + timeout = 30 ms.
        assert_eq!(
            policy.decide(&q, SimTime::from_millis(15), &linear_exec(1)),
            BatchDecision::WaitUntil(SimTime::from_millis(30))
        );
        // After the timeout: launch the partial batch.
        assert_eq!(
            policy.decide(&q, SimTime::from_millis(31), &linear_exec(1)),
            BatchDecision::Launch(2)
        );
    }

    #[test]
    fn clockwork_picks_largest_slo_safe_batch() {
        let policy = BatchingPolicy::Clockwork { max_batch_size: 16 };
        // 8 requests arrived at t=0 with 40 ms SLO; exec time is 5 ms per item.
        let q = requests(&[0; 8], Some(40));
        // At t=10, deadline is t=40, so the largest b with 10 + 5b <= 40 is 6.
        let d = policy.decide(&q, SimTime::from_millis(10), &linear_exec(5));
        assert_eq!(d, BatchDecision::Launch(6));
    }

    #[test]
    fn clockwork_is_work_conserving_even_when_slo_hopeless() {
        let policy = BatchingPolicy::Clockwork { max_batch_size: 8 };
        let q = requests(&[0, 0], Some(5));
        // Even batch 1 violates the 5 ms SLO at t=20; launch 1 anyway.
        let d = policy.decide(&q, SimTime::from_millis(20), &linear_exec(10));
        assert_eq!(d, BatchDecision::Launch(1));
    }

    #[test]
    fn clockwork_without_slos_launches_max() {
        let policy = BatchingPolicy::Clockwork { max_batch_size: 4 };
        let q = requests(&[0, 1, 2, 3, 4, 5, 6, 7], None);
        assert_eq!(
            policy.decide(&q, SimTime::from_millis(8), &linear_exec(3)),
            BatchDecision::Launch(4)
        );
    }
}
