//! Multi-replica scale-out: one shared arrival stream served by a fleet.
//!
//! The paper evaluates Apparate per model replica; production deployments run
//! *fleets* of identical replicas behind a front-end dispatcher, each replica
//! carrying its own GPU + controller pair over its own coordination link.
//! This module provides the platform half of that story:
//!
//! * [`FleetDispatch`] — how the front-end assigns arrivals to replicas
//!   (round-robin, or least-loaded via a virtual-backlog estimate);
//! * [`shard_arrivals`] / [`TraceShard`] — deterministic sharding of one
//!   shared [`ArrivalTrace`] into per-replica sub-traces that preserve
//!   absolute arrival times (replicas run in parallel wall-clock time);
//! * [`ReplicaFleet`] — runs one [`ReplicaServer`] per shard through the
//!   classification serving simulator and returns a [`FleetOutcome`];
//! * [`FleetOutcome`] — per-replica [`ServingOutcome`]s aggregated into
//!   fleet-level latency/accuracy/throughput views (the fleet makespan is the
//!   slowest replica's; latencies pool across every replica).
//!
//! The generative analogue shards whole *sequences* instead of arrivals (a
//! sequence's decode steps are stateful, so it must stay on one replica):
//!
//! * [`shard_requests`] / [`RequestShard`] — deterministic sharding of one
//!   shared generative request stream, with the least-loaded backlog model
//!   weighting each request by its output length;
//! * [`GenerativeReplicaFleet`] — runs one [`TokenReplicaServer`] per shard
//!   through the continuous-batching decode loop and returns a
//!   [`GenerativeFleetOutcome`] (pooled TPT distribution, token-weighted
//!   agreement, fleet token throughput).
//!
//! The policies themselves stay pluggable exactly as in [`crate::platform`] /
//! [`crate::generative`]: the fleet knows nothing about early exits, and an
//! adaptive policy brings its own feedback link per replica (independent
//! [`LinkStats`](apparate_exec::LinkStats) per controller).

use crate::generative::{
    ContinuousBatchingConfig, GenerativeOutcome, GenerativeSimulator, TokenPolicy, TokenSemantics,
};
use crate::metrics::LatencySummary;
use crate::platform::{ExitPolicy, ServingConfig, ServingOutcome, ServingSimulator};
use crate::request::Request;
use crate::traces::ArrivalTrace;
use apparate_exec::{FeedbackSender, ProfileRecord, SampleSemantics};
use apparate_sim::{Percentiles, SimDuration};
use apparate_telemetry::{EventKind, Telemetry};

/// How the front-end dispatcher assigns arrivals to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetDispatch {
    /// Arrival `i` goes to replica `i % n`: oblivious, perfectly fair counts.
    RoundRobin,
    /// Each arrival goes to the replica with the smallest estimated backlog.
    /// The dispatcher models every replica as a single-server queue: assigning
    /// a request advances that replica's virtual finish time by the service
    /// estimate, so bursts spread across the fleet instead of piling onto one
    /// replica. Ties break toward the lowest replica index.
    LeastLoaded,
}

impl std::str::FromStr for FleetDispatch {
    type Err = String;

    fn from_str(s: &str) -> Result<FleetDispatch, String> {
        match s {
            "round-robin" => Ok(FleetDispatch::RoundRobin),
            "least-loaded" => Ok(FleetDispatch::LeastLoaded),
            other => Err(format!("unknown dispatch policy: {other}")),
        }
    }
}

impl std::fmt::Display for FleetDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FleetDispatch::RoundRobin => "round-robin",
            FleetDispatch::LeastLoaded => "least-loaded",
        })
    }
}

/// One replica's share of the shared arrival stream.
#[derive(Debug, Clone)]
pub struct TraceShard {
    /// The replica's sub-trace, with the *original* (absolute) arrival times.
    pub trace: ArrivalTrace,
    /// For each shard arrival, its index in the shared trace — used to carry
    /// per-request payloads (semantics samples) along with the arrival.
    pub indices: Vec<usize>,
}

impl TraceShard {
    /// Gather this shard's slice of a per-request payload array.
    pub fn gather<T: Copy>(&self, shared: &[T]) -> Vec<T> {
        self.indices.iter().map(|&i| shared[i]).collect()
    }
}

/// Deterministically shard a shared arrival trace across `replicas` replicas.
///
/// `service_estimate` is the dispatcher's per-request service-time estimate
/// (only used by [`FleetDispatch::LeastLoaded`]); a coarse batch-1 execution
/// time is what a production front-end would know.
pub fn shard_arrivals(
    trace: &ArrivalTrace,
    replicas: usize,
    dispatch: FleetDispatch,
    service_estimate: SimDuration,
) -> Vec<TraceShard> {
    assert!(replicas >= 1, "a fleet needs at least one replica");
    let mut times: Vec<Vec<apparate_sim::SimTime>> = vec![Vec::new(); replicas];
    let mut indices: Vec<Vec<usize>> = vec![Vec::new(); replicas];
    // Virtual finish time of each replica's modelled backlog (LeastLoaded).
    let mut backlog = vec![apparate_sim::SimTime::ZERO; replicas];
    for (i, &at) in trace.times().iter().enumerate() {
        let r = match dispatch {
            FleetDispatch::RoundRobin => i % replicas,
            FleetDispatch::LeastLoaded => {
                // The replica whose modelled backlog drains first; ties break
                // toward the lowest index, keeping the assignment total-order
                // deterministic.
                let r = (0..replicas)
                    .min_by_key(|&r| (backlog[r], r))
                    .expect("replicas >= 1");
                backlog[r] = backlog[r].max(at) + service_estimate;
                r
            }
        };
        times[r].push(at);
        indices[r].push(i);
    }
    times
        .into_iter()
        .zip(indices)
        .map(|(t, indices)| TraceShard {
            trace: ArrivalTrace::from_times(t),
            indices,
        })
        .collect()
}

/// Everything one replica needs to serve its shard: an exit policy, the
/// batch-time estimator its batching decisions use, and (for adaptive
/// policies) the uplink handle its controller listens on.
pub struct ReplicaServer<'a> {
    /// The replica's exit policy (each replica gets its own instance — fleet
    /// replicas never share controller state).
    pub policy: &'a mut dyn ExitPolicy,
    /// Batch-time estimator for SLO-aware batching decisions.
    pub estimate: &'a dyn Fn(u32) -> SimDuration,
    /// Producer half of this replica's GPU → controller profiling link, if the
    /// policy has a controller.
    pub feedback: Option<FeedbackSender<ProfileRecord>>,
}

/// A fleet of identical serving replicas behind one dispatcher.
#[derive(Debug, Clone)]
pub struct ReplicaFleet {
    /// Number of replicas.
    pub replicas: usize,
    /// Dispatch policy of the front end.
    pub dispatch: FleetDispatch,
    /// Per-replica serving configuration (batching + SLO), identical across
    /// the fleet.
    pub serving: ServingConfig,
    /// Telemetry sink shared by the dispatcher and every replica simulator.
    telemetry: Telemetry,
}

impl ReplicaFleet {
    /// Create a fleet. Panics if `replicas` is zero.
    pub fn new(replicas: usize, dispatch: FleetDispatch, serving: ServingConfig) -> ReplicaFleet {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        ReplicaFleet {
            replicas,
            dispatch,
            serving,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry sink. Dispatch decisions are traced per arrival and
    /// every replica's serving events are tagged with its replica index.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ReplicaFleet {
        self.telemetry = telemetry;
        self
    }

    /// Shard a shared trace across this fleet's replicas.
    pub fn shard(&self, trace: &ArrivalTrace, service_estimate: SimDuration) -> Vec<TraceShard> {
        shard_arrivals(trace, self.replicas, self.dispatch, service_estimate)
    }

    /// Serve one shared trace: shard it, then run every replica's server over
    /// its shard via [`ReplicaFleet::run_sharded`].
    pub fn run(
        &self,
        trace: &ArrivalTrace,
        samples: &[SampleSemantics],
        service_estimate: SimDuration,
        servers: Vec<ReplicaServer<'_>>,
    ) -> FleetOutcome {
        assert_eq!(
            trace.len(),
            samples.len(),
            "one semantic sample per arrival is required"
        );
        let shards = self.shard(trace, service_estimate);
        self.run_sharded(&shards, samples, servers)
    }

    /// Serve pre-computed shards (each replica is an independent
    /// [`ServingSimulator`] with the fleet's serving config) and aggregate.
    /// Sharding depends only on arrivals and dispatch, so callers comparing
    /// several policy families over the *same* shards should shard once and
    /// call this per family. `servers` must hold exactly one
    /// [`ReplicaServer`] per replica, in replica order.
    pub fn run_sharded(
        &self,
        shards: &[TraceShard],
        samples: &[SampleSemantics],
        servers: Vec<ReplicaServer<'_>>,
    ) -> FleetOutcome {
        assert_eq!(
            servers.len(),
            self.replicas,
            "one server per replica is required"
        );
        assert_eq!(
            shards.len(),
            self.replicas,
            "one shard per replica is required"
        );
        let traced = self.telemetry.is_enabled();
        let mut per_replica = Vec::with_capacity(self.replicas);
        let mut shard_sizes = Vec::with_capacity(self.replicas);
        for (replica, (shard, server)) in shards.iter().zip(servers).enumerate() {
            let shard_samples = shard.gather(samples);
            shard_sizes.push(shard.trace.len());
            let mut sim = ServingSimulator::new(self.serving.clone());
            if traced {
                // Replicas run sequentially, so re-tagging the shared recorder
                // before each run labels every event with its replica index.
                self.telemetry.set_replica(replica as u32);
                for (&shared_index, &at) in shard.indices.iter().zip(shard.trace.times()) {
                    self.telemetry.emit(at, || EventKind::Dispatch {
                        request_id: shared_index as u64,
                        replica: replica as u32,
                    });
                }
                sim = sim.with_telemetry(self.telemetry.clone());
            }
            per_replica.push(sim.run_with_feedback(
                &shard.trace,
                &shard_samples,
                server.policy,
                server.estimate,
                server.feedback.as_ref(),
            ));
        }
        FleetOutcome {
            per_replica,
            shard_sizes,
        }
    }
}

/// Aggregate result of one fleet run: per-replica outcomes plus fleet-level
/// views over the pooled records.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// One serving outcome per replica, in replica order.
    pub per_replica: Vec<ServingOutcome>,
    /// Requests dispatched to each replica (sums to the shared trace length).
    pub shard_sizes: Vec<usize>,
}

impl FleetOutcome {
    /// Total requests served across the fleet.
    pub fn total_requests(&self) -> usize {
        self.per_replica.iter().map(|o| o.records.len()).sum()
    }

    /// Smallest shard any replica received (starvation indicator).
    pub fn min_shard(&self) -> usize {
        self.shard_sizes.iter().copied().min().unwrap_or(0)
    }

    /// Response latencies pooled across every replica, in milliseconds.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.per_replica
            .iter()
            .flat_map(|o| o.latencies_ms())
            .collect()
    }

    /// Fleet makespan: replicas run in parallel, so the fleet finishes when
    /// its slowest replica does.
    pub fn makespan(&self) -> SimDuration {
        self.per_replica
            .iter()
            .map(|o| o.makespan)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Fleet throughput in requests per second: total completions over the
    /// fleet makespan.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.makespan().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_requests() as f64 / secs
    }

    /// Request-weighted accuracy across the fleet.
    pub fn accuracy(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 1.0;
        }
        let correct: usize = self
            .per_replica
            .iter()
            .map(|o| o.records.iter().filter(|r| r.correct).count())
            .sum();
        correct as f64 / total as f64
    }

    /// Request-weighted early-exit rate across the fleet.
    pub fn exit_rate(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 0.0;
        }
        let exited: usize = self
            .per_replica
            .iter()
            .map(|o| o.records.iter().filter(|r| r.exit_ramp.is_some()).count())
            .sum();
        exited as f64 / total as f64
    }

    /// Request-weighted SLO violation rate across the fleet.
    pub fn slo_violation_rate(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 0.0;
        }
        let violated: usize = self
            .per_replica
            .iter()
            .map(|o| o.records.iter().filter(|r| r.slo_violated).count())
            .sum();
        violated as f64 / total as f64
    }

    /// Batch-weighted mean batch size across the fleet.
    pub fn mean_batch_size(&self) -> f64 {
        let batches: usize = self.per_replica.iter().map(|o| o.batch_sizes.len()).sum();
        if batches == 0 {
            return 0.0;
        }
        let items: u64 = self
            .per_replica
            .iter()
            .flat_map(|o| o.batch_sizes.iter().map(|&b| b as u64))
            .sum();
        items as f64 / batches as f64
    }

    /// Summarise the fleet run the way [`LatencySummary::from_outcome`] does
    /// for a single replica, over the pooled latencies.
    pub fn summary(&self, policy: impl Into<String>) -> LatencySummary {
        LatencySummary {
            policy: policy.into(),
            latency_ms: Percentiles::from_samples(&self.latencies_ms()),
            accuracy: self.accuracy(),
            throughput: self.throughput_rps(),
            mean_batch_size: self.mean_batch_size(),
            slo_violation_rate: self.slo_violation_rate(),
            exit_rate: self.exit_rate(),
        }
    }
}

/// One replica's share of a shared generative request stream.
#[derive(Debug, Clone)]
pub struct RequestShard {
    /// The replica's requests, with their *original* arrival times.
    pub requests: Vec<Request>,
    /// For each shard request, its index in the shared stream.
    pub indices: Vec<usize>,
}

/// Deterministically shard a shared generative request stream across
/// `replicas` replicas. Whole sequences are dispatched (a sequence's decode
/// steps are stateful, so it cannot migrate); the [`FleetDispatch::LeastLoaded`]
/// backlog model therefore weights each request by its output length:
/// `output_tokens × per_token_estimate`, the decode time a front end would
/// project from the model's batch-1 step time. `requests` must be in arrival
/// order (the order the front end observes them).
pub fn shard_requests(
    requests: &[Request],
    replicas: usize,
    dispatch: FleetDispatch,
    per_token_estimate: SimDuration,
) -> Vec<RequestShard> {
    assert!(replicas >= 1, "a fleet needs at least one replica");
    let mut shards: Vec<RequestShard> = (0..replicas)
        .map(|_| RequestShard {
            requests: Vec::new(),
            indices: Vec::new(),
        })
        .collect();
    let mut backlog = vec![apparate_sim::SimTime::ZERO; replicas];
    for (i, request) in requests.iter().enumerate() {
        let r = match dispatch {
            FleetDispatch::RoundRobin => i % replicas,
            FleetDispatch::LeastLoaded => {
                let r = (0..replicas)
                    .min_by_key(|&r| (backlog[r], r))
                    .expect("replicas >= 1");
                let service = SimDuration::from_micros_f64(
                    per_token_estimate.as_micros() as f64 * request.output_tokens.max(1) as f64,
                );
                backlog[r] = backlog[r].max(request.arrival) + service;
                r
            }
        };
        shards[r].requests.push(request.clone());
        shards[r].indices.push(i);
    }
    shards
}

/// Everything one generative replica needs to serve its shard: a token policy
/// and (for adaptive policies) the uplink handle its controller listens on.
pub struct TokenReplicaServer<'a> {
    /// The replica's token policy (each replica gets its own instance — fleet
    /// replicas never share controller state).
    pub policy: &'a mut dyn TokenPolicy,
    /// Producer half of this replica's GPU → controller profiling link, if the
    /// policy has a controller.
    pub feedback: Option<FeedbackSender<ProfileRecord>>,
}

/// A fleet of identical continuous-batching replicas behind one dispatcher.
#[derive(Debug, Clone)]
pub struct GenerativeReplicaFleet {
    /// Number of replicas.
    pub replicas: usize,
    /// Dispatch policy of the front end.
    pub dispatch: FleetDispatch,
    /// Per-replica continuous-batching configuration, identical across the
    /// fleet.
    pub batching: ContinuousBatchingConfig,
    /// Telemetry sink shared by the dispatcher and every replica simulator.
    telemetry: Telemetry,
}

impl GenerativeReplicaFleet {
    /// Create a generative fleet. Panics if `replicas` is zero.
    pub fn new(
        replicas: usize,
        dispatch: FleetDispatch,
        batching: ContinuousBatchingConfig,
    ) -> GenerativeReplicaFleet {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        GenerativeReplicaFleet {
            replicas,
            dispatch,
            batching,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry sink. Dispatch decisions are traced per request and
    /// every replica's decode events are tagged with its replica index.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> GenerativeReplicaFleet {
        self.telemetry = telemetry;
        self
    }

    /// Shard a shared request stream across this fleet's replicas.
    pub fn shard(
        &self,
        requests: &[Request],
        per_token_estimate: SimDuration,
    ) -> Vec<RequestShard> {
        shard_requests(requests, self.replicas, self.dispatch, per_token_estimate)
    }

    /// Serve one shared request stream: shard it, then run every replica's
    /// server over its shard via [`GenerativeReplicaFleet::run_sharded`].
    pub fn run(
        &self,
        requests: &[Request],
        semantics: &dyn TokenSemantics,
        per_token_estimate: SimDuration,
        servers: Vec<TokenReplicaServer<'_>>,
    ) -> GenerativeFleetOutcome {
        let shards = self.shard(requests, per_token_estimate);
        self.run_sharded(&shards, semantics, servers)
    }

    /// Serve pre-computed shards (each replica is an independent
    /// [`GenerativeSimulator`] with the fleet's batching config) and
    /// aggregate. Sharding depends only on arrivals, output lengths and
    /// dispatch, so callers comparing several policy families over the *same*
    /// shards should shard once and call this per family. Token semantics are
    /// keyed by request id, so the shared provider serves every replica
    /// unchanged.
    pub fn run_sharded(
        &self,
        shards: &[RequestShard],
        semantics: &dyn TokenSemantics,
        servers: Vec<TokenReplicaServer<'_>>,
    ) -> GenerativeFleetOutcome {
        assert_eq!(
            servers.len(),
            self.replicas,
            "one server per replica is required"
        );
        assert_eq!(
            shards.len(),
            self.replicas,
            "one shard per replica is required"
        );
        let traced = self.telemetry.is_enabled();
        let mut per_replica = Vec::with_capacity(self.replicas);
        let mut shard_sizes = Vec::with_capacity(self.replicas);
        for (replica, (shard, server)) in shards.iter().zip(servers).enumerate() {
            shard_sizes.push(shard.requests.len());
            let mut sim = GenerativeSimulator::new(self.batching);
            if traced {
                // Replicas run sequentially, so re-tagging the shared recorder
                // before each run labels every event with its replica index.
                self.telemetry.set_replica(replica as u32);
                for request in &shard.requests {
                    self.telemetry
                        .emit(request.arrival, || EventKind::Dispatch {
                            request_id: request.id,
                            replica: replica as u32,
                        });
                }
                sim = sim.with_telemetry(self.telemetry.clone());
            }
            per_replica.push(sim.run_with_feedback(
                &shard.requests,
                semantics,
                server.policy,
                server.feedback.as_ref(),
            ));
        }
        GenerativeFleetOutcome {
            per_replica,
            shard_sizes,
        }
    }
}

/// Aggregate result of one generative fleet run: per-replica outcomes plus
/// fleet-level views over the pooled token records.
#[derive(Debug, Clone)]
pub struct GenerativeFleetOutcome {
    /// One generative outcome per replica, in replica order.
    pub per_replica: Vec<GenerativeOutcome>,
    /// Requests dispatched to each replica (sums to the shared stream length).
    pub shard_sizes: Vec<usize>,
}

impl GenerativeFleetOutcome {
    /// Total tokens emitted across the fleet.
    pub fn total_tokens(&self) -> usize {
        self.per_replica.iter().map(|o| o.tokens.len()).sum()
    }

    /// Total completed requests across the fleet.
    pub fn completed_requests(&self) -> usize {
        self.per_replica.iter().map(|o| o.completed_requests).sum()
    }

    /// Smallest shard any replica received (starvation indicator).
    pub fn min_shard(&self) -> usize {
        self.shard_sizes.iter().copied().min().unwrap_or(0)
    }

    /// Time-per-token values pooled across every replica, in milliseconds.
    pub fn tpt_ms(&self) -> Vec<f64> {
        self.per_replica.iter().flat_map(|o| o.tpt_ms()).collect()
    }

    /// Fleet makespan: replicas decode in parallel, so the fleet finishes
    /// when its slowest replica does.
    pub fn makespan(&self) -> SimDuration {
        self.per_replica
            .iter()
            .map(|o| o.makespan)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Fleet generation throughput in tokens per second: total tokens over
    /// the fleet makespan.
    pub fn tokens_per_second(&self) -> f64 {
        let secs = self.makespan().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_tokens() as f64 / secs
    }

    /// Token-weighted agreement rate with the original model across the fleet.
    pub fn sequence_accuracy(&self) -> f64 {
        let total = self.total_tokens();
        if total == 0 {
            return 1.0;
        }
        let correct: usize = self
            .per_replica
            .iter()
            .map(|o| o.tokens.iter().filter(|t| t.correct).count())
            .sum();
        correct as f64 / total as f64
    }

    /// Token-weighted early-exit rate across the fleet.
    pub fn exit_rate(&self) -> f64 {
        let total = self.total_tokens();
        if total == 0 {
            return 0.0;
        }
        let exited: usize = self
            .per_replica
            .iter()
            .map(|o| o.tokens.iter().filter(|t| t.exit_ramp.is_some()).count())
            .sum();
        exited as f64 / total as f64
    }

    /// Token-weighted TBT-SLO violation rate across the fleet. Zero whenever
    /// the batching config carries no [`ContinuousBatchingConfig::tbt_slo`].
    pub fn slo_violation_rate(&self) -> f64 {
        let total = self.total_tokens();
        if total == 0 {
            return 0.0;
        }
        let violated: usize = self
            .per_replica
            .iter()
            .map(|o| o.tokens.iter().filter(|t| t.slo_violated).count())
            .sum();
        violated as f64 / total as f64
    }

    /// Step-weighted mean decode-batch size across the fleet.
    pub fn mean_batch_size(&self) -> f64 {
        let steps: usize = self.per_replica.iter().map(|o| o.batch_sizes.len()).sum();
        if steps == 0 {
            return 0.0;
        }
        let items: u64 = self
            .per_replica
            .iter()
            .flat_map(|o| o.batch_sizes.iter().map(|&b| b as u64))
            .sum();
        items as f64 / steps as f64
    }

    /// Summarise the fleet run over the pooled TPT samples, the way
    /// [`LatencySummary::from_generative`] does for a single replica.
    pub fn summary(&self, policy: impl Into<String>) -> LatencySummary {
        LatencySummary {
            policy: policy.into(),
            latency_ms: Percentiles::from_samples(&self.tpt_ms()),
            accuracy: self.sequence_accuracy(),
            throughput: self.tokens_per_second(),
            mean_batch_size: self.mean_batch_size(),
            slo_violation_rate: self.slo_violation_rate(),
            exit_rate: self.exit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::BatchingPolicy;
    use crate::platform::VanillaPolicy;

    fn samples(n: usize) -> Vec<SampleSemantics> {
        (0..n)
            .map(|i| SampleSemantics::new(i as u64, 0.5))
            .collect()
    }

    fn exec_time(b: u32) -> SimDuration {
        SimDuration::from_millis(10 + 2 * b as u64)
    }

    #[test]
    fn shard_counts_sum_to_trace_length_for_both_dispatchers() {
        let trace = ArrivalTrace::maf_like(977, 40.0, 7);
        for dispatch in [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
            for n in [1, 2, 4, 8] {
                let shards = shard_arrivals(&trace, n, dispatch, exec_time(1));
                assert_eq!(shards.len(), n);
                let total: usize = shards.iter().map(|s| s.trace.len()).sum();
                assert_eq!(total, trace.len(), "{dispatch} x{n} loses/duplicates");
                // Index sets partition the shared trace.
                let mut seen: Vec<usize> = shards.iter().flat_map(|s| s.indices.clone()).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..trace.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn round_robin_counts_are_fair() {
        let trace = ArrivalTrace::fixed_rate(100, 50.0);
        let shards = shard_arrivals(&trace, 4, FleetDispatch::RoundRobin, exec_time(1));
        for s in &shards {
            assert_eq!(s.trace.len(), 25);
        }
    }

    #[test]
    fn least_loaded_never_starves_a_replica() {
        // Bursty arrivals, 8 replicas: the backlog model must still hand every
        // replica a meaningful share of the stream.
        let trace = ArrivalTrace::maf_like(2_000, 60.0, 11);
        let shards = shard_arrivals(&trace, 8, FleetDispatch::LeastLoaded, exec_time(1));
        let fair = trace.len() / 8;
        for (r, s) in shards.iter().enumerate() {
            assert!(
                s.trace.len() >= fair / 4,
                "replica {r} starved: {} of fair share {fair}",
                s.trace.len()
            );
        }
    }

    #[test]
    fn sharding_is_deterministic() {
        let trace = ArrivalTrace::poisson(500, 30.0, 3);
        let a = shard_arrivals(&trace, 4, FleetDispatch::LeastLoaded, exec_time(1));
        let b = shard_arrivals(&trace, 4, FleetDispatch::LeastLoaded, exec_time(1));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.indices, y.indices);
            assert_eq!(x.trace.times(), y.trace.times());
        }
    }

    #[test]
    fn shards_preserve_absolute_arrival_times() {
        let trace = ArrivalTrace::fixed_rate(20, 10.0);
        let shards = shard_arrivals(&trace, 3, FleetDispatch::RoundRobin, exec_time(1));
        for shard in &shards {
            for (&idx, &at) in shard.indices.iter().zip(shard.trace.times()) {
                assert_eq!(at, trace.times()[idx]);
            }
        }
    }

    #[test]
    fn fleet_run_serves_everything_and_aggregates() {
        let n = 200;
        let trace = ArrivalTrace::fixed_rate(n, 100.0);
        let shared = samples(n);
        let fleet = ReplicaFleet::new(
            4,
            FleetDispatch::LeastLoaded,
            ServingConfig {
                policy: BatchingPolicy::Immediate,
                slo: None,
            },
        );
        let mut policies: Vec<_> = (0..4).map(|_| VanillaPolicy::new(exec_time)).collect();
        let estimate = exec_time;
        let servers: Vec<ReplicaServer<'_>> = policies
            .iter_mut()
            .map(|p| ReplicaServer {
                policy: p,
                estimate: &estimate,
                feedback: None,
            })
            .collect();
        let out = fleet.run(&trace, &shared, exec_time(1), servers);
        assert_eq!(out.total_requests(), n);
        assert_eq!(out.shard_sizes.iter().sum::<usize>(), n);
        assert!(out.min_shard() > 0);
        assert!(out.accuracy() >= 1.0 - 1e-12);
        assert_eq!(out.exit_rate(), 0.0);
        assert!(out.throughput_rps() > 0.0);
        let summary = out.summary("vanilla");
        assert_eq!(summary.latency_ms.count, n);
    }

    use crate::generative::VanillaTokenPolicy;

    struct UniformTokens;
    impl TokenSemantics for UniformTokens {
        fn token(&self, request_id: u64, token_index: u32) -> SampleSemantics {
            SampleSemantics::new(request_id * 10_000 + token_index as u64, 0.4)
        }
    }

    fn gen_requests(n: usize, tokens_each: u32, rate: f64) -> Vec<Request> {
        let trace = ArrivalTrace::poisson(n, rate, 3);
        trace
            .times()
            .iter()
            .enumerate()
            .map(|(i, &at)| {
                Request::generative(
                    i as u64,
                    at,
                    SampleSemantics::new(i as u64, 0.4),
                    tokens_each,
                )
            })
            .collect()
    }

    fn decode_time(b: u32) -> SimDuration {
        SimDuration::from_micros(10_000 + 1_500 * b as u64)
    }

    #[test]
    fn request_shards_partition_the_stream_for_both_dispatchers() {
        let requests = gen_requests(100, 20, 10.0);
        for dispatch in [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
            for n in [1usize, 2, 4, 8] {
                let shards = shard_requests(&requests, n, dispatch, decode_time(1));
                assert_eq!(shards.len(), n);
                let total: usize = shards.iter().map(|s| s.requests.len()).sum();
                assert_eq!(total, requests.len(), "{dispatch} x{n} loses/duplicates");
                let mut seen: Vec<usize> = shards.iter().flat_map(|s| s.indices.clone()).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..requests.len()).collect::<Vec<_>>());
                for shard in &shards {
                    for (&idx, request) in shard.indices.iter().zip(&shard.requests) {
                        assert_eq!(request.arrival, requests[idx].arrival);
                        assert_eq!(request.id, requests[idx].id);
                    }
                }
            }
        }
    }

    #[test]
    fn least_loaded_weights_requests_by_output_length() {
        // Two long sequences arriving back-to-back must land on different
        // replicas: the backlog model charges output_tokens × per-token time,
        // so after the first long request its replica is the loaded one.
        let mut requests = gen_requests(8, 10, 1_000.0);
        requests[0].output_tokens = 1_000;
        requests[1].output_tokens = 1_000;
        let shards = shard_requests(&requests, 2, FleetDispatch::LeastLoaded, decode_time(1));
        let replica_of = |id: u64| {
            shards
                .iter()
                .position(|s| s.requests.iter().any(|r| r.id == id))
                .expect("dispatched")
        };
        assert_ne!(
            replica_of(0),
            replica_of(1),
            "both long sequences piled onto one replica"
        );
    }

    #[test]
    fn generative_fleet_serves_every_token_and_aggregates() {
        let requests = gen_requests(24, 15, 20.0);
        let fleet = GenerativeReplicaFleet::new(
            4,
            FleetDispatch::LeastLoaded,
            ContinuousBatchingConfig {
                max_batch_size: 8,
                tbt_slo: None,
            },
        );
        let run = || {
            let mut policies: Vec<_> = (0..4)
                .map(|_| VanillaTokenPolicy::new(decode_time))
                .collect();
            let servers: Vec<TokenReplicaServer<'_>> = policies
                .iter_mut()
                .map(|p| TokenReplicaServer {
                    policy: p,
                    feedback: None,
                })
                .collect();
            fleet.run(&requests, &UniformTokens, decode_time(1), servers)
        };
        let out = run();
        assert_eq!(out.total_tokens(), 24 * 15);
        assert_eq!(out.completed_requests(), 24);
        assert_eq!(out.shard_sizes.iter().sum::<usize>(), 24);
        assert!(out.min_shard() > 0);
        assert!(out.sequence_accuracy() >= 1.0 - 1e-12);
        assert_eq!(out.exit_rate(), 0.0);
        assert!(out.tokens_per_second() > 0.0);
        let summary = out.summary("vanilla");
        assert_eq!(summary.latency_ms.count, 24 * 15);
        // Replicas decode in parallel: the fleet makespan is the slowest
        // replica's, not the sum.
        let slowest = out.per_replica.iter().map(|o| o.makespan).max().unwrap();
        assert_eq!(out.makespan(), slowest);
        // Deterministic: same stream, same shards, same pooled outcome.
        let again = run();
        assert_eq!(out.shard_sizes, again.shard_sizes);
        assert_eq!(out.tpt_ms(), again.tpt_ms());
    }

    #[test]
    fn generative_fleet_scales_token_bandwidth_on_a_saturated_stream() {
        // Arrivals far above one replica's decode capacity keep its continuous
        // batch pinned at the cap while sequences queue; four replicas decode
        // four thinner batches in parallel, so fleet token throughput must
        // scale near-linearly and the pooled steady-state TPT must drop
        // (smaller decode batches step faster).
        let requests = gen_requests(48, 30, 1_000.0);
        let run = |replicas: usize| {
            let fleet = GenerativeReplicaFleet::new(
                replicas,
                FleetDispatch::LeastLoaded,
                ContinuousBatchingConfig {
                    max_batch_size: 16,
                    tbt_slo: None,
                },
            );
            let mut policies: Vec<_> = (0..replicas)
                .map(|_| VanillaTokenPolicy::new(decode_time))
                .collect();
            let servers: Vec<TokenReplicaServer<'_>> = policies
                .iter_mut()
                .map(|p| TokenReplicaServer {
                    policy: p,
                    feedback: None,
                })
                .collect();
            fleet.run(&requests, &UniformTokens, decode_time(1), servers)
        };
        let single = run(1);
        let quad = run(4);
        assert!(
            quad.tokens_per_second() > 2.5 * single.tokens_per_second(),
            "4-replica fleet bandwidth {} tok/s should far exceed saturated single-replica {}",
            quad.tokens_per_second(),
            single.tokens_per_second()
        );
        let single_p50 = Percentiles::from_samples(&single.tpt_ms()).p50;
        let quad_p50 = Percentiles::from_samples(&quad.tpt_ms()).p50;
        assert!(
            quad_p50 < single_p50,
            "4-replica median TPT {quad_p50} ms should beat single-replica {single_p50} ms"
        );
    }

    #[test]
    fn traced_fleet_tags_every_replica_and_dispatch() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let n = 120;
        let trace = ArrivalTrace::fixed_rate(n, 100.0);
        let shared = samples(n);
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        let fleet = ReplicaFleet::new(
            3,
            FleetDispatch::RoundRobin,
            ServingConfig {
                policy: BatchingPolicy::Immediate,
                slo: None,
            },
        )
        .with_telemetry(telemetry.clone());
        let mut policies: Vec<_> = (0..3).map(|_| VanillaPolicy::new(exec_time)).collect();
        let estimate = exec_time;
        let servers: Vec<ReplicaServer<'_>> = policies
            .iter_mut()
            .map(|p| ReplicaServer {
                policy: p,
                estimate: &estimate,
                feedback: None,
            })
            .collect();
        let out = fleet.run(&trace, &shared, exec_time(1), servers);
        assert_eq!(out.total_requests(), n);
        let snap = telemetry.snapshot().expect("recording");
        // One dispatch event per arrival, and the per-event replica tag agrees
        // with the round-robin assignment.
        assert_eq!(snap.count_kind("dispatch"), n);
        for event in snap
            .events
            .iter()
            .filter(|e| e.kind.kind_name() == "dispatch")
        {
            if let apparate_telemetry::EventKind::Dispatch {
                request_id,
                replica,
            } = event.kind
            {
                assert_eq!(replica, (request_id % 3) as u32);
                assert_eq!(event.replica, replica);
            }
        }
        // Every replica contributed a queue-depth series and batch events.
        let queue_replicas: Vec<u32> = snap
            .series_named("queue_depth")
            .iter()
            .map(|s| s.replica)
            .collect();
        for r in 0..3u32 {
            assert!(
                queue_replicas.contains(&r),
                "no queue series for replica {r}"
            );
        }
        assert_eq!(snap.counter_total("batches") as usize, {
            let batches: usize = out.per_replica.iter().map(|o| o.batch_sizes.len()).sum();
            batches
        });
    }

    #[test]
    fn traced_generative_fleet_pools_tbt_violations() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let requests = gen_requests(24, 15, 20.0);
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        // A deliberately strict TBT SLO: batched decode steps exceed it.
        let fleet = GenerativeReplicaFleet::new(
            2,
            FleetDispatch::LeastLoaded,
            ContinuousBatchingConfig {
                max_batch_size: 8,
                tbt_slo: Some(SimDuration::from_millis(12)),
            },
        )
        .with_telemetry(telemetry.clone());
        let mut policies: Vec<_> = (0..2)
            .map(|_| VanillaTokenPolicy::new(decode_time))
            .collect();
        let servers: Vec<TokenReplicaServer<'_>> = policies
            .iter_mut()
            .map(|p| TokenReplicaServer {
                policy: p,
                feedback: None,
            })
            .collect();
        let out = fleet.run(&requests, &UniformTokens, decode_time(1), servers);
        assert_eq!(out.total_tokens(), 24 * 15);
        // The pooled fleet rate now reflects per-token SLO outcomes instead of
        // the old hardcoded zero, and matches the summary row.
        let rate = out.slo_violation_rate();
        assert!(rate > 0.0, "strict TBT SLO must be violated under batching");
        assert_eq!(out.summary("apparate").slo_violation_rate, rate);
        let snap = telemetry.snapshot().expect("recording");
        assert_eq!(snap.count_kind("dispatch"), 24);
        assert_eq!(
            snap.counter_total("slo_violations") as usize,
            out.per_replica
                .iter()
                .map(|o| o.tokens.iter().filter(|t| t.slo_violated).count())
                .sum::<usize>()
        );
    }

    #[test]
    fn four_replicas_drain_an_overloaded_stream_faster_than_one() {
        // 100 rps against ~83 rps single-replica batch-1 capacity: one replica
        // queues without bound, four replicas are comfortably provisioned, so
        // the pooled median latency must drop sharply.
        let n = 300;
        let trace = ArrivalTrace::fixed_rate(n, 100.0);
        let shared = samples(n);
        let config = ServingConfig {
            policy: BatchingPolicy::Immediate,
            slo: None,
        };
        let run = |replicas: usize| {
            let fleet = ReplicaFleet::new(replicas, FleetDispatch::LeastLoaded, config.clone());
            let mut policies: Vec<_> = (0..replicas)
                .map(|_| VanillaPolicy::new(exec_time))
                .collect();
            let estimate = exec_time;
            let servers: Vec<ReplicaServer<'_>> = policies
                .iter_mut()
                .map(|p| ReplicaServer {
                    policy: p,
                    estimate: &estimate,
                    feedback: None,
                })
                .collect();
            let out = fleet.run(&trace, &shared, exec_time(1), servers);
            Percentiles::from_samples(&out.latencies_ms()).p50
        };
        let single = run(1);
        let quad = run(4);
        assert!(
            quad < single / 2.0,
            "4-replica p50 {quad} ms should be far below single-replica {single} ms"
        );
    }
}
