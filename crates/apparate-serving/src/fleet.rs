//! Multi-replica scale-out: one shared arrival stream served by a fleet.
//!
//! The paper evaluates Apparate per model replica; production deployments run
//! *fleets* of identical replicas behind a front-end dispatcher, each replica
//! carrying its own GPU + controller pair over its own coordination link.
//! This module provides the platform half of that story:
//!
//! * [`FleetDispatch`] — how the front-end assigns arrivals to replicas
//!   (round-robin, or least-loaded via a virtual-backlog estimate);
//! * [`shard_arrivals`] / [`TraceShard`] — deterministic sharding of one
//!   shared [`ArrivalTrace`] into per-replica sub-traces that preserve
//!   absolute arrival times (replicas run in parallel wall-clock time);
//! * [`ReplicaFleet::serve`] / [`GenerativeReplicaFleet::serve`] — build a
//!   [`FleetRun`]: named per-replica units ([`ReplicaUnit`] /
//!   [`TokenReplicaUnit`]) over shared read-only shards and samples, with an
//!   explicit [`FleetRun::threads`] knob (default: available parallelism,
//!   `1` ⇒ the sequential path);
//! * [`FleetOutcome`] — per-replica outcomes aggregated into fleet-level
//!   views via the [`FleetOutcomeView`] trait (the fleet makespan is the
//!   slowest replica's; latencies pool across every replica).
//!
//! Replicas are independent discrete-event simulations over disjoint shards,
//! so a [`FleetRun`] executes them on real scoped threads
//! (`crossbeam::thread::scope`) and still produces *byte-identical* merged
//! output for any thread count: each replica records telemetry through its
//! own [`Telemetry::for_replica`] handle into a per-replica buffer, results
//! are joined and re-ordered by replica index, and the telemetry snapshot
//! merges buffers deterministically by `(time, replica)`.
//!
//! The generative analogue shards whole *sequences* instead of arrivals (a
//! sequence's decode steps are stateful, so it must stay on one replica):
//!
//! * [`shard_requests`] / [`RequestShard`] — deterministic sharding of one
//!   shared generative request stream, with the least-loaded backlog model
//!   weighting each request by its output length;
//! * [`GenerativeReplicaFleet`] — runs one [`TokenReplicaUnit`] per shard
//!   through the continuous-batching decode loop and returns a
//!   [`GenerativeFleetOutcome`] (pooled TPT distribution, token-weighted
//!   agreement, fleet token throughput).
//!
//! The policies themselves stay pluggable exactly as in [`crate::platform`] /
//! [`crate::generative`]: the fleet knows nothing about early exits, and an
//! adaptive policy brings its own feedback link per replica (independent
//! [`LinkStats`](apparate_exec::LinkStats) per controller).

use crate::generative::{
    ContinuousBatchingConfig, GenerativeOutcome, GenerativeSimulator, TokenPolicy, TokenSemantics,
};
use crate::metrics::LatencySummary;
use crate::platform::{ExitPolicy, ServingConfig, ServingOutcome, ServingSimulator};
use crate::request::Request;
use crate::traces::ArrivalTrace;
use apparate_exec::{FeedbackSender, ProfileRecord, SampleSemantics};
use apparate_sim::{Percentiles, SimDuration};
use apparate_telemetry::Telemetry;

/// How the front-end dispatcher assigns arrivals to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetDispatch {
    /// Arrival `i` goes to replica `i % n`: oblivious, perfectly fair counts.
    RoundRobin,
    /// Each arrival goes to the replica with the smallest estimated backlog.
    /// The dispatcher models every replica as a single-server queue: assigning
    /// a request advances that replica's virtual finish time by the service
    /// estimate, so bursts spread across the fleet instead of piling onto one
    /// replica. Ties break toward the lowest replica index.
    LeastLoaded,
}

impl std::str::FromStr for FleetDispatch {
    type Err = String;

    fn from_str(s: &str) -> Result<FleetDispatch, String> {
        match s {
            "round-robin" => Ok(FleetDispatch::RoundRobin),
            "least-loaded" => Ok(FleetDispatch::LeastLoaded),
            other => Err(format!("unknown dispatch policy: {other}")),
        }
    }
}

impl std::fmt::Display for FleetDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FleetDispatch::RoundRobin => "round-robin",
            FleetDispatch::LeastLoaded => "least-loaded",
        })
    }
}

/// Number of worker threads a [`FleetRun`] uses by default: the machine's
/// available parallelism, falling back to 1 when it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One replica's share of the shared arrival stream.
#[derive(Debug, Clone)]
pub struct TraceShard {
    /// The replica's sub-trace, with the *original* (absolute) arrival times.
    pub trace: ArrivalTrace,
    /// For each shard arrival, its index in the shared trace — used to carry
    /// per-request payloads (semantics samples) along with the arrival.
    pub indices: Vec<usize>,
}

impl TraceShard {
    /// Gather this shard's slice of a per-request payload array.
    pub fn gather<T: Copy>(&self, shared: &[T]) -> Vec<T> {
        self.indices.iter().map(|&i| shared[i]).collect()
    }
}

/// Deterministically shard a shared arrival trace across `replicas` replicas.
///
/// `service_estimate` is the dispatcher's per-request service-time estimate
/// (only used by [`FleetDispatch::LeastLoaded`]); a coarse batch-1 execution
/// time is what a production front-end would know.
pub fn shard_arrivals(
    trace: &ArrivalTrace,
    replicas: usize,
    dispatch: FleetDispatch,
    service_estimate: SimDuration,
) -> Vec<TraceShard> {
    assert!(replicas >= 1, "a fleet needs at least one replica");
    let mut times: Vec<Vec<apparate_sim::SimTime>> = vec![Vec::new(); replicas];
    let mut indices: Vec<Vec<usize>> = vec![Vec::new(); replicas];
    // Virtual finish time of each replica's modelled backlog (LeastLoaded).
    let mut backlog = vec![apparate_sim::SimTime::ZERO; replicas];
    for (i, &at) in trace.times().iter().enumerate() {
        let r = match dispatch {
            FleetDispatch::RoundRobin => i % replicas,
            FleetDispatch::LeastLoaded => {
                // The replica whose modelled backlog drains first; ties break
                // toward the lowest index, keeping the assignment total-order
                // deterministic.
                let r = (0..replicas)
                    .min_by_key(|&r| (backlog[r], r))
                    .expect("replicas >= 1");
                backlog[r] = backlog[r].max(at) + service_estimate;
                r
            }
        };
        times[r].push(at);
        indices[r].push(i);
    }
    times
        .into_iter()
        .zip(indices)
        .map(|(t, indices)| TraceShard {
            trace: ArrivalTrace::from_times(t),
            indices,
        })
        .collect()
}

/// Everything one classification replica needs to serve its shard: a name, an
/// exit policy, the batch-time estimator its batching decisions use, and (for
/// adaptive policies) the uplink handle its controller listens on.
///
/// Units are `Send` — a [`FleetRun`] may execute each on a worker thread —
/// which is why the policy reference is `dyn ExitPolicy + Send` and the
/// estimator `dyn Fn + Sync`.
pub struct ReplicaUnit<'a> {
    label: String,
    policy: &'a mut (dyn ExitPolicy + Send),
    estimate: &'a (dyn Fn(u32) -> SimDuration + Sync),
    feedback: Option<FeedbackSender<ProfileRecord>>,
}

impl<'a> ReplicaUnit<'a> {
    /// Name a replica unit over its exit policy and batch-time estimator.
    /// Each replica gets its own policy instance — fleet replicas never share
    /// controller state.
    pub fn new(
        label: impl Into<String>,
        policy: &'a mut (dyn ExitPolicy + Send),
        estimate: &'a (dyn Fn(u32) -> SimDuration + Sync),
    ) -> ReplicaUnit<'a> {
        ReplicaUnit {
            label: label.into(),
            policy,
            estimate,
            feedback: None,
        }
    }

    /// Attach the producer half of this replica's GPU → controller profiling
    /// link (adaptive policies with a controller).
    pub fn with_feedback(mut self, feedback: FeedbackSender<ProfileRecord>) -> ReplicaUnit<'a> {
        self.feedback = Some(feedback);
        self
    }

    /// The unit's name (reported per replica in [`FleetOutcome::labels`]).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Everything one generative replica needs to serve its shard: a name, a
/// token policy, and (for adaptive policies) the uplink handle its controller
/// listens on. `Send` for the same reason as [`ReplicaUnit`].
pub struct TokenReplicaUnit<'a> {
    label: String,
    policy: &'a mut (dyn TokenPolicy + Send),
    feedback: Option<FeedbackSender<ProfileRecord>>,
}

impl<'a> TokenReplicaUnit<'a> {
    /// Name a generative replica unit over its token policy.
    pub fn new(
        label: impl Into<String>,
        policy: &'a mut (dyn TokenPolicy + Send),
    ) -> TokenReplicaUnit<'a> {
        TokenReplicaUnit {
            label: label.into(),
            policy,
            feedback: None,
        }
    }

    /// Attach the producer half of this replica's GPU → controller profiling
    /// link (adaptive policies with a controller).
    pub fn with_feedback(
        mut self,
        feedback: FeedbackSender<ProfileRecord>,
    ) -> TokenReplicaUnit<'a> {
        self.feedback = Some(feedback);
        self
    }

    /// The unit's name (reported per replica in [`FleetOutcome::labels`]).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A configured fleet run: per-replica units plus the thread knob, built by
/// [`ReplicaFleet::serve`] or [`GenerativeReplicaFleet::serve`] and executed
/// by [`FleetRun::run`].
///
/// Replicas are independent simulations over disjoint shards, so the run
/// executes them on up to `threads` scoped worker threads (replica `i` goes
/// to worker `i % threads`) and joins into replica-index order. `threads == 1`
/// is the plain sequential loop. Output is *identical for any thread count*:
/// each replica's telemetry lands in its own [`Telemetry::for_replica`]
/// buffer and per-replica outcomes are merged by replica index, never by
/// completion order.
pub struct FleetRun<U, F> {
    replicas: usize,
    shard_sizes: Vec<usize>,
    telemetry: Telemetry,
    threads: usize,
    units: Vec<U>,
    run_replica: F,
}

/// Label accessor shared by the unit types, so [`FleetRun`] can report names
/// generically.
pub trait FleetUnit {
    /// The unit's name.
    fn unit_label(&self) -> &str;
}

impl FleetUnit for ReplicaUnit<'_> {
    fn unit_label(&self) -> &str {
        &self.label
    }
}

impl FleetUnit for TokenReplicaUnit<'_> {
    fn unit_label(&self) -> &str {
        &self.label
    }
}

impl<U, F> FleetRun<U, F> {
    /// Set the number of worker threads (clamped to `1..=replicas`); `1`
    /// means the sequential path. Defaults to [`available_threads`].
    pub fn threads(mut self, threads: usize) -> FleetRun<U, F> {
        self.threads = threads.max(1);
        self
    }

    /// Add one replica's unit; replica index is assignment order.
    pub fn unit(mut self, unit: U) -> FleetRun<U, F> {
        self.units.push(unit);
        self
    }

    /// Add units for several replicas, in replica order.
    pub fn units(mut self, units: impl IntoIterator<Item = U>) -> FleetRun<U, F> {
        self.units.extend(units);
        self
    }

    /// Execute the run and aggregate per-replica outcomes in replica order.
    ///
    /// Panics if the number of added units differs from the fleet's replica
    /// count, or if a replica's simulation panics (the panic is propagated).
    pub fn run<O>(self) -> FleetOutcome<O>
    where
        U: FleetUnit + Send,
        O: Send,
        F: Fn(usize, U, Telemetry) -> O + Sync,
    {
        assert_eq!(
            self.units.len(),
            self.replicas,
            "one unit per replica is required"
        );
        let threads = self.threads.clamp(1, self.replicas);
        let labels: Vec<String> = self.units.iter().map(|u| u.unit_label().into()).collect();
        let telemetry = self.telemetry;
        let run_replica = &self.run_replica;
        let per_replica: Vec<O> = if threads <= 1 {
            // Sequential path: exactly the pre-parallel fleet behaviour.
            self.units
                .into_iter()
                .enumerate()
                .map(|(r, unit)| run_replica(r, unit, telemetry.for_replica(r as u32)))
                .collect()
        } else {
            // Round-robin replicas over `threads` scoped workers. Results are
            // re-ordered by replica index after the join, and telemetry goes
            // through per-replica handles, so the merged outcome does not
            // depend on scheduling.
            let mut buckets: Vec<Vec<(usize, U)>> = (0..threads).map(|_| Vec::new()).collect();
            for (r, unit) in self.units.into_iter().enumerate() {
                buckets[r % threads].push((r, unit));
            }
            let mut indexed: Vec<(usize, O)> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        let telemetry = telemetry.clone();
                        s.spawn(move |_| {
                            bucket
                                .into_iter()
                                .map(|(r, unit)| {
                                    (r, run_replica(r, unit, telemetry.for_replica(r as u32)))
                                })
                                .collect::<Vec<(usize, O)>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| {
                        h.join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .collect()
            })
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            indexed.sort_by_key(|&(r, _)| r);
            indexed.into_iter().map(|(_, outcome)| outcome).collect()
        };
        FleetOutcome {
            per_replica,
            shard_sizes: self.shard_sizes,
            labels,
        }
    }
}

/// A fleet of identical serving replicas behind one dispatcher.
#[derive(Debug, Clone)]
pub struct ReplicaFleet {
    /// Number of replicas.
    pub replicas: usize,
    /// Dispatch policy of the front end.
    pub dispatch: FleetDispatch,
    /// Per-replica serving configuration (batching + SLO), identical across
    /// the fleet.
    pub serving: ServingConfig,
    /// Telemetry sink shared by the dispatcher and every replica simulator.
    telemetry: Telemetry,
}

impl ReplicaFleet {
    /// Create a fleet. Panics if `replicas` is zero.
    pub fn new(replicas: usize, dispatch: FleetDispatch, serving: ServingConfig) -> ReplicaFleet {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        ReplicaFleet {
            replicas,
            dispatch,
            serving,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry sink. Dispatch decisions are traced per arrival and
    /// every replica's serving events land in that replica's buffer (derived
    /// via [`Telemetry::for_replica`], safe for parallel runs).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ReplicaFleet {
        self.telemetry = telemetry;
        self
    }

    /// Shard a shared trace across this fleet's replicas.
    pub fn shard(&self, trace: &ArrivalTrace, service_estimate: SimDuration) -> Vec<TraceShard> {
        shard_arrivals(trace, self.replicas, self.dispatch, service_estimate)
    }

    /// Build a [`FleetRun`] over pre-computed shards and the shared semantic
    /// samples (both borrowed read-only by every replica). Sharding depends
    /// only on arrivals and dispatch, so callers comparing several policy
    /// families over the *same* shards should shard once and serve per
    /// family. Add one [`ReplicaUnit`] per replica, then call
    /// [`FleetRun::run`].
    ///
    /// Each replica runs an independent [`ServingSimulator`] with the fleet's
    /// serving config over its shard; when the fleet has a recording
    /// telemetry sink, the replica traces a `dispatch` event per arrival
    /// in-run (tagged with the fleet-global request id) and records through
    /// its own per-replica handle.
    pub fn serve<'a>(
        &'a self,
        shards: &'a [TraceShard],
        samples: &'a [SampleSemantics],
    ) -> FleetRun<
        ReplicaUnit<'a>,
        impl Fn(usize, ReplicaUnit<'a>, Telemetry) -> ServingOutcome + Sync + 'a,
    > {
        assert_eq!(
            shards.len(),
            self.replicas,
            "one shard per replica is required"
        );
        // Admission control may shed arrivals before they reach a replica, so
        // shards may cover a *subset* of the shared stream — but never more,
        // and every dispatched index must have its semantic sample.
        let dispatched: usize = shards.iter().map(|s| s.indices.len()).sum();
        assert!(
            dispatched <= samples.len(),
            "more dispatched arrivals than semantic samples"
        );
        assert!(
            shards
                .iter()
                .flat_map(|s| s.indices.iter())
                .all(|&i| i < samples.len()),
            "dispatched index out of the shared sample range"
        );
        FleetRun {
            replicas: self.replicas,
            shard_sizes: shards.iter().map(|s| s.trace.len()).collect(),
            telemetry: self.telemetry.clone(),
            threads: available_threads(),
            units: Vec::new(),
            run_replica: move |replica: usize, unit: ReplicaUnit<'a>, telemetry: Telemetry| {
                let shard = &shards[replica];
                let shard_samples = shard.gather(samples);
                let mut sim = ServingSimulator::new(self.serving.clone());
                if telemetry.is_enabled() {
                    let ids: Vec<u64> = shard.indices.iter().map(|&i| i as u64).collect();
                    sim = sim.with_telemetry(telemetry).with_dispatch_ids(ids);
                }
                sim.run_with_feedback(
                    &shard.trace,
                    &shard_samples,
                    unit.policy,
                    unit.estimate,
                    unit.feedback.as_ref(),
                )
            },
        }
    }
}

/// Aggregate result of one fleet run: per-replica outcomes plus fleet-level
/// views over the pooled records (see [`FleetOutcomeView`]).
#[derive(Debug, Clone)]
pub struct FleetOutcome<O> {
    /// One outcome per replica, in replica order.
    pub per_replica: Vec<O>,
    /// Requests dispatched to each replica (sums to the shared stream
    /// length).
    pub shard_sizes: Vec<usize>,
    /// The unit labels, in replica order.
    pub labels: Vec<String>,
}

/// Aggregate result of one generative fleet run (pooled samples are
/// per-token TPT values; "units" are tokens).
pub type GenerativeFleetOutcome = FleetOutcome<GenerativeOutcome>;

/// What one replica's outcome must expose for fleet-level aggregation. The
/// "unit" is the per-sample granularity of the domain: one served request for
/// classification, one emitted token for generative decode.
pub trait ReplicaOutcome {
    /// Units produced by this replica.
    fn unit_count(&self) -> usize;
    /// Units whose released result matched the original model.
    fn correct_units(&self) -> usize;
    /// Units released through an early-exit ramp.
    fn exited_units(&self) -> usize;
    /// Units that violated their latency SLO.
    fn violated_units(&self) -> usize;
    /// Per-unit latency samples in milliseconds (response latency for
    /// classification, time-per-token for generative).
    fn unit_samples_ms(&self) -> Vec<f64>;
    /// Wall-clock span of this replica's run.
    fn replica_makespan(&self) -> SimDuration;
    /// Batch sizes this replica launched, in launch order.
    fn batch_sizes(&self) -> &[u32];
}

impl ReplicaOutcome for ServingOutcome {
    fn unit_count(&self) -> usize {
        self.records.len()
    }

    fn correct_units(&self) -> usize {
        self.records.iter().filter(|r| r.correct).count()
    }

    fn exited_units(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.exit_ramp.is_some())
            .count()
    }

    fn violated_units(&self) -> usize {
        self.records.iter().filter(|r| r.slo_violated).count()
    }

    fn unit_samples_ms(&self) -> Vec<f64> {
        self.latencies_ms()
    }

    fn replica_makespan(&self) -> SimDuration {
        self.makespan
    }

    fn batch_sizes(&self) -> &[u32] {
        &self.batch_sizes
    }
}

impl ReplicaOutcome for GenerativeOutcome {
    fn unit_count(&self) -> usize {
        self.tokens.len()
    }

    fn correct_units(&self) -> usize {
        self.tokens.iter().filter(|t| t.correct).count()
    }

    fn exited_units(&self) -> usize {
        self.tokens.iter().filter(|t| t.exit_ramp.is_some()).count()
    }

    fn violated_units(&self) -> usize {
        self.tokens.iter().filter(|t| t.slo_violated).count()
    }

    fn unit_samples_ms(&self) -> Vec<f64> {
        self.tpt_ms()
    }

    fn replica_makespan(&self) -> SimDuration {
        self.makespan
    }

    fn batch_sizes(&self) -> &[u32] {
        &self.batch_sizes
    }
}

/// Fleet-level aggregation views, implemented once over any
/// [`FleetOutcome<O>`] whose per-replica outcome is a [`ReplicaOutcome`] —
/// this one generic surface replaces the former duplicated
/// classification/generative impls.
pub trait FleetOutcomeView {
    /// Total units produced across the fleet (requests or tokens).
    fn total_units(&self) -> usize;
    /// Smallest shard any replica received (starvation indicator).
    fn min_shard(&self) -> usize;
    /// Fleet makespan: replicas run in parallel, so the fleet finishes when
    /// its slowest replica does.
    fn makespan(&self) -> SimDuration;
    /// Fleet throughput in units per second: total units over the fleet
    /// makespan.
    fn throughput(&self) -> f64;
    /// Latency samples pooled across every replica, in milliseconds.
    fn pooled_samples_ms(&self) -> Vec<f64>;
    /// Unit-weighted accuracy across the fleet (1.0 when empty).
    fn accuracy(&self) -> f64;
    /// Unit-weighted early-exit rate across the fleet.
    fn exit_rate(&self) -> f64;
    /// Unit-weighted SLO violation rate across the fleet.
    fn slo_violation_rate(&self) -> f64;
    /// Batch-weighted mean batch size across the fleet.
    fn mean_batch_size(&self) -> f64;
    /// Summarise the fleet run over the pooled samples, the way the
    /// single-replica [`LatencySummary`] constructors do.
    fn summary(&self, policy: &str) -> LatencySummary;
}

impl<O: ReplicaOutcome> FleetOutcomeView for FleetOutcome<O> {
    fn total_units(&self) -> usize {
        self.per_replica.iter().map(|o| o.unit_count()).sum()
    }

    fn min_shard(&self) -> usize {
        self.shard_sizes.iter().copied().min().unwrap_or(0)
    }

    fn makespan(&self) -> SimDuration {
        self.per_replica
            .iter()
            .map(|o| o.replica_makespan())
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    fn throughput(&self) -> f64 {
        let secs = self.makespan().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_units() as f64 / secs
    }

    fn pooled_samples_ms(&self) -> Vec<f64> {
        self.per_replica
            .iter()
            .flat_map(|o| o.unit_samples_ms())
            .collect()
    }

    fn accuracy(&self) -> f64 {
        let total = self.total_units();
        if total == 0 {
            return 1.0;
        }
        let correct: usize = self.per_replica.iter().map(|o| o.correct_units()).sum();
        correct as f64 / total as f64
    }

    fn exit_rate(&self) -> f64 {
        let total = self.total_units();
        if total == 0 {
            return 0.0;
        }
        let exited: usize = self.per_replica.iter().map(|o| o.exited_units()).sum();
        exited as f64 / total as f64
    }

    fn slo_violation_rate(&self) -> f64 {
        let total = self.total_units();
        if total == 0 {
            return 0.0;
        }
        let violated: usize = self.per_replica.iter().map(|o| o.violated_units()).sum();
        violated as f64 / total as f64
    }

    fn mean_batch_size(&self) -> f64 {
        let batches: usize = self.per_replica.iter().map(|o| o.batch_sizes().len()).sum();
        if batches == 0 {
            return 0.0;
        }
        let items: u64 = self
            .per_replica
            .iter()
            .flat_map(|o| o.batch_sizes().iter().map(|&b| b as u64))
            .sum();
        items as f64 / batches as f64
    }

    fn summary(&self, policy: &str) -> LatencySummary {
        LatencySummary {
            policy: policy.to_string(),
            latency_ms: Percentiles::from_samples(&self.pooled_samples_ms()),
            accuracy: self.accuracy(),
            throughput: self.throughput(),
            mean_batch_size: self.mean_batch_size(),
            slo_violation_rate: self.slo_violation_rate(),
            exit_rate: self.exit_rate(),
        }
    }
}

impl FleetOutcome<ServingOutcome> {
    /// Total requests served across the fleet.
    pub fn total_requests(&self) -> usize {
        self.total_units()
    }

    /// Response latencies pooled across every replica, in milliseconds.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.pooled_samples_ms()
    }

    /// Fleet throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        self.throughput()
    }
}

impl FleetOutcome<GenerativeOutcome> {
    /// Total tokens emitted across the fleet.
    pub fn total_tokens(&self) -> usize {
        self.total_units()
    }

    /// Total completed requests across the fleet.
    pub fn completed_requests(&self) -> usize {
        self.per_replica.iter().map(|o| o.completed_requests).sum()
    }

    /// Time-per-token values pooled across every replica, in milliseconds.
    pub fn tpt_ms(&self) -> Vec<f64> {
        self.pooled_samples_ms()
    }

    /// Fleet generation throughput in tokens per second.
    pub fn tokens_per_second(&self) -> f64 {
        self.throughput()
    }

    /// Token-weighted agreement rate with the original model across the
    /// fleet.
    pub fn sequence_accuracy(&self) -> f64 {
        self.accuracy()
    }
}

/// One replica's share of a shared generative request stream.
#[derive(Debug, Clone)]
pub struct RequestShard {
    /// The replica's requests, with their *original* arrival times.
    pub requests: Vec<Request>,
    /// For each shard request, its index in the shared stream.
    pub indices: Vec<usize>,
}

/// Deterministically shard a shared generative request stream across
/// `replicas` replicas. Whole sequences are dispatched (a sequence's decode
/// steps are stateful, so it cannot migrate); the [`FleetDispatch::LeastLoaded`]
/// backlog model therefore weights each request by its output length:
/// `output_tokens × per_token_estimate`, the decode time a front end would
/// project from the model's batch-1 step time. `requests` must be in arrival
/// order (the order the front end observes them).
pub fn shard_requests(
    requests: &[Request],
    replicas: usize,
    dispatch: FleetDispatch,
    per_token_estimate: SimDuration,
) -> Vec<RequestShard> {
    assert!(replicas >= 1, "a fleet needs at least one replica");
    let mut shards: Vec<RequestShard> = (0..replicas)
        .map(|_| RequestShard {
            requests: Vec::new(),
            indices: Vec::new(),
        })
        .collect();
    let mut backlog = vec![apparate_sim::SimTime::ZERO; replicas];
    for (i, request) in requests.iter().enumerate() {
        let r = match dispatch {
            FleetDispatch::RoundRobin => i % replicas,
            FleetDispatch::LeastLoaded => {
                let r = (0..replicas)
                    .min_by_key(|&r| (backlog[r], r))
                    .expect("replicas >= 1");
                let service = SimDuration::from_micros_f64(
                    per_token_estimate.as_micros() as f64 * request.output_tokens.max(1) as f64,
                );
                backlog[r] = backlog[r].max(request.arrival) + service;
                r
            }
        };
        shards[r].requests.push(request.clone());
        shards[r].indices.push(i);
    }
    shards
}

/// A fleet of identical continuous-batching replicas behind one dispatcher.
#[derive(Debug, Clone)]
pub struct GenerativeReplicaFleet {
    /// Number of replicas.
    pub replicas: usize,
    /// Dispatch policy of the front end.
    pub dispatch: FleetDispatch,
    /// Per-replica continuous-batching configuration, identical across the
    /// fleet.
    pub batching: ContinuousBatchingConfig,
    /// Telemetry sink shared by the dispatcher and every replica simulator.
    telemetry: Telemetry,
}

impl GenerativeReplicaFleet {
    /// Create a generative fleet. Panics if `replicas` is zero.
    pub fn new(
        replicas: usize,
        dispatch: FleetDispatch,
        batching: ContinuousBatchingConfig,
    ) -> GenerativeReplicaFleet {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        GenerativeReplicaFleet {
            replicas,
            dispatch,
            batching,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry sink. Dispatch decisions are traced per request and
    /// every replica's decode events land in that replica's buffer (derived
    /// via [`Telemetry::for_replica`], safe for parallel runs).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> GenerativeReplicaFleet {
        self.telemetry = telemetry;
        self
    }

    /// Shard a shared request stream across this fleet's replicas.
    pub fn shard(
        &self,
        requests: &[Request],
        per_token_estimate: SimDuration,
    ) -> Vec<RequestShard> {
        shard_requests(requests, self.replicas, self.dispatch, per_token_estimate)
    }

    /// Build a [`FleetRun`] over pre-computed shards and the shared token
    /// semantics (borrowed read-only by every replica; semantics are keyed by
    /// request id, so one provider serves every replica unchanged). Sharding
    /// depends only on arrivals, output lengths and dispatch, so callers
    /// comparing several policy families over the *same* shards should shard
    /// once and serve per family. Add one [`TokenReplicaUnit`] per replica,
    /// then call [`FleetRun::run`].
    pub fn serve<'a>(
        &'a self,
        shards: &'a [RequestShard],
        semantics: &'a (dyn TokenSemantics + Sync),
    ) -> FleetRun<
        TokenReplicaUnit<'a>,
        impl Fn(usize, TokenReplicaUnit<'a>, Telemetry) -> GenerativeOutcome + Sync + 'a,
    > {
        assert_eq!(
            shards.len(),
            self.replicas,
            "one shard per replica is required"
        );
        FleetRun {
            replicas: self.replicas,
            shard_sizes: shards.iter().map(|s| s.requests.len()).collect(),
            telemetry: self.telemetry.clone(),
            threads: available_threads(),
            units: Vec::new(),
            run_replica: move |replica: usize, unit: TokenReplicaUnit<'a>, telemetry: Telemetry| {
                let shard = &shards[replica];
                let mut sim = GenerativeSimulator::new(self.batching);
                if telemetry.is_enabled() {
                    sim = sim.with_telemetry(telemetry).with_dispatch_events();
                }
                sim.run_with_feedback(
                    &shard.requests,
                    semantics,
                    unit.policy,
                    unit.feedback.as_ref(),
                )
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::BatchingPolicy;
    use crate::platform::VanillaPolicy;

    fn samples(n: usize) -> Vec<SampleSemantics> {
        (0..n)
            .map(|i| SampleSemantics::new(i as u64, 0.5))
            .collect()
    }

    fn exec_time(b: u32) -> SimDuration {
        SimDuration::from_millis(10 + 2 * b as u64)
    }

    #[test]
    fn shard_counts_sum_to_trace_length_for_both_dispatchers() {
        let trace = ArrivalTrace::maf_like(977, 40.0, 7);
        for dispatch in [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
            for n in [1, 2, 4, 8] {
                let shards = shard_arrivals(&trace, n, dispatch, exec_time(1));
                assert_eq!(shards.len(), n);
                let total: usize = shards.iter().map(|s| s.trace.len()).sum();
                assert_eq!(total, trace.len(), "{dispatch} x{n} loses/duplicates");
                // Index sets partition the shared trace.
                let mut seen: Vec<usize> = shards.iter().flat_map(|s| s.indices.clone()).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..trace.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn round_robin_counts_are_fair() {
        let trace = ArrivalTrace::fixed_rate(100, 50.0);
        let shards = shard_arrivals(&trace, 4, FleetDispatch::RoundRobin, exec_time(1));
        for s in &shards {
            assert_eq!(s.trace.len(), 25);
        }
    }

    #[test]
    fn least_loaded_never_starves_a_replica() {
        // Bursty arrivals, 8 replicas: the backlog model must still hand every
        // replica a meaningful share of the stream.
        let trace = ArrivalTrace::maf_like(2_000, 60.0, 11);
        let shards = shard_arrivals(&trace, 8, FleetDispatch::LeastLoaded, exec_time(1));
        let fair = trace.len() / 8;
        for (r, s) in shards.iter().enumerate() {
            assert!(
                s.trace.len() >= fair / 4,
                "replica {r} starved: {} of fair share {fair}",
                s.trace.len()
            );
        }
    }

    #[test]
    fn sharding_is_deterministic() {
        let trace = ArrivalTrace::poisson(500, 30.0, 3);
        let a = shard_arrivals(&trace, 4, FleetDispatch::LeastLoaded, exec_time(1));
        let b = shard_arrivals(&trace, 4, FleetDispatch::LeastLoaded, exec_time(1));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.indices, y.indices);
            assert_eq!(x.trace.times(), y.trace.times());
        }
    }

    #[test]
    fn shards_preserve_absolute_arrival_times() {
        let trace = ArrivalTrace::fixed_rate(20, 10.0);
        let shards = shard_arrivals(&trace, 3, FleetDispatch::RoundRobin, exec_time(1));
        for shard in &shards {
            for (&idx, &at) in shard.indices.iter().zip(shard.trace.times()) {
                assert_eq!(at, trace.times()[idx]);
            }
        }
    }

    /// Run a vanilla classification fleet over the given trace with the given
    /// thread count.
    fn vanilla_fleet_run(
        fleet: &ReplicaFleet,
        trace: &ArrivalTrace,
        shared: &[SampleSemantics],
        threads: usize,
    ) -> FleetOutcome<ServingOutcome> {
        let shards = fleet.shard(trace, exec_time(1));
        let mut policies: Vec<_> = (0..fleet.replicas)
            .map(|_| VanillaPolicy::new(exec_time))
            .collect();
        let estimate = exec_time;
        let units: Vec<ReplicaUnit<'_>> = policies
            .iter_mut()
            .enumerate()
            .map(|(r, p)| ReplicaUnit::new(format!("vanilla-{r}"), p, &estimate))
            .collect();
        fleet
            .serve(&shards, shared)
            .units(units)
            .threads(threads)
            .run()
    }

    #[test]
    fn fleet_run_serves_everything_and_aggregates() {
        let n = 200;
        let trace = ArrivalTrace::fixed_rate(n, 100.0);
        let shared = samples(n);
        let fleet = ReplicaFleet::new(
            4,
            FleetDispatch::LeastLoaded,
            ServingConfig {
                policy: BatchingPolicy::Immediate,
                slo: None,
            },
        );
        let out = vanilla_fleet_run(&fleet, &trace, &shared, 1);
        assert_eq!(out.total_requests(), n);
        assert_eq!(out.shard_sizes.iter().sum::<usize>(), n);
        assert!(out.min_shard() > 0);
        assert!(out.accuracy() >= 1.0 - 1e-12);
        assert_eq!(out.exit_rate(), 0.0);
        assert!(out.throughput_rps() > 0.0);
        assert_eq!(
            out.labels,
            vec!["vanilla-0", "vanilla-1", "vanilla-2", "vanilla-3"]
        );
        let summary = out.summary("vanilla");
        assert_eq!(summary.latency_ms.count, n);
    }

    #[test]
    fn thread_count_never_changes_the_fleet_outcome() {
        // The thread-count sweep invariant: any `threads` value produces the
        // same merged outcome as the sequential path, record for record.
        let n = 240;
        let trace = ArrivalTrace::maf_like(n, 90.0, 13);
        let shared = samples(n);
        let fleet = ReplicaFleet::new(
            4,
            FleetDispatch::LeastLoaded,
            ServingConfig {
                policy: BatchingPolicy::Immediate,
                slo: None,
            },
        );
        let sequential = vanilla_fleet_run(&fleet, &trace, &shared, 1);
        for threads in [2, 3, 4, 8] {
            let parallel = vanilla_fleet_run(&fleet, &trace, &shared, threads);
            assert_eq!(sequential.shard_sizes, parallel.shard_sizes);
            assert_eq!(sequential.labels, parallel.labels);
            assert_eq!(
                sequential.latencies_ms(),
                parallel.latencies_ms(),
                "pooled latencies diverged at {threads} threads"
            );
            for (s, p) in sequential.per_replica.iter().zip(&parallel.per_replica) {
                assert_eq!(
                    s.records, p.records,
                    "records diverged at {threads} threads"
                );
                assert_eq!(s.batch_sizes, p.batch_sizes);
            }
        }
    }

    #[test]
    fn thread_count_never_changes_the_traced_snapshot() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let n = 160;
        let trace = ArrivalTrace::poisson(n, 120.0, 5);
        let shared = samples(n);
        let run = |threads: usize| {
            let telemetry = Telemetry::recording(TelemetryConfig::default());
            let fleet = ReplicaFleet::new(
                4,
                FleetDispatch::RoundRobin,
                ServingConfig {
                    policy: BatchingPolicy::Immediate,
                    slo: None,
                },
            )
            .with_telemetry(telemetry.clone());
            let out = vanilla_fleet_run(&fleet, &trace, &shared, threads);
            (out, telemetry.snapshot().expect("recording"))
        };
        let (out1, snap1) = run(1);
        for threads in [2, 8] {
            let (outn, snapn) = run(threads);
            assert_eq!(out1.latencies_ms(), outn.latencies_ms());
            assert_eq!(
                snap1.events, snapn.events,
                "trace diverged at {threads} threads"
            );
            assert_eq!(snap1.series, snapn.series);
            assert_eq!(snap1.counters, snapn.counters);
            assert_eq!(snap1.histograms, snapn.histograms);
        }
    }

    #[test]
    #[should_panic(expected = "one unit per replica")]
    fn fleet_run_rejects_a_unit_count_mismatch() {
        let n = 20;
        let trace = ArrivalTrace::fixed_rate(n, 10.0);
        let shared = samples(n);
        let fleet = ReplicaFleet::new(
            2,
            FleetDispatch::RoundRobin,
            ServingConfig {
                policy: BatchingPolicy::Immediate,
                slo: None,
            },
        );
        let shards = fleet.shard(&trace, exec_time(1));
        let mut policy = VanillaPolicy::new(exec_time);
        let estimate = exec_time;
        let _ = fleet
            .serve(&shards, &shared)
            .unit(ReplicaUnit::new("only-one", &mut policy, &estimate))
            .run();
    }

    use crate::generative::VanillaTokenPolicy;

    struct UniformTokens;
    impl TokenSemantics for UniformTokens {
        fn token(&self, request_id: u64, token_index: u32) -> SampleSemantics {
            SampleSemantics::new(request_id * 10_000 + token_index as u64, 0.4)
        }
    }

    fn gen_requests(n: usize, tokens_each: u32, rate: f64) -> Vec<Request> {
        let trace = ArrivalTrace::poisson(n, rate, 3);
        trace
            .times()
            .iter()
            .enumerate()
            .map(|(i, &at)| {
                Request::generative(
                    i as u64,
                    at,
                    SampleSemantics::new(i as u64, 0.4),
                    tokens_each,
                )
            })
            .collect()
    }

    fn decode_time(b: u32) -> SimDuration {
        SimDuration::from_micros(10_000 + 1_500 * b as u64)
    }

    /// Run a vanilla generative fleet over the given requests with the given
    /// thread count.
    fn vanilla_generative_run(
        fleet: &GenerativeReplicaFleet,
        requests: &[Request],
        threads: usize,
    ) -> GenerativeFleetOutcome {
        let shards = fleet.shard(requests, decode_time(1));
        let mut policies: Vec<_> = (0..fleet.replicas)
            .map(|_| VanillaTokenPolicy::new(decode_time))
            .collect();
        let units: Vec<TokenReplicaUnit<'_>> = policies
            .iter_mut()
            .enumerate()
            .map(|(r, p)| TokenReplicaUnit::new(format!("vanilla-{r}"), p))
            .collect();
        fleet
            .serve(&shards, &UniformTokens)
            .units(units)
            .threads(threads)
            .run()
    }

    #[test]
    fn request_shards_partition_the_stream_for_both_dispatchers() {
        let requests = gen_requests(100, 20, 10.0);
        for dispatch in [FleetDispatch::RoundRobin, FleetDispatch::LeastLoaded] {
            for n in [1usize, 2, 4, 8] {
                let shards = shard_requests(&requests, n, dispatch, decode_time(1));
                assert_eq!(shards.len(), n);
                let total: usize = shards.iter().map(|s| s.requests.len()).sum();
                assert_eq!(total, requests.len(), "{dispatch} x{n} loses/duplicates");
                let mut seen: Vec<usize> = shards.iter().flat_map(|s| s.indices.clone()).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..requests.len()).collect::<Vec<_>>());
                for shard in &shards {
                    for (&idx, request) in shard.indices.iter().zip(&shard.requests) {
                        assert_eq!(request.arrival, requests[idx].arrival);
                        assert_eq!(request.id, requests[idx].id);
                    }
                }
            }
        }
    }

    #[test]
    fn least_loaded_weights_requests_by_output_length() {
        // Two long sequences arriving back-to-back must land on different
        // replicas: the backlog model charges output_tokens × per-token time,
        // so after the first long request its replica is the loaded one.
        let mut requests = gen_requests(8, 10, 1_000.0);
        requests[0].output_tokens = 1_000;
        requests[1].output_tokens = 1_000;
        let shards = shard_requests(&requests, 2, FleetDispatch::LeastLoaded, decode_time(1));
        let replica_of = |id: u64| {
            shards
                .iter()
                .position(|s| s.requests.iter().any(|r| r.id == id))
                .expect("dispatched")
        };
        assert_ne!(
            replica_of(0),
            replica_of(1),
            "both long sequences piled onto one replica"
        );
    }

    #[test]
    fn generative_fleet_serves_every_token_and_aggregates() {
        let requests = gen_requests(24, 15, 20.0);
        let fleet = GenerativeReplicaFleet::new(
            4,
            FleetDispatch::LeastLoaded,
            ContinuousBatchingConfig {
                max_batch_size: 8,
                tbt_slo: None,
            },
        );
        let out = vanilla_generative_run(&fleet, &requests, 1);
        assert_eq!(out.total_tokens(), 24 * 15);
        assert_eq!(out.completed_requests(), 24);
        assert_eq!(out.shard_sizes.iter().sum::<usize>(), 24);
        assert!(out.min_shard() > 0);
        assert!(out.sequence_accuracy() >= 1.0 - 1e-12);
        assert_eq!(out.exit_rate(), 0.0);
        assert!(out.tokens_per_second() > 0.0);
        let summary = out.summary("vanilla");
        assert_eq!(summary.latency_ms.count, 24 * 15);
        // Replicas decode in parallel: the fleet makespan is the slowest
        // replica's, not the sum.
        let slowest = out.per_replica.iter().map(|o| o.makespan).max().unwrap();
        assert_eq!(out.makespan(), slowest);
        // Deterministic: same stream, same shards, same pooled outcome — and
        // the thread count does not enter the outcome at all.
        for threads in [1, 2, 8] {
            let again = vanilla_generative_run(&fleet, &requests, threads);
            assert_eq!(out.shard_sizes, again.shard_sizes);
            assert_eq!(
                out.tpt_ms(),
                again.tpt_ms(),
                "diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn generative_fleet_scales_token_bandwidth_on_a_saturated_stream() {
        // Arrivals far above one replica's decode capacity keep its continuous
        // batch pinned at the cap while sequences queue; four replicas decode
        // four thinner batches in parallel, so fleet token throughput must
        // scale near-linearly and the pooled steady-state TPT must drop
        // (smaller decode batches step faster).
        let requests = gen_requests(48, 30, 1_000.0);
        let run = |replicas: usize| {
            let fleet = GenerativeReplicaFleet::new(
                replicas,
                FleetDispatch::LeastLoaded,
                ContinuousBatchingConfig {
                    max_batch_size: 16,
                    tbt_slo: None,
                },
            );
            vanilla_generative_run(&fleet, &requests, 1)
        };
        let single = run(1);
        let quad = run(4);
        assert!(
            quad.tokens_per_second() > 2.5 * single.tokens_per_second(),
            "4-replica fleet bandwidth {} tok/s should far exceed saturated single-replica {}",
            quad.tokens_per_second(),
            single.tokens_per_second()
        );
        let single_p50 = Percentiles::from_samples(&single.tpt_ms()).p50;
        let quad_p50 = Percentiles::from_samples(&quad.tpt_ms()).p50;
        assert!(
            quad_p50 < single_p50,
            "4-replica median TPT {quad_p50} ms should beat single-replica {single_p50} ms"
        );
    }

    #[test]
    fn traced_fleet_tags_every_replica_and_dispatch() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let n = 120;
        let trace = ArrivalTrace::fixed_rate(n, 100.0);
        let shared = samples(n);
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        let fleet = ReplicaFleet::new(
            3,
            FleetDispatch::RoundRobin,
            ServingConfig {
                policy: BatchingPolicy::Immediate,
                slo: None,
            },
        )
        .with_telemetry(telemetry.clone());
        let out = vanilla_fleet_run(&fleet, &trace, &shared, 2);
        assert_eq!(out.total_requests(), n);
        let snap = telemetry.snapshot().expect("recording");
        // One dispatch event per arrival, and the per-event replica tag agrees
        // with the round-robin assignment.
        assert_eq!(snap.count_kind("dispatch"), n);
        for event in snap
            .events
            .iter()
            .filter(|e| e.kind.kind_name() == "dispatch")
        {
            if let apparate_telemetry::EventKind::Dispatch {
                request_id,
                replica,
            } = event.kind
            {
                assert_eq!(replica, (request_id % 3) as u32);
                assert_eq!(event.replica, replica);
            }
        }
        // Every replica contributed a queue-depth series and batch events.
        let queue_replicas: Vec<u32> = snap
            .series_named("queue_depth")
            .iter()
            .map(|s| s.replica)
            .collect();
        for r in 0..3u32 {
            assert!(
                queue_replicas.contains(&r),
                "no queue series for replica {r}"
            );
        }
        assert_eq!(snap.counter_total("batches") as usize, {
            let batches: usize = out.per_replica.iter().map(|o| o.batch_sizes.len()).sum();
            batches
        });
    }

    #[test]
    fn dispatch_events_interleave_in_sim_time_order() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        // Dispatch events are emitted inside the run now, so each one must
        // sit at its arrival's position in the time-sorted trace rather than
        // all batches trailing every dispatch.
        let n = 90;
        let trace = ArrivalTrace::fixed_rate(n, 60.0);
        let shared = samples(n);
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        let fleet = ReplicaFleet::new(
            3,
            FleetDispatch::RoundRobin,
            ServingConfig {
                policy: BatchingPolicy::Immediate,
                slo: None,
            },
        )
        .with_telemetry(telemetry.clone());
        let _ = vanilla_fleet_run(&fleet, &trace, &shared, 1);
        let snap = telemetry.snapshot().expect("recording");
        let kinds: Vec<&str> = snap.events.iter().map(|e| e.kind.kind_name()).collect();
        let last_dispatch = kinds.iter().rposition(|&k| k == "dispatch").unwrap();
        let first_batch = kinds.iter().position(|&k| k == "batch-formed").unwrap();
        assert!(
            first_batch < last_dispatch,
            "batch events must interleave with dispatches, not trail them all"
        );
    }

    #[test]
    fn traced_generative_fleet_pools_tbt_violations() {
        use apparate_telemetry::{Telemetry, TelemetryConfig};
        let requests = gen_requests(24, 15, 20.0);
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        // A deliberately strict TBT SLO: batched decode steps exceed it.
        let fleet = GenerativeReplicaFleet::new(
            2,
            FleetDispatch::LeastLoaded,
            ContinuousBatchingConfig {
                max_batch_size: 8,
                tbt_slo: Some(SimDuration::from_millis(12)),
            },
        )
        .with_telemetry(telemetry.clone());
        let out = vanilla_generative_run(&fleet, &requests, 2);
        assert_eq!(out.total_tokens(), 24 * 15);
        // The pooled fleet rate reflects per-token SLO outcomes and matches
        // the summary row.
        let rate = out.slo_violation_rate();
        assert!(rate > 0.0, "strict TBT SLO must be violated under batching");
        assert_eq!(out.summary("apparate").slo_violation_rate, rate);
        let snap = telemetry.snapshot().expect("recording");
        assert_eq!(snap.count_kind("dispatch"), 24);
        assert_eq!(
            snap.counter_total("slo_violations") as usize,
            out.per_replica
                .iter()
                .map(|o| o.tokens.iter().filter(|t| t.slo_violated).count())
                .sum::<usize>()
        );
    }

    #[test]
    fn four_replicas_drain_an_overloaded_stream_faster_than_one() {
        // 100 rps against ~83 rps single-replica batch-1 capacity: one replica
        // queues without bound, four replicas are comfortably provisioned, so
        // the pooled median latency must drop sharply.
        let n = 300;
        let trace = ArrivalTrace::fixed_rate(n, 100.0);
        let shared = samples(n);
        let config = ServingConfig {
            policy: BatchingPolicy::Immediate,
            slo: None,
        };
        let run = |replicas: usize| {
            let fleet = ReplicaFleet::new(replicas, FleetDispatch::LeastLoaded, config.clone());
            let out = vanilla_fleet_run(&fleet, &trace, &shared, 1);
            Percentiles::from_samples(&out.latencies_ms()).p50
        };
        let single = run(1);
        let quad = run(4);
        assert!(
            quad < single / 2.0,
            "4-replica p50 {quad} ms should be far below single-replica {single} ms"
        );
    }
}
