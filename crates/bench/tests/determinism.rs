//! Structural determinism of the bench binary: two runs with the same seed
//! must enumerate identical suite/benchmark name sets (the measured times
//! vary with the wall clock; the *structure* of the perf trajectory must
//! not, or BENCH_*.json files would stop being comparable across commits).
//!
//! Uses `--smoke` (shrunken fixtures, minimal sampling) so the check stays
//! fast enough for tier-1 `cargo test`.

use std::path::{Path, PathBuf};
use std::process::Command;

/// All suites the consolidated report must cover, in run order.
const EXPECTED_SUITES: [&str; 11] = [
    "tuning",
    "adaptation",
    "prep",
    "serving",
    "generative",
    "sensitivity",
    "e2e",
    "overhead",
    "scale",
    "telemetry",
    "ingest",
];

/// Extract the string value of `"key":"…"` from a JSON line written by the
/// hand-rolled writer (names never contain escaped quotes).
fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extract the numeric value of `"key":…` from a JSON line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_bench(out: &Path) -> Vec<(String, String, f64)> {
    let output = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(["--smoke", "--seed", "42", "--out"])
        .arg(out)
        .output()
        .expect("bench binary must run");
    assert!(
        output.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(out).expect("bench must write the report file");
    text.lines()
        .filter(|line| !line.contains("\"schema\""))
        .map(|line| {
            (
                field_str(line, "suite").expect("report line has a suite"),
                field_str(line, "benchmark").expect("report line has a benchmark"),
                field_num(line, "median_us").expect("report line has a median"),
            )
        })
        .collect()
}

#[test]
fn same_seed_runs_emit_identical_name_sets_covering_all_suites() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let run_a = run_bench(&dir.join(format!("bench_det_a_{}.json", std::process::id())));
    let run_b = run_bench(&dir.join(format!("bench_det_b_{}.json", std::process::id())));

    let names_a: Vec<(&str, &str)> = run_a
        .iter()
        .map(|(s, b, _)| (s.as_str(), b.as_str()))
        .collect();
    let names_b: Vec<(&str, &str)> = run_b
        .iter()
        .map(|(s, b, _)| (s.as_str(), b.as_str()))
        .collect();
    assert_eq!(
        names_a, names_b,
        "two --smoke --seed 42 runs must enumerate the same benchmarks in the same order"
    );

    let mut suites: Vec<&str> = names_a.iter().map(|(s, _)| *s).collect();
    suites.dedup();
    assert_eq!(suites, EXPECTED_SUITES, "every suite must be represented");

    for (suite, benchmark, median_us) in &run_a {
        assert!(
            median_us.is_finite() && *median_us > 0.0,
            "{suite}/{benchmark}: median_us must be finite and non-zero, got {median_us}"
        );
    }
}
