//! Order statistics for the bench harness: interpolated quantiles and
//! MAD-based outlier rejection.
//!
//! The harness records wall-clock samples, and wall clocks on shared machines
//! are heavy-tailed: a page fault or scheduler preemption inflates a single
//! sample by orders of magnitude. Robust statistics (median, median absolute
//! deviation) keep those events from polluting the reported numbers while the
//! `outliers_dropped` count keeps them visible.

/// Multiplier mapping the MAD of a normally distributed sample to its
/// standard deviation (`1 / Φ⁻¹(3/4)`).
const MAD_TO_SIGMA: f64 = 1.4826;

/// Linear-interpolation quantile over an ascending-sorted, non-empty slice
/// (the "R-7" definition: `h = (n − 1)·q`, interpolate between the
/// neighbouring order statistics).
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    let q = q.clamp(0.0, 1.0);
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (h - lo as f64)
}

/// Arithmetic mean; `NaN` for an empty sample.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sort a copy ascending. Panics on NaN — the harness never produces NaN
/// sample times, so a NaN here is a caller bug worth failing loudly on.
pub fn sorted_copy(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    v
}

/// Median absolute deviation (unscaled) of a sample.
pub fn median_abs_deviation(values: &[f64]) -> f64 {
    let sorted = sorted_copy(values);
    let med = quantile(&sorted, 0.5);
    let deviations = sorted_copy(&values.iter().map(|x| (x - med).abs()).collect::<Vec<_>>());
    quantile(&deviations, 0.5)
}

/// Split a sample into inliers and a dropped-outlier count: a sample is an
/// outlier when it sits more than `k` (MAD-derived) standard deviations from
/// the median. Samples of fewer than three values are returned untouched.
pub fn reject_outliers(values: &[f64], k: f64) -> (Vec<f64>, usize) {
    if values.len() < 3 {
        return (values.to_vec(), 0);
    }
    let sorted = sorted_copy(values);
    let med = quantile(&sorted, 0.5);
    let mad = median_abs_deviation(values);
    // A window where more than half the samples are identical has MAD = 0;
    // fall back to a relative epsilon so a genuine spike is still dropped
    // without flagging sub-nanosecond floating-point jitter.
    let scale = (MAD_TO_SIGMA * mad).max(med.abs() * 1e-9 + f64::MIN_POSITIVE);
    let cutoff = k * scale;
    let kept: Vec<f64> = values
        .iter()
        .copied()
        .filter(|x| (x - med).abs() <= cutoff)
        .collect();
    let dropped = values.len() - kept.len();
    (kept, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_a_known_distribution() {
        // 1, 2, …, 100: every quantile has a closed form under R-7.
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((quantile(&values, 0.5) - 50.5).abs() < 1e-12);
        assert!((quantile(&values, 0.95) - 95.05).abs() < 1e-12);
        assert!((quantile(&values, 0.99) - 99.01).abs() < 1e-12);
        assert_eq!(quantile(&values, 0.0), 1.0);
        assert_eq!(quantile(&values, 1.0), 100.0);
    }

    #[test]
    fn quantile_of_a_singleton_is_the_value() {
        assert_eq!(quantile(&[7.25], 0.95), 7.25);
    }

    #[test]
    fn mad_matches_hand_computation() {
        // median 3, deviations {2, 1, 0, 1, 2} → MAD 1.
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((median_abs_deviation(&values) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outlier_rejection_drops_a_100x_spike() {
        // ~100 µs samples with realistic jitter, plus one 100× spike (a
        // preempted sample).
        let mut values: Vec<f64> = (0..49).map(|i| 100.0 + (i % 7) as f64 * 0.3).collect();
        values.push(10_000.0);
        let (kept, dropped) = reject_outliers(&values, 5.0);
        assert_eq!(dropped, 1, "exactly the spike is rejected");
        assert_eq!(kept.len(), 49);
        assert!(kept.iter().all(|&x| x < 110.0));
    }

    #[test]
    fn outlier_rejection_keeps_an_identical_sample_intact() {
        let values = vec![42.0; 20];
        let (kept, dropped) = reject_outliers(&values, 5.0);
        assert_eq!(dropped, 0);
        assert_eq!(kept.len(), 20);
    }

    #[test]
    fn zero_mad_still_catches_a_spike() {
        // More than half the samples identical → MAD = 0; the epsilon
        // fallback must still reject the spike.
        let mut values = vec![50.0; 19];
        values.push(5_000.0);
        let (_, dropped) = reject_outliers(&values, 5.0);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn tiny_samples_are_never_rejected() {
        let (kept, dropped) = reject_outliers(&[1.0, 1_000.0], 5.0);
        assert_eq!(kept.len(), 2);
        assert_eq!(dropped, 0);
    }
}
