//! Baseline comparison behind CI's `bench-regression` gate.
//!
//! The committed `BENCH_apparate.json` is the perf trajectory's latest point;
//! this module parses it back (the inverse of [`crate::report`]'s hand-rolled
//! writer), aggregates per-suite medians over the benchmarks present in
//! *both* the baseline and the fresh run (so adding a benchmark never trips
//! the gate), and fails when a required suite's median inflated past the
//! tolerance. The tolerance is deliberately generous (25 % by default):
//! CI machines differ from the machine that produced the committed baseline,
//! so the gate catches algorithmic blow-ups, not micro-noise.

use crate::report::BenchReport;
use crate::stats;

/// Suites the regression gate enforces. The others (`adaptation`, `prep`,
/// `sensitivity`, `e2e`) still appear in the report but only inform — their
/// medians are either microseconds-scale (pure noise on shared CI runners) or
/// already covered transitively by `e2e`'s components.
pub const REQUIRED_SUITES: &[&str] = &[
    "tuning",
    "serving",
    "generative",
    "overhead",
    "scale",
    "ingest",
];

/// One `(suite, benchmark)` median parsed from a committed `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Suite name.
    pub suite: String,
    /// Benchmark name, unique within its suite.
    pub benchmark: String,
    /// Median per-iteration wall time (µs).
    pub median_us: f64,
}

/// Why the regression gate cannot produce a verdict. Each failure mode is
/// named so CI logs say exactly which contract the baseline (or the fresh
/// run) broke, instead of silently passing a hollow comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// The baseline file contained no parseable benchmark reports at all —
    /// an empty or truncated `BENCH_*.json` must not pass as "no regression".
    EmptyBaseline,
    /// A baseline benchmark report carried a `null`, `NaN` or infinite
    /// median: the committed run was broken and cannot anchor the gate.
    NonFiniteMedian {
        /// Suite of the broken report.
        suite: String,
        /// Benchmark of the broken report.
        benchmark: String,
    },
    /// A required suite present in the baseline has no counterpart in the
    /// fresh run (or vice versa) — a hole in the perf trajectory.
    MissingRequiredSuite {
        /// The absent suite.
        suite: String,
    },
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::EmptyBaseline => {
                write!(f, "baseline holds no parseable benchmark reports")
            }
            GateError::NonFiniteMedian { suite, benchmark } => write!(
                f,
                "baseline report {suite}/{benchmark} has a null or non-finite median"
            ),
            GateError::MissingRequiredSuite { suite } => write!(
                f,
                "required suite {suite} is missing from the run or the baseline"
            ),
        }
    }
}

impl std::error::Error for GateError {}

/// Extract the string value of `"key":"..."` from one JSON line, undoing the
/// escapes [`crate::report::escape_json`] emits. `None` if the key is absent.
fn string_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract the numeric value of `"key":123.45` from one JSON line. `None` if
/// the key is absent or the value is not a finite number (`null` medians mark
/// a broken run and must not silently pass the gate as a baseline).
fn number_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end]
        .trim()
        .parse::<f64>()
        .ok()
        .filter(|x| x.is_finite())
}

/// Parse a committed `BENCH_*.json` back into per-benchmark medians. Lines
/// without a `suite`/`benchmark` pair (the schema header, the overhead-link
/// summary) are skipped; a benchmark line whose median is `null` or
/// non-finite is a [`GateError::NonFiniteMedian`], and a file yielding no
/// reports at all is a [`GateError::EmptyBaseline`] — neither may silently
/// pass the gate as a baseline.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, GateError> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let (Some(suite), Some(benchmark)) =
            (string_field(line, "suite"), string_field(line, "benchmark"))
        else {
            continue;
        };
        match number_field(line, "median_us") {
            Some(median_us) => entries.push(BaselineEntry {
                suite,
                benchmark,
                median_us,
            }),
            None => return Err(GateError::NonFiniteMedian { suite, benchmark }),
        }
    }
    if entries.is_empty() {
        return Err(GateError::EmptyBaseline);
    }
    Ok(entries)
}

/// One suite's before/after aggregate in a [`RegressionReport`].
#[derive(Debug, Clone)]
pub struct SuiteComparison {
    /// Suite name.
    pub suite: String,
    /// Whether the gate enforces this suite.
    pub required: bool,
    /// Benchmarks present in both the baseline and the current run.
    pub common_benchmarks: usize,
    /// Median of the common benchmarks' baseline medians (µs).
    pub baseline_median_us: f64,
    /// Median of the same benchmarks' current medians (µs).
    pub current_median_us: f64,
    /// The single common benchmark with the worst relative change, with that
    /// change in percent. Guards the gap the suite median cannot see: a
    /// blow-up confined to one non-median benchmark.
    pub worst_benchmark: Option<(String, f64)>,
}

impl SuiteComparison {
    /// Relative change of the suite median, in percent (positive = slower).
    pub fn change_pct(&self) -> f64 {
        if self.baseline_median_us <= 0.0 {
            return 0.0;
        }
        (self.current_median_us / self.baseline_median_us - 1.0) * 100.0
    }

    /// The worst single-benchmark change in percent (0 with no common
    /// benchmarks).
    pub fn worst_benchmark_pct(&self) -> f64 {
        self.worst_benchmark
            .as_ref()
            .map(|(_, pct)| *pct)
            .unwrap_or(0.0)
    }
}

/// The regression gate's verdict: per-suite before/after medians plus the
/// required suites missing from either side.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// One row per suite seen in the baseline or the current run, in current
    /// run order (baseline-only suites last).
    pub suites: Vec<SuiteComparison>,
    /// Required suites with no common benchmarks between baseline and current
    /// run — a hole in the trajectory, treated as a failure.
    pub missing_required: Vec<String>,
    /// Gate tolerance: a required suite fails above this inflation (%).
    pub max_regression_pct: f64,
}

/// Single benchmarks are noisier than suite medians, so the per-benchmark
/// guard trips at this multiple of the suite tolerance (4 × 25 % = a
/// benchmark doubling).
const BENCHMARK_TOLERANCE_FACTOR: f64 = 4.0;

/// Median of the medians of the given suite's benchmarks restricted to names
/// in `names`, or `None` if the intersection is empty.
fn suite_median(entries: &[(String, String, f64)], suite: &str, names: &[String]) -> Option<f64> {
    let medians: Vec<f64> = entries
        .iter()
        .filter(|(s, b, _)| s == suite && names.contains(b))
        .map(|(_, _, m)| *m)
        .collect();
    if medians.is_empty() {
        return None;
    }
    Some(stats::quantile(&stats::sorted_copy(&medians), 0.5))
}

/// Compare a fresh run against the committed baseline.
pub fn compare(
    baseline: &[BaselineEntry],
    current: &[BenchReport],
    max_regression_pct: f64,
) -> RegressionReport {
    let base: Vec<(String, String, f64)> = baseline
        .iter()
        .map(|e| (e.suite.clone(), e.benchmark.clone(), e.median_us))
        .collect();
    let cur: Vec<(String, String, f64)> = current
        .iter()
        .map(|r| (r.suite.clone(), r.benchmark.clone(), r.median_us))
        .collect();
    // Suite order: current run first (the authoritative registry order), then
    // any baseline-only leftovers.
    let mut suites: Vec<String> = Vec::new();
    for (s, _, _) in cur.iter().chain(base.iter()) {
        if !suites.contains(s) {
            suites.push(s.clone());
        }
    }
    let mut rows = Vec::new();
    let mut missing_required = Vec::new();
    for suite in &suites {
        let common: Vec<String> = cur
            .iter()
            .filter(|(s, _, _)| s == suite)
            .map(|(_, b, _)| b.clone())
            .filter(|b| base.iter().any(|(s, bb, _)| s == suite && bb == b))
            .collect();
        let required = REQUIRED_SUITES.contains(&suite.as_str());
        // Per-benchmark change over the intersection, for the worst-benchmark
        // guard.
        let worst_benchmark = common
            .iter()
            .filter_map(|b| {
                let before = base
                    .iter()
                    .find(|(s, bb, _)| s == suite && bb == b)
                    .map(|(_, _, m)| *m)?;
                let after = cur
                    .iter()
                    .find(|(s, bb, _)| s == suite && bb == b)
                    .map(|(_, _, m)| *m)?;
                if before <= 0.0 {
                    return None;
                }
                Some((b.clone(), (after / before - 1.0) * 100.0))
            })
            .max_by(|(_, a), (_, b)| a.total_cmp(b));
        match (
            suite_median(&base, suite, &common),
            suite_median(&cur, suite, &common),
        ) {
            (Some(baseline_median_us), Some(current_median_us)) => rows.push(SuiteComparison {
                suite: suite.clone(),
                required,
                common_benchmarks: common.len(),
                baseline_median_us,
                current_median_us,
                worst_benchmark,
            }),
            _ if required => missing_required.push(suite.clone()),
            _ => {}
        }
    }
    // Required suites absent from both sides still count as missing.
    for suite in REQUIRED_SUITES {
        if !suites.iter().any(|s| s == suite) {
            missing_required.push(suite.to_string());
        }
    }
    RegressionReport {
        suites: rows,
        missing_required,
        max_regression_pct,
    }
}

impl RegressionReport {
    /// Tolerance of the per-benchmark guard (%): single benchmarks are
    /// noisier than suite medians, so they only fail at 4× the suite
    /// tolerance (`BENCHMARK_TOLERANCE_FACTOR`).
    pub fn benchmark_tolerance_pct(&self) -> f64 {
        self.max_regression_pct * BENCHMARK_TOLERANCE_FACTOR
    }

    /// Whether one suite row fails the gate: its median inflated past the
    /// tolerance, or a single common benchmark blew up past the (wider)
    /// per-benchmark tolerance — a regression the suite median cannot see
    /// when it hits a non-median benchmark.
    fn row_regressed(&self, row: &SuiteComparison) -> bool {
        row.required
            && (row.change_pct() > self.max_regression_pct
                || row.worst_benchmark_pct() > self.benchmark_tolerance_pct())
    }

    /// Whether one suite row improved past the tolerance: its median dropped
    /// by more than the gate's regression threshold. Not a failure — but the
    /// committed baseline no longer describes the code, so the gate would
    /// wave through a later regression back to the stale anchor.
    fn row_improved(&self, row: &SuiteComparison) -> bool {
        row.required && row.change_pct() < -self.max_regression_pct
    }

    /// Required suites whose median dropped more than the tolerance below the
    /// committed baseline — the author should regenerate the baseline.
    pub fn improvements(&self) -> Vec<&SuiteComparison> {
        self.suites
            .iter()
            .filter(|row| self.row_improved(row))
            .collect()
    }

    /// Required suites whose median (or single worst benchmark) inflated past
    /// the tolerance.
    pub fn regressions(&self) -> Vec<&SuiteComparison> {
        self.suites
            .iter()
            .filter(|row| self.row_regressed(row))
            .collect()
    }

    /// The missing-suite holes as named [`GateError`]s.
    pub fn gate_errors(&self) -> Vec<GateError> {
        self.missing_required
            .iter()
            .map(|suite| GateError::MissingRequiredSuite {
                suite: suite.clone(),
            })
            .collect()
    }

    /// Whether the gate passes: no regression in a required suite and no
    /// required suite missing.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty() && self.missing_required.is_empty()
    }

    /// The before/after table as GitHub-flavoured markdown, for the job
    /// summary.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| suite | gate | baseline median (µs) | current median (µs) | change | worst benchmark | verdict |\n\
             |---|---|---:|---:|---:|---|---|\n",
        );
        for row in &self.suites {
            let verdict = if !row.required {
                "info"
            } else if self.row_regressed(row) {
                "**REGRESSED**"
            } else if self.row_improved(row) {
                "ok (**improved**)"
            } else {
                "ok"
            };
            let worst = row
                .worst_benchmark
                .as_ref()
                .map(|(name, pct)| format!("{name} ({pct:+.1}%)"))
                .unwrap_or_else(|| "—".to_string());
            out.push_str(&format!(
                "| {} | {} | {:.3} | {:.3} | {:+.1}% | {} | {} |\n",
                row.suite,
                if row.required {
                    "required"
                } else {
                    "informational"
                },
                row.baseline_median_us,
                row.current_median_us,
                row.change_pct(),
                worst,
                verdict,
            ));
        }
        for suite in &self.missing_required {
            out.push_str(&format!(
                "| {suite} | required | — | — | — | — | **MISSING** |\n"
            ));
        }
        out.push_str(&format!(
            "\ngate: fail when a required suite's median inflates more than {:.0}% over the \
             committed baseline, or any single benchmark in it by more than {:.0}%.\n",
            self.max_regression_pct,
            self.benchmark_tolerance_pct(),
        ));
        let improvements = self.improvements();
        if !improvements.is_empty() {
            out.push_str(
                "\n> [!WARNING]\n> The committed baseline is stale — these required suites now \
                 run far faster than it:\n",
            );
            for row in &improvements {
                out.push_str(&format!(
                    "> - `{}`: median {:.3} → {:.3} µs ({:+.1}%)\n",
                    row.suite,
                    row.baseline_median_us,
                    row.current_median_us,
                    row.change_pct(),
                ));
            }
            out.push_str(
                "> \n> Regenerate it so the gate re-anchors on the new trajectory:\n\
                 > `cargo run --release -p apparate-bench --bin bench -- --quick --seed 42 \
                 --out BENCH_apparate.json`\n",
            );
        }
        out
    }

    /// The same table as fixed-width text, for the build log.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{:<13} {:<13} {:>16} {:>16} {:>8}  verdict\n",
            "suite", "gate", "baseline med us", "current med us", "change"
        );
        for row in &self.suites {
            let verdict = if !row.required {
                "info"
            } else if self.row_regressed(row) {
                "REGRESSED"
            } else if self.row_improved(row) {
                "ok (improved)"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<13} {:<13} {:>16.3} {:>16.3} {:>+7.1}%  {}\n",
                row.suite,
                if row.required { "required" } else { "info" },
                row.baseline_median_us,
                row.current_median_us,
                row.change_pct(),
                verdict,
            ));
        }
        for suite in &self.missing_required {
            out.push_str(&format!(
                "{suite:<13} {:<13} {:>16} {:>16} {:>8}  MISSING\n",
                "required", "-", "-", "-"
            ));
        }
        for row in self.improvements() {
            out.push_str(&format!(
                "warning: suite {} median dropped {:+.1}% below the committed baseline; \
                 regenerate BENCH_apparate.json to re-anchor the gate\n",
                row.suite,
                row.change_pct(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_json_lines;

    fn report(suite: &str, benchmark: &str, median_us: f64) -> BenchReport {
        BenchReport {
            suite: suite.to_string(),
            benchmark: benchmark.to_string(),
            samples: 10,
            iters: 1,
            median_us,
            p95_us: median_us * 1.2,
            p99_us: median_us * 1.3,
            mean_us: median_us * 1.05,
            outliers_dropped: 0,
        }
    }

    fn full_run(scale: f64) -> Vec<BenchReport> {
        REQUIRED_SUITES
            .iter()
            .flat_map(|suite| {
                (0..3).map(move |i| report(suite, &format!("bench-{i}"), 100.0 * (i + 1) as f64))
            })
            .map(|mut r| {
                r.median_us *= scale;
                r
            })
            .collect()
    }

    fn baseline_of(reports: &[BenchReport]) -> Vec<BaselineEntry> {
        parse_baseline(&render_json_lines(42, "quick", reports)).expect("fixture baseline parses")
    }

    #[test]
    fn parsing_round_trips_the_writers_output() {
        let reports = vec![
            report("tuning", "greedy_tune/validation-window", 9618.7585),
            report("scale", "fleet_run/cv-apparate/x8", 120_000.25),
        ];
        let entries = baseline_of(&reports);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].suite, "tuning");
        assert_eq!(entries[0].benchmark, "greedy_tune/validation-window");
        assert!((entries[0].median_us - 9618.7585).abs() < 1e-9);
        assert!((entries[1].median_us - 120_000.25).abs() < 1e-9);
    }

    #[test]
    fn parsing_skips_header_and_summary_lines() {
        let text = concat!(
            "{\"schema\":\"apparate-bench/v1\",\"seed\":42,\"mode\":\"quick\",\"suites\":[\"tuning\"]}\n",
            "{\"suite\":\"tuning\",\"benchmark\":\"ok\",\"samples\":3,\"iters\":1,\"median_us\":10.5,\"p95_us\":11,\"p99_us\":12,\"mean_us\":10.6,\"outliers_dropped\":0}\n",
            "{\"schema\":\"apparate-bench/overhead-link/v1\",\"seed\":42,\"scenarios\":3,\"messages\":100,\"bytes\":1000,\"mean_link_latency_ms\":0.4500}\n",
        );
        let entries = parse_baseline(text).expect("header and summary lines are not reports");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].benchmark, "ok");
    }

    #[test]
    fn an_empty_baseline_is_a_named_error() {
        // An empty or truncated committed baseline must not pass the gate as
        // "nothing regressed".
        assert_eq!(parse_baseline(""), Err(GateError::EmptyBaseline));
        // A file with only non-report lines is just as hollow.
        let headers_only =
            "{\"schema\":\"apparate-bench/v1\",\"seed\":42,\"mode\":\"quick\",\"suites\":[]}\n";
        assert_eq!(parse_baseline(headers_only), Err(GateError::EmptyBaseline));
        assert!(GateError::EmptyBaseline
            .to_string()
            .contains("no parseable"));
    }

    #[test]
    fn null_or_non_finite_medians_are_named_errors() {
        // A broken committed run (null median from zero samples, or NaN/inf
        // from a corrupted edit) cannot anchor the gate.
        for bad in ["null", "NaN", "inf"] {
            let text = format!(
                concat!(
                    "{{\"suite\":\"tuning\",\"benchmark\":\"ok\",\"median_us\":10.5}}\n",
                    "{{\"suite\":\"tuning\",\"benchmark\":\"broken\",\"median_us\":{}}}\n",
                ),
                bad
            );
            assert_eq!(
                parse_baseline(&text),
                Err(GateError::NonFiniteMedian {
                    suite: "tuning".to_string(),
                    benchmark: "broken".to_string(),
                }),
                "median_us:{bad} must be rejected by name"
            );
        }
        let error = GateError::NonFiniteMedian {
            suite: "tuning".to_string(),
            benchmark: "broken".to_string(),
        };
        assert!(error.to_string().contains("tuning/broken"));
    }

    #[test]
    fn unchanged_run_passes_the_gate() {
        let current = full_run(1.0);
        let verdict = compare(&baseline_of(&current), &current, 25.0);
        assert!(verdict.passed(), "identical medians must pass");
        assert!(verdict.missing_required.is_empty());
        for row in &verdict.suites {
            assert!(row.change_pct().abs() < 1e-9);
            assert_eq!(row.common_benchmarks, 3);
        }
    }

    #[test]
    fn inflating_a_required_suite_median_past_25_pct_fails() {
        // The acceptance check for the CI gate: a >25 % slowdown in one
        // required suite (a sleep injected into its benchmarks) must fail.
        let baseline = baseline_of(&full_run(1.0));
        let mut current = full_run(1.0);
        for r in current.iter_mut().filter(|r| r.suite == "generative") {
            r.median_us *= 1.30;
        }
        let verdict = compare(&baseline, &current, 25.0);
        assert!(!verdict.passed());
        let regressions = verdict.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].suite, "generative");
        assert!((regressions[0].change_pct() - 30.0).abs() < 1e-6);
        // 20 % inflation stays inside the tolerance.
        let mut mild = full_run(1.0);
        for r in mild.iter_mut().filter(|r| r.suite == "generative") {
            r.median_us *= 1.20;
        }
        assert!(compare(&baseline, &mild, 25.0).passed());
    }

    #[test]
    fn a_blow_up_hidden_from_the_suite_median_still_fails() {
        // The suite median cannot see a regression confined to one non-median
        // benchmark; the per-benchmark guard (4 × the suite tolerance) must.
        let baseline = baseline_of(&full_run(1.0));
        let mut current = full_run(1.0);
        // bench-2 is the suite maximum (300 µs): inflating it 100× leaves the
        // suite median (bench-1, 200 µs) untouched.
        let victim = current
            .iter_mut()
            .find(|r| r.suite == "scale" && r.benchmark == "bench-2")
            .expect("fixture benchmark");
        victim.median_us *= 100.0;
        let verdict = compare(&baseline, &current, 25.0);
        let scale = verdict
            .suites
            .iter()
            .find(|r| r.suite == "scale")
            .expect("scale row");
        assert!(
            scale.change_pct().abs() < 1e-9,
            "the suite median must indeed be blind to this blow-up"
        );
        assert_eq!(
            scale.worst_benchmark,
            Some(("bench-2".to_string(), 9_900.0))
        );
        assert!(!verdict.passed(), "the worst-benchmark guard must trip");
        assert_eq!(verdict.regressions()[0].suite, "scale");
        // A mild single-benchmark wobble (+50 % < the 100 % per-benchmark
        // tolerance) stays inside the gate.
        let mut mild = full_run(1.0);
        mild.iter_mut()
            .find(|r| r.suite == "scale" && r.benchmark == "bench-2")
            .expect("fixture benchmark")
            .median_us *= 1.5;
        assert!(compare(&baseline, &mild, 25.0).passed());
    }

    #[test]
    fn informational_suites_never_fail_the_gate() {
        let mut reports = full_run(1.0);
        reports.push(report("sensitivity", "offline_tune/acc-1pct", 50.0));
        let baseline = baseline_of(&reports);
        let mut current = reports.clone();
        for r in current.iter_mut().filter(|r| r.suite == "sensitivity") {
            r.median_us *= 10.0;
        }
        let verdict = compare(&baseline, &current, 25.0);
        assert!(verdict.passed(), "a 10x informational blow-up only informs");
        let row = verdict
            .suites
            .iter()
            .find(|r| r.suite == "sensitivity")
            .expect("informational row still rendered");
        assert!(!row.required);
        assert!(row.change_pct() > 100.0);
    }

    #[test]
    fn a_required_suite_missing_from_the_run_fails() {
        // "scale" exists in the committed baseline but the fresh run never
        // produced it: the gate must fail with the hole named.
        let baseline = baseline_of(&full_run(1.0));
        let current: Vec<BenchReport> = full_run(1.0)
            .into_iter()
            .filter(|r| r.suite != "scale")
            .collect();
        let verdict = compare(&baseline, &current, 25.0);
        assert!(!verdict.passed());
        assert_eq!(verdict.missing_required, vec!["scale".to_string()]);
        assert_eq!(
            verdict.gate_errors(),
            vec![GateError::MissingRequiredSuite {
                suite: "scale".to_string()
            }]
        );
        assert!(verdict.gate_errors()[0].to_string().contains("scale"));
    }

    #[test]
    fn a_large_improvement_warns_to_regenerate_the_baseline() {
        // Halving a required suite's medians passes the gate but leaves the
        // committed baseline stale — the report must say so and tell the
        // author how to re-anchor it.
        let baseline = baseline_of(&full_run(1.0));
        let mut current = full_run(1.0);
        for r in current.iter_mut().filter(|r| r.suite == "tuning") {
            r.median_us *= 0.5;
        }
        let verdict = compare(&baseline, &current, 25.0);
        assert!(verdict.passed(), "an improvement is not a regression");
        let improved = verdict.improvements();
        assert_eq!(improved.len(), 1);
        assert_eq!(improved[0].suite, "tuning");
        let md = verdict.render_markdown();
        assert!(md.contains("ok (**improved**)"));
        assert!(md.contains("baseline is stale"));
        assert!(md.contains("--out BENCH_apparate.json"));
        assert!(verdict
            .render_text()
            .contains("regenerate BENCH_apparate.json"));
        // A drop inside the tolerance stays quiet.
        let mut mild = full_run(1.0);
        for r in mild.iter_mut().filter(|r| r.suite == "tuning") {
            r.median_us *= 0.8;
        }
        assert!(compare(&baseline, &mild, 25.0).improvements().is_empty());
    }

    #[test]
    fn renamed_benchmarks_compare_over_the_intersection_only() {
        let baseline = baseline_of(&full_run(1.0));
        let mut current = full_run(1.0);
        // A new benchmark with a huge median must not trip the gate: it has
        // no baseline counterpart yet.
        current.push(report("scale", "fleet_run/new-workload/x8", 1e9));
        let verdict = compare(&baseline, &current, 25.0);
        assert!(verdict.passed());
        let scale = verdict
            .suites
            .iter()
            .find(|r| r.suite == "scale")
            .expect("scale row");
        assert_eq!(scale.common_benchmarks, 3);
    }

    #[test]
    fn markdown_table_shows_before_and_after() {
        let baseline = baseline_of(&full_run(1.0));
        let mut current = full_run(1.0);
        for r in current.iter_mut().filter(|r| r.suite == "overhead") {
            r.median_us *= 1.5;
        }
        let verdict = compare(&baseline, &current, 25.0);
        let md = verdict.render_markdown();
        assert!(md.contains("| overhead | required | 200.000 | 300.000 | +50.0% |"));
        assert!(md.contains("**REGRESSED**"));
        assert!(md.contains("| tuning | required | 200.000 | 200.000 | +0.0% |"));
        assert!(
            md.contains("(+50.0%)"),
            "worst-benchmark column is rendered"
        );
        let text = verdict.render_text();
        assert!(text.contains("REGRESSED"));
    }
}
