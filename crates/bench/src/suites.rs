//! The eleven benchmark suites, measuring the workspace's hot paths:
//!
//! | suite         | what it measures                                         |
//! |---------------|----------------------------------------------------------|
//! | `tuning`      | threshold tuning, Algorithm 1 (`apparate-core`)          |
//! | `adaptation`  | ramp utility + adjustment, Algorithm 2 (`apparate-core`) |
//! | `prep`        | ramp-site enumeration + deployment (`apparate-baselines`)|
//! | `serving`     | batching simulator + arrival traces (`apparate-serving`) |
//! | `generative`  | continuous-batching token policies (`apparate-baselines`)|
//! | `sensitivity` | accuracy/ramp-budget sweep points                        |
//! | `e2e`         | repro quick-run scenarios (`apparate-experiments`)       |
//! | `overhead`    | GPU↔controller feedback link + controller-in-the-loop    |
//! | `scale`       | CV + generative fleet runs across replica counts + sharding |
//! | `telemetry`   | disabled/recording sinks + JSON-lines export (`apparate-telemetry`) |
//! | `ingest`      | streaming dispatch + SLO admission control (`apparate-serving`) |
//!
//! Every suite is a plain function from a [`BenchContext`] to a list of
//! [`BenchReport`]s, registered in [`SUITES`]. Fixtures are built once per
//! suite, outside the measured closures; everything is derived from the
//! context seed, so the *structure* of a run (suite and benchmark names) is
//! deterministic even though the measured times are not.

use apparate_baselines::{
    batch_time_fn, deploy_all_sites, deploy_budget_sites, offline_tuned_thresholds,
    per_ramp_savings_us, vanilla_policy, RampDeployment, StaticExitPolicy, StaticTokenPolicy,
};
use apparate_core::{
    adjust_ramps, feasible_sites, grid_tune, ramp_utilities, AdjustInput, ApparateConfig,
    GreedyParams, IncrementalTuner, RampArchitecture, RequestFeedback, ThresholdEvaluator,
    TuningWindow,
};
use apparate_exec::{SampleSemantics, SemanticsModel};
use apparate_experiments::{
    run_scenarios, scenario_config, ReproSizes, ScenarioSelect, WorkloadTokens,
};
use apparate_model::{zoo, ZooModel};
use apparate_serving::{
    ArrivalTrace, ContinuousBatchingConfig, GenerativeSimulator, Request, ServingConfig,
    ServingSimulator, VanillaTokenPolicy,
};
use apparate_sim::{DeterministicRng, SimDuration};
use apparate_workload::{
    video_workload, GenerativeConfig, GenerativeTask, GenerativeWorkload, VideoConfig, Workload,
};

use crate::harness::{run_bench, BenchConfig};
use crate::report::BenchReport;

/// Everything a suite needs: the experiment seed and the measurement budgets.
#[derive(Debug, Clone, Copy)]
pub struct BenchContext {
    /// Experiment seed; fixtures derive all randomness from it.
    pub seed: u64,
    /// Measurement budgets and the fixture scale.
    pub config: BenchConfig,
}

impl BenchContext {
    /// Scale a fixture size by the config's workload scale (smoke mode
    /// shrinks fixtures), with a floor that keeps bootstrap splits non-empty.
    pub fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.config.workload_scale).round() as usize).max(4)
    }

    fn bench<R>(&self, suite: &str, benchmark: &str, f: impl FnMut() -> R) -> BenchReport {
        run_bench(&self.config, suite, benchmark, f)
    }
}

/// A suite: context in, reports out.
pub type SuiteFn = fn(&BenchContext) -> Vec<BenchReport>;

/// The registered suites, in the order the `bench` binary runs them.
pub const SUITES: &[(&str, SuiteFn)] = &[
    ("tuning", tuning),
    ("adaptation", adaptation),
    ("prep", prep),
    ("serving", serving),
    ("generative", generative),
    ("sensitivity", sensitivity),
    ("e2e", e2e),
    ("overhead", overhead),
    ("scale", scale),
    ("telemetry", telemetry),
    ("ingest", ingest),
];

/// Names of all registered suites, in run order.
pub fn suite_names() -> Vec<&'static str> {
    SUITES.iter().map(|(name, _)| *name).collect()
}

/// Run one suite by name; `None` for an unknown name.
pub fn run_suite(ctx: &BenchContext, name: &str) -> Option<Vec<BenchReport>> {
    SUITES
        .iter()
        .find(|(suite, _)| *suite == name)
        .map(|(_, f)| f(ctx))
}

/// Run every registered suite and concatenate the reports.
pub fn run_all(ctx: &BenchContext) -> Vec<BenchReport> {
    SUITES.iter().flat_map(|(_, f)| f(ctx)).collect()
}

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

/// The CV comparison fixture most suites measure against: ResNet-50 over the
/// urban-night stream with Apparate's budgeted ramp deployment, mirroring
/// `apparate_experiments::cv_scenario`.
struct CvFixture {
    model: ZooModel,
    semantics: SemanticsModel,
    deployment: RampDeployment,
    workload: Workload,
}

fn semantics_for(seed: u64, model: &ZooModel) -> SemanticsModel {
    SemanticsModel::new(
        DeterministicRng::new(seed).child(0x5E).seed(),
        model.descriptor.overparameterization,
    )
}

fn cv_fixture(ctx: &BenchContext) -> CvFixture {
    let model = zoo::resnet(50);
    let workload = video_workload(
        "urban-night",
        VideoConfig {
            frames: ctx.scaled(3_000),
            night: true,
            ..VideoConfig::default()
        },
        DeterministicRng::new(ctx.seed).child(0xC0).seed(),
    );
    let semantics = semantics_for(ctx.seed, &model);
    let train_len = workload.bootstrap_split().train.len();
    let deployment = deploy_budget_sites(
        &model,
        &semantics,
        &scenario_config(),
        RampArchitecture::Lightweight,
        train_len,
    );
    CvFixture {
        model,
        semantics,
        deployment,
        workload,
    }
}

fn greedy_params(accuracy_loss_budget: f64) -> GreedyParams {
    GreedyParams {
        accuracy_loss_budget,
        ..GreedyParams::default()
    }
}

/// Build the tuner's observation window from calibration samples, exactly the
/// way `offline_tuned_thresholds` does.
fn feedback_window(
    plan: &apparate_exec::ExecutionPlan,
    samples: &[SampleSemantics],
    batch_size: u32,
) -> Vec<RequestFeedback> {
    samples
        .iter()
        .map(|sample| RequestFeedback {
            observations: (0..plan.num_ramps())
                .map(|i| plan.observe(sample, i))
                .collect(),
            exited: None,
            correct: true,
            batch_size,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// tuning — threshold tuning (Algorithm 1)
// ---------------------------------------------------------------------------

fn tuning(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "tuning";
    let fx = cv_fixture(ctx);
    let plan = &fx.deployment.plan;
    let split = fx.workload.bootstrap_split();
    let reference_batch = 4u32;
    let records = feedback_window(plan, split.validation, reference_batch);
    let savings = per_ramp_savings_us(plan, reference_batch);

    // Grid search is O(levels^ramps), so the Figure 10 comparison point is
    // measured on the first two ramps only.
    let grid_records: Vec<RequestFeedback> = records
        .iter()
        .map(|r| RequestFeedback {
            observations: r.observations.iter().take(2).cloned().collect(),
            exited: r.exited,
            correct: r.correct,
            batch_size: r.batch_size,
        })
        .collect();
    let grid_savings: Vec<f64> = savings.iter().take(2).copied().collect();

    // The controller's live tuning path: the incremental Algorithm 1 over
    // the monitor's columnar window. A fresh tuner per iteration keeps the
    // measurement cold (no cross-tune outcome/column cache) — this is the
    // cost of the first tune after a window change, the worst case.
    let window = {
        let mut w = TuningWindow::new(plan.num_ramps(), records.len().max(1));
        for r in &records {
            w.push(&r.observations, r.exited, r.correct, r.batch_size);
        }
        w
    };

    vec![
        ctx.bench(SUITE, "greedy_tune/validation-window", || {
            let mut tuner = IncrementalTuner::new();
            tuner.tune(&window, &savings, greedy_params(0.01))
        }),
        ctx.bench(SUITE, "grid_tune/2-ramps-step-0.25", || {
            let evaluator = ThresholdEvaluator::new(&grid_records, &grid_savings);
            grid_tune(&evaluator, 0.01, 0.25)
        }),
        ctx.bench(SUITE, "offline_tuned_thresholds/bootstrap", || {
            offline_tuned_thresholds(plan, split.validation, greedy_params(0.01), reference_batch)
        }),
    ]
}

// ---------------------------------------------------------------------------
// adaptation — ramp utilities + adjustment (Algorithm 2)
// ---------------------------------------------------------------------------

fn adaptation(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "adaptation";
    let fx = cv_fixture(ctx);
    let dep = &fx.deployment;
    let plan = &dep.plan;
    let batch = 4u32;

    let vanilla_us = plan.vanilla_total_us(batch);
    let per_exit_saving: Vec<f64> = dep
        .all_sites
        .iter()
        .map(|s| (vanilla_us * (1.0 - plan.depth_fraction_of_site(s.site))).max(0.0))
        .collect();
    let per_request_overhead = plan.total_ramp_overhead_us(batch) / plan.num_ramps().max(1) as f64;

    let active = &dep.active_sites;
    let n = active.len();
    let window = 512u64;
    // Synthetic but shaped window: exit mass front-loaded geometrically, the
    // tail ramps seeing few exits — the regime adjustment reasons about.
    let exit_counts: Vec<u64> = (0..n).map(|i| window >> (i as u32 + 2)).collect();
    let active_savings: Vec<f64> = active.iter().map(|&site| per_exit_saving[site]).collect();
    let active_overheads: Vec<f64> = vec![per_request_overhead; n];

    let utilities = ramp_utilities(&exit_counts, window, &active_savings, &active_overheads);
    let positive_utils: Vec<f64> = utilities
        .iter()
        .map(|u| u.net_us().abs().max(1.0))
        .collect();
    let mut negative_utils = positive_utils.clone();
    if let Some(last) = negative_utils.last_mut() {
        *last = -1_000.0;
    }
    let exit_rates: Vec<f64> = exit_counts
        .iter()
        .map(|&c| c as f64 / window as f64)
        .collect();

    vec![
        ctx.bench(SUITE, "ramp_utilities/adjust-window", || {
            ramp_utilities(&exit_counts, window, &active_savings, &active_overheads)
        }),
        ctx.bench(SUITE, "adjust_ramps/probe-earlier", || {
            adjust_ramps(&AdjustInput {
                num_sites: dep.all_sites.len(),
                active_sites: active,
                utilities_us: &positive_utils,
                exit_rates: &exit_rates,
                window_requests: window,
                per_exit_saving_us: &per_exit_saving,
                per_request_overhead_us: per_request_overhead,
                max_active: dep.max_active,
            })
        }),
        ctx.bench(SUITE, "adjust_ramps/replace-negative", || {
            adjust_ramps(&AdjustInput {
                num_sites: dep.all_sites.len(),
                active_sites: active,
                utilities_us: &negative_utils,
                exit_rates: &exit_rates,
                window_requests: window,
                per_exit_saving_us: &per_exit_saving,
                per_request_overhead_us: per_request_overhead,
                max_active: dep.max_active,
            })
        }),
    ]
}

// ---------------------------------------------------------------------------
// prep — scenario preparation (site enumeration, ramp training, deployment)
// ---------------------------------------------------------------------------

fn prep(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "prep";
    let resnet = zoo::resnet(50);
    let bert = zoo::bert_base();
    let resnet_semantics = semantics_for(ctx.seed, &resnet);
    let bert_semantics = semantics_for(ctx.seed, &bert);
    let config = scenario_config();
    let train_samples = ctx.scaled(30);

    vec![
        ctx.bench(SUITE, "feasible_sites/resnet50", || {
            feasible_sites(&resnet, RampArchitecture::Lightweight)
        }),
        ctx.bench(SUITE, "deploy_budget_sites/resnet50", || {
            deploy_budget_sites(
                &resnet,
                &resnet_semantics,
                &config,
                RampArchitecture::Lightweight,
                train_samples,
            )
        }),
        ctx.bench(SUITE, "deploy_all_sites/resnet50", || {
            deploy_all_sites(
                &resnet,
                &resnet_semantics,
                RampArchitecture::Lightweight,
                train_samples,
            )
        }),
        ctx.bench(SUITE, "deploy_budget_sites/bert-base", || {
            deploy_budget_sites(
                &bert,
                &bert_semantics,
                &config,
                RampArchitecture::Lightweight,
                train_samples,
            )
        }),
    ]
}

// ---------------------------------------------------------------------------
// serving — batching simulator + arrival-trace generation
// ---------------------------------------------------------------------------

fn serving(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "serving";
    let fx = cv_fixture(ctx);
    let split = fx.workload.bootstrap_split();
    let serving_samples = split.serving;
    let trace = ArrivalTrace::fixed_rate(serving_samples.len(), 30.0);
    let slo_ms = fx.model.descriptor.default_slo_ms;
    let sim = ServingSimulator::new(ServingConfig::clockwork(slo_ms, 8));
    let plan = fx.deployment.plan.clone();
    let vanilla_plan = plan.with_ramps(Vec::new());
    let trace_len = ctx.scaled(10_000);

    vec![
        ctx.bench(SUITE, "simulate/static-ee/cv-serving-split", || {
            let mut policy = StaticExitPolicy::uniform(plan.clone(), 0.2, "static-ee");
            let estimate = batch_time_fn(&plan);
            sim.run(&trace, serving_samples, &mut policy, &estimate)
        }),
        ctx.bench(SUITE, "simulate/vanilla/cv-serving-split", || {
            let mut policy = vanilla_policy(&vanilla_plan);
            let estimate = batch_time_fn(&vanilla_plan);
            sim.run(&trace, serving_samples, &mut policy, &estimate)
        }),
        ctx.bench(SUITE, "arrival_trace/maf_like", || {
            ArrivalTrace::maf_like(
                trace_len,
                12.0,
                DeterministicRng::new(ctx.seed).child(0x7A).seed(),
            )
        }),
        ctx.bench(SUITE, "arrival_trace/poisson", || {
            ArrivalTrace::poisson(
                trace_len,
                12.0,
                DeterministicRng::new(ctx.seed).child(0x7B).seed(),
            )
        }),
    ]
}

// ---------------------------------------------------------------------------
// generative — token-level policies in the continuous-batching decode loop
// ---------------------------------------------------------------------------

fn generative(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "generative";
    let model = zoo::llama2_7b();
    let semantics = semantics_for(ctx.seed, &model);
    let workload = GenerativeWorkload::generate(
        GenerativeConfig::for_task(GenerativeTask::Summarization, ctx.scaled(24)),
        DeterministicRng::new(ctx.seed).child(0x6E).seed(),
    );
    let trace = ArrivalTrace::poisson(
        workload.len(),
        1.0,
        DeterministicRng::new(ctx.seed).child(0x7B).seed(),
    );
    let requests: Vec<Request> = trace
        .times()
        .iter()
        .zip(workload.sequences())
        .map(|(&at, spec)| {
            Request::generative(
                spec.request_id,
                at,
                workload.token_semantics(spec.request_id, 0),
                spec.output_tokens,
            )
        })
        .collect();
    let tokens = WorkloadTokens(&workload);
    let sim = GenerativeSimulator::new(ContinuousBatchingConfig {
        max_batch_size: 16,
        tbt_slo: None,
    });
    let deployment = deploy_budget_sites(
        &model,
        &semantics,
        &scenario_config(),
        RampArchitecture::Lightweight,
        0,
    );
    let plan = deployment.plan.clone();
    let vanilla_plan = plan.with_ramps(Vec::new());

    vec![
        ctx.bench(SUITE, "simulate/static-token/summarization", || {
            let mut policy = StaticTokenPolicy::uniform(plan.clone(), 0.2, "static-ee");
            sim.run(&requests, &tokens, &mut policy)
        }),
        ctx.bench(SUITE, "simulate/vanilla-token/summarization", || {
            let mut policy = VanillaTokenPolicy::new(|b| {
                SimDuration::from_micros_f64(vanilla_plan.vanilla_total_us(b))
            });
            sim.run(&requests, &tokens, &mut policy)
        }),
        ctx.bench(SUITE, "token_semantics/sequence-walk", || {
            let mut acc = 0.0f64;
            for spec in workload.sequences() {
                for t in 0..spec.output_tokens.min(16) {
                    acc += workload.token_semantics(spec.request_id, t).difficulty;
                }
            }
            acc
        }),
    ]
}

// ---------------------------------------------------------------------------
// sensitivity — sweep points over the two user-facing knobs
// ---------------------------------------------------------------------------

fn sensitivity(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "sensitivity";
    let fx = cv_fixture(ctx);
    let plan = &fx.deployment.plan;
    let split = fx.workload.bootstrap_split();
    let reference_batch = 4u32;
    let train_len = split.train.len();

    let mut reports = Vec::new();
    for (label, accuracy_budget) in [
        ("acc-0.5pct", 0.005),
        ("acc-1pct", 0.01),
        ("acc-2pct", 0.02),
    ] {
        reports.push(ctx.bench(SUITE, &format!("offline_tune/{label}"), || {
            offline_tuned_thresholds(
                plan,
                split.validation,
                greedy_params(accuracy_budget),
                reference_batch,
            )
        }));
    }
    reports.push(ctx.bench(SUITE, "deploy/ramp-budget-sweep", || {
        let mut total_ramps = 0usize;
        for ramp_budget in [0.01, 0.02, 0.04] {
            let config = ApparateConfig {
                ramp_budget,
                ..scenario_config()
            };
            let deployment = deploy_budget_sites(
                &fx.model,
                &fx.semantics,
                &config,
                RampArchitecture::Lightweight,
                train_len,
            );
            total_ramps += deployment.plan.num_ramps();
        }
        total_ramps
    }));
    reports
}

// ---------------------------------------------------------------------------
// e2e — repro quick-run scenarios
// ---------------------------------------------------------------------------

fn e2e(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "e2e";
    let sizes = ReproSizes {
        cv_frames: ctx.scaled(ReproSizes::bench().cv_frames),
        nlp_requests: ctx.scaled(ReproSizes::bench().nlp_requests),
        gen_requests: ctx.scaled(ReproSizes::bench().gen_requests),
    };
    vec![
        ctx.bench(SUITE, "quick_run/cv", || {
            run_scenarios(ctx.seed, sizes, ScenarioSelect::Cv)
        }),
        ctx.bench(SUITE, "quick_run/nlp", || {
            run_scenarios(ctx.seed, sizes, ScenarioSelect::Nlp)
        }),
        ctx.bench(SUITE, "quick_run/generative", || {
            run_scenarios(ctx.seed, sizes, ScenarioSelect::Generative)
        }),
    ]
}

// ---------------------------------------------------------------------------
// overhead — the GPU ↔ controller coordination path (§4.5)
// ---------------------------------------------------------------------------

/// The simulated link charges of one controller-in-the-loop pass over the CV,
/// NLP and generative workloads at bench sizes scaled by `workload_scale`
/// (matching [`BenchContext::scaled`]). The `bench` binary appends this to
/// `BENCH_apparate.json` so CI can watch the §4.5 envelope (mean per-message
/// latency ~0.5 ms) alongside the wall-time trajectory.
pub fn overhead_link_summary(
    seed: u64,
    workload_scale: f64,
) -> apparate_experiments::OverheadTable {
    let scaled = |n: usize| ((n as f64 * workload_scale).round() as usize).max(4);
    let base = ReproSizes::bench();
    let sizes = ReproSizes {
        cv_frames: scaled(base.cv_frames),
        nlp_requests: scaled(base.nlp_requests),
        gen_requests: scaled(base.gen_requests),
    };
    apparate_experiments::run_overhead(seed, sizes, ScenarioSelect::All)
}

fn overhead(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "overhead";
    use apparate_exec::{
        feedback_link, LinkCost, ProfileRecord, RampObservation, RequestRelease, ThresholdUpdate,
    };
    use apparate_sim::SimTime;

    // Link micro-fixtures: a paper-scale batch profile (~1 KB) and a
    // ramp-definition update (~10 KB per ramp).
    let record = |i: u64| ProfileRecord {
        completed_at: SimTime::from_micros(i * 100),
        batch_size: 8,
        num_ramps: 6,
        observations: vec![
            RampObservation {
                entropy: 0.2,
                agrees: true
            };
            6 * 8
        ],
        releases: (i * 8..i * 8 + 8)
            .map(|id| RequestRelease {
                id,
                exit: Some(2),
                correct: true,
            })
            .collect(),
        config_epoch: 0,
    };
    let update = |i: u64| ThresholdUpdate {
        issued_at: SimTime::from_micros(i * 100),
        config_epoch: i,
        thresholds: vec![0.3; 6],
        ramps: None,
    };

    // Controller-in-the-loop fixture: the NLP scenario's Apparate policy
    // alone, served with the charged link (isolates the coordination path
    // from the baseline family the e2e suite already measures).
    let nlp = apparate_experiments::nlp_scenario(ctx.seed, ctx.scaled(1_200));

    vec![
        ctx.bench(SUITE, "feedback_link/profile-stream-256", || {
            let (tx, mut rx) = feedback_link(LinkCost::default());
            for i in 0..256u64 {
                let rec = record(i);
                let at = rec.completed_at;
                tx.send(rec, at);
            }
            rx.poll(SimTime::from_secs(3600)).len()
        }),
        ctx.bench(SUITE, "feedback_link/threshold-updates-64", || {
            let (tx, mut rx) = feedback_link(LinkCost::default());
            for i in 0..64u64 {
                let upd = update(i);
                let at = upd.issued_at;
                tx.send(upd, at);
            }
            rx.poll(SimTime::from_secs(3600)).len()
        }),
        ctx.bench(SUITE, "controller_in_loop/nlp-apparate", || {
            apparate_experiments::run_classification_overhead(&nlp)
                .report
                .total_messages()
        }),
    ]
}

// ---------------------------------------------------------------------------
// scale — multi-replica fleet runs (one controller per replica)
// ---------------------------------------------------------------------------

fn scale(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "scale";
    use apparate_experiments::{
        cv_scenario, generative_scenario, run_classification_fleet, run_generative_fleet,
    };
    use apparate_serving::{shard_arrivals, FleetDispatch};

    // The fleet fixture: the CV comparison scenario over a shared trace, one
    // warm-started Apparate controller per replica over its own charged link.
    // Fleet runs execute replicas wall-clock parallel (default thread count:
    // available parallelism), so on a multi-core runner the x4/x8 rows
    // measure real parallel speedup over the fixed total workload rather
    // than a sequential sum of per-replica costs.
    let scenario = cv_scenario(ctx.seed, ctx.scaled(1_200));
    // The generative fleet fixture: the summarisation scenario's aggregate
    // stream (the `repro --sweep` regime), whole sequences dispatched, one
    // warm-started *token* controller per replica running the full
    // Algorithm 2 loop — the decode-path cost the classification fleet
    // cannot see.
    let generative = generative_scenario(ctx.seed, ctx.scaled(24)).with_arrival_scale(8.0);
    // Dispatcher micro-benchmark fixture: a bursty shared stream.
    let trace = ArrivalTrace::maf_like(
        ctx.scaled(10_000),
        60.0,
        DeterministicRng::new(ctx.seed).child(0x51).seed(),
    );
    let service_estimate = SimDuration::from_millis(15);

    let mut reports = vec![ctx.bench(SUITE, "shard/least-loaded-x8", || {
        shard_arrivals(&trace, 8, FleetDispatch::LeastLoaded, service_estimate)
    })];
    for replicas in [1usize, 2, 4, 8] {
        reports.push(
            ctx.bench(SUITE, &format!("fleet_run/cv-apparate/x{replicas}"), || {
                run_classification_fleet(&scenario, replicas, FleetDispatch::LeastLoaded)
            }),
        );
    }
    for replicas in [1usize, 4, 8] {
        reports.push(ctx.bench(
            SUITE,
            &format!("fleet_run/gen-apparate/x{replicas}"),
            || run_generative_fleet(&generative, replicas, FleetDispatch::LeastLoaded),
        ));
    }
    reports
}

// ---------------------------------------------------------------------------
// telemetry — the observability sinks and exporters
// ---------------------------------------------------------------------------

fn telemetry(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "telemetry";
    use apparate_sim::SimTime;
    use apparate_telemetry::{
        render_metrics_json_lines, render_trace_json_lines, EventKind, Telemetry, TelemetryConfig,
    };

    let n = ctx.scaled(4_096) as u64;
    let disabled = Telemetry::disabled();
    // A pre-recorded snapshot for the exporter benchmarks, shaped like a
    // short serving run (events + one sampled series + counters).
    let recorded = {
        let telemetry = Telemetry::recording(TelemetryConfig::default());
        for i in 0..n {
            telemetry.emit(SimTime::from_micros(i * 100), || EventKind::BatchFormed {
                size: (i % 8) as u32 + 1,
                queue_depth: (i % 5) as usize,
                gpu_us: 900,
            });
            telemetry.gauge(SimTime::from_micros(i * 100), "queue_depth", (i % 5) as f64);
            telemetry.counter("batches", 1);
        }
        telemetry.snapshot().expect("recording handle")
    };

    vec![
        // The gate the whole design hangs on: a disabled sink inside the
        // serving hot loop must cost one discriminant check — the event
        // constructor (with its Vec allocation) must never run.
        ctx.bench(SUITE, "emit/disabled-per-4k", || {
            let mut acc = 0u64;
            for i in 0..n {
                disabled.emit(SimTime::from_micros(i), || EventKind::RampSetChanged {
                    activated: vec![1, 2, 3],
                    deactivated: vec![4],
                    active_count: 3,
                });
                acc = acc.wrapping_add(i);
            }
            acc
        }),
        ctx.bench(SUITE, "gauge/disabled-per-4k", || {
            for i in 0..n {
                disabled.gauge(SimTime::from_micros(i), "queue_depth", i as f64);
            }
        }),
        ctx.bench(SUITE, "emit/recording-per-4k", || {
            let telemetry = Telemetry::recording(TelemetryConfig::default());
            for i in 0..n {
                telemetry.emit(SimTime::from_micros(i * 100), || EventKind::BatchFormed {
                    size: 8,
                    queue_depth: 2,
                    gpu_us: 900,
                });
            }
            telemetry
        }),
        ctx.bench(SUITE, "gauge/recording-sampled-per-4k", || {
            let telemetry = Telemetry::recording(TelemetryConfig::default());
            for i in 0..n {
                telemetry.gauge(SimTime::from_micros(i * 100), "queue_depth", (i % 5) as f64);
            }
            telemetry
        }),
        ctx.bench(SUITE, "export/trace-json-lines", || {
            render_trace_json_lines(&recorded).len()
        }),
        ctx.bench(SUITE, "export/metrics-json-lines", || {
            render_metrics_json_lines(&recorded).len()
        }),
    ]
}

/// The `ingest` suite: the streaming front end — incremental dispatch,
/// passthrough streaming, SLO-driven admission (queues + rate-slew pacing +
/// shedding), and the controller's per-tick observe step.
fn ingest(ctx: &BenchContext) -> Vec<BenchReport> {
    const SUITE: &str = "ingest";
    use apparate_serving::{
        stream_arrivals, AdmissionConfig, AdmissionController, FleetDispatch, IncrementalDispatcher,
    };
    use apparate_telemetry::Telemetry;

    let n = ctx.scaled(16_384);
    // An overloaded bursty stream: 100 req/s against a 15 ms batch-1 service
    // on 2 replicas keeps the admission queues busy, so the measured path
    // includes draining, shedding and pacing — not just the happy path.
    let trace = ArrivalTrace::maf_like(n, 100.0, ctx.seed);
    let service = SimDuration::from_millis(15);
    let slo = SimDuration::from_millis(45);
    let admission = AdmissionConfig::for_slo(slo, 3);

    vec![
        ctx.bench(SUITE, "dispatch/incremental-least-loaded-per-16k", || {
            let mut dispatcher = IncrementalDispatcher::new(4, FleetDispatch::LeastLoaded);
            for &at in trace.times() {
                let replica = dispatcher.select();
                dispatcher.commit(replica, at, service, true);
            }
            dispatcher.offered()
        }),
        ctx.bench(SUITE, "stream/passthrough-per-16k", || {
            stream_arrivals(
                &trace,
                4,
                FleetDispatch::LeastLoaded,
                service,
                None,
                &Telemetry::disabled(),
            )
            .stats
            .admitted
        }),
        ctx.bench(SUITE, "stream/admission-per-16k", || {
            stream_arrivals(
                &trace,
                2,
                FleetDispatch::LeastLoaded,
                service,
                Some(admission),
                &Telemetry::disabled(),
            )
            .stats
            .shed
        }),
        ctx.bench(SUITE, "controller/observe-per-64k", || {
            let mut controller =
                AdmissionController::new(admission.start_slew, admission.stop_slew);
            let mut nudges = 0usize;
            for i in 0..65_536i64 {
                // Sawtooth offsets crossing both hysteresis thresholds.
                let offset = (i % 97 - 48) * 1_000;
                if controller.observe(offset).is_some() {
                    nudges += 1;
                }
            }
            nudges
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_registry_has_the_eleven_suites() {
        assert_eq!(
            suite_names(),
            vec![
                "tuning",
                "adaptation",
                "prep",
                "serving",
                "generative",
                "sensitivity",
                "e2e",
                "overhead",
                "scale",
                "telemetry",
                "ingest"
            ]
        );
    }

    #[test]
    fn overhead_link_summary_stays_in_the_paper_envelope() {
        let table = overhead_link_summary(42, BenchConfig::smoke().workload_scale);
        assert_eq!(table.rows.len(), 3, "cv, nlp and generative scenarios");
        let mean = table.mean_latency_ms();
        assert!(
            (0.3..=0.7).contains(&mean),
            "mean per-message link latency {mean} ms outside §4.5's ~0.5 ms"
        );
    }

    #[test]
    fn unknown_suite_is_none() {
        let ctx = BenchContext {
            seed: 42,
            config: BenchConfig::smoke(),
        };
        assert!(run_suite(&ctx, "no-such-suite").is_none());
    }

    #[test]
    fn adaptation_suite_reports_finite_nonzero_medians() {
        // The cheapest fixture-backed suite doubles as a smoke test that the
        // harness produces usable statistics over real workspace code.
        let ctx = BenchContext {
            seed: 42,
            config: BenchConfig::smoke(),
        };
        let reports = run_suite(&ctx, "adaptation").expect("registered suite");
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert_eq!(report.suite, "adaptation");
            assert!(
                report.median_us.is_finite() && report.median_us > 0.0,
                "{}: median must be finite and non-zero",
                report.benchmark
            );
        }
    }
}
