//! Machine-readable bench reports and the hand-rolled JSON-lines writer.
//!
//! The workspace's `serde` is an offline stub whose derives expand to nothing
//! (see `crates/compat/serde`), so serialisation here is manual: one JSON
//! object per line, written by [`BenchReport::to_json_line`] and bundled into
//! a `BENCH_*.json` file by [`render_json_lines`]. The format is grep-able on
//! purpose — CI checks suite coverage with a plain substring match.

use crate::stats;

/// Summary statistics of one benchmark, ready for the perf trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite the benchmark belongs to (one of the seven registered suites).
    pub suite: String,
    /// Benchmark name, unique within its suite.
    pub benchmark: String,
    /// Number of recorded samples kept after outlier rejection.
    pub samples: usize,
    /// Closure iterations batched into each sample.
    pub iters: u64,
    /// Median per-iteration wall time (µs) over the kept samples.
    pub median_us: f64,
    /// 95th-percentile per-iteration wall time (µs).
    pub p95_us: f64,
    /// 99th-percentile per-iteration wall time (µs).
    pub p99_us: f64,
    /// Mean per-iteration wall time (µs) over the kept samples.
    pub mean_us: f64,
    /// Samples rejected by the MAD filter (preemptions, page faults, …).
    pub outliers_dropped: usize,
}

impl BenchReport {
    /// Summarise raw per-iteration sample times (µs): reject outliers beyond
    /// `mad_k` MAD-derived standard deviations, then take robust quantiles
    /// over the kept samples.
    pub fn from_samples(
        suite: impl Into<String>,
        benchmark: impl Into<String>,
        per_iter_us: &[f64],
        iters: u64,
        mad_k: f64,
    ) -> BenchReport {
        let (kept, dropped) = stats::reject_outliers(per_iter_us, mad_k);
        let sorted = stats::sorted_copy(&kept);
        BenchReport {
            suite: suite.into(),
            benchmark: benchmark.into(),
            samples: kept.len(),
            iters,
            median_us: stats::quantile(&sorted, 0.5),
            p95_us: stats::quantile(&sorted, 0.95),
            p99_us: stats::quantile(&sorted, 0.99),
            mean_us: stats::mean(&kept),
            outliers_dropped: dropped,
        }
    }

    /// One JSON object, no trailing newline.
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"suite\":\"{}\",\"benchmark\":\"{}\",\"samples\":{},\"iters\":{},",
                "\"median_us\":{},\"p95_us\":{},\"p99_us\":{},\"mean_us\":{},",
                "\"outliers_dropped\":{}}}"
            ),
            escape_json(&self.suite),
            escape_json(&self.benchmark),
            self.samples,
            self.iters,
            json_number(self.median_us),
            json_number(self.p95_us),
            json_number(self.p99_us),
            json_number(self.mean_us),
            self.outliers_dropped,
        )
    }
}

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number; non-finite values become `null` so the
/// file stays parseable (and so CI's finite-median check fails visibly).
pub fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Render the consolidated `BENCH_*.json`: a schema/seed header line followed
/// by one report per line.
pub fn render_json_lines(seed: u64, mode: &str, reports: &[BenchReport]) -> String {
    let mut suites: Vec<&str> = Vec::new();
    for report in reports {
        if !suites.contains(&report.suite.as_str()) {
            suites.push(&report.suite);
        }
    }
    let suite_list = suites
        .iter()
        .map(|s| format!("\"{}\"", escape_json(s)))
        .collect::<Vec<_>>()
        .join(",");
    let mut out = format!(
        "{{\"schema\":\"apparate-bench/v1\",\"seed\":{seed},\"mode\":\"{}\",\"suites\":[{suite_list}]}}\n",
        escape_json(mode),
    );
    for report in reports {
        out.push_str(&report.to_json_line());
        out.push('\n');
    }
    out
}

/// Render a human-readable summary table of the reports.
pub fn render_table(reports: &[BenchReport]) -> String {
    let mut out = format!(
        "{:<13} {:<40} {:>7} {:>8} {:>13} {:>13} {:>13} {:>8}\n",
        "suite", "benchmark", "iters", "samples", "median_us", "p95_us", "mean_us", "dropped"
    );
    for r in reports {
        out.push_str(&format!(
            "{:<13} {:<40} {:>7} {:>8} {:>13.3} {:>13.3} {:>13.3} {:>8}\n",
            r.suite,
            r.benchmark,
            r.iters,
            r.samples,
            r.median_us,
            r.p95_us,
            r.mean_us,
            r.outliers_dropped
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-side inverse of [`escape_json`], covering every escape the writer
    /// emits.
    fn unescape_json(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).expect("valid \\u escape");
                    out.push(char::from_u32(code).expect("valid code point"));
                }
                other => panic!("unexpected escape: {other:?}"),
            }
        }
        out
    }

    #[test]
    fn escaping_round_trips_hostile_field_values() {
        let hostile = "quote \" backslash \\ newline \n tab \t bell \u{7} unicode µs";
        let escaped = escape_json(hostile);
        assert!(!escaped.contains('\n'), "escaped text stays on one line");
        assert_eq!(unescape_json(&escaped), hostile);
    }

    #[test]
    fn json_line_contains_every_field_and_escapes_names() {
        let report = BenchReport {
            suite: "tun\"ing".to_string(),
            benchmark: "greedy\\tune".to_string(),
            samples: 31,
            iters: 4,
            median_us: 123.5,
            p95_us: 140.25,
            p99_us: 151.0,
            mean_us: 125.125,
            outliers_dropped: 2,
        };
        let line = report.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"suite\":\"tun\\\"ing\""));
        assert!(line.contains("\"benchmark\":\"greedy\\\\tune\""));
        assert!(line.contains("\"samples\":31"));
        assert!(line.contains("\"iters\":4"));
        assert!(line.contains("\"median_us\":123.5"));
        assert!(line.contains("\"p95_us\":140.25"));
        assert!(line.contains("\"p99_us\":151"));
        assert!(line.contains("\"mean_us\":125.125"));
        assert!(line.contains("\"outliers_dropped\":2"));
    }

    #[test]
    fn non_finite_stats_serialise_as_null() {
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(0.25), "0.25");
    }

    #[test]
    fn from_samples_summarises_and_drops_the_spike() {
        let mut samples: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        samples.push(1_000.0);
        let report = BenchReport::from_samples("s", "b", &samples, 7, 5.0);
        assert_eq!(report.outliers_dropped, 1);
        assert_eq!(report.samples, 30);
        assert_eq!(report.iters, 7);
        assert!(report.median_us >= 10.0 && report.median_us <= 10.5);
        assert!(report.p95_us <= 10.5);
        assert!(report.mean_us < 11.0, "spike must not pollute the mean");
    }

    #[test]
    fn render_json_lines_has_header_plus_one_line_per_report() {
        let report = BenchReport::from_samples("tuning", "x", &[1.0, 2.0, 3.0], 1, 5.0);
        let text = render_json_lines(42, "quick", &[report.clone(), report]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"apparate-bench/v1\""));
        assert!(lines[0].contains("\"seed\":42"));
        assert!(lines[0].contains("\"suites\":[\"tuning\"]"));
        assert!(lines[1].contains("\"suite\":\"tuning\""));
    }
}
