//! The statistical measurement loop: warmup, iteration-count calibration
//! against a wall-clock budget, and per-sample recording.
//!
//! This is the offline-container stand-in for criterion (which cannot be
//! vendored without registry access, see ROADMAP.md): the same three-phase
//! shape — warm up, calibrate how many iterations one sample should batch so
//! a sample is long enough to time accurately, then record samples until the
//! budget runs out — with robust summary statistics from [`crate::stats`].

use std::hint::black_box;
use std::time::{Duration, Instant};

use crate::report::BenchReport;

/// Budgets and thresholds of one measurement run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Wall-clock budget of the warmup/calibration phase.
    pub warmup: Duration,
    /// Wall-clock budget of the sampling phase (per benchmark).
    pub budget: Duration,
    /// Record at least this many samples even if the budget is exhausted.
    pub min_samples: usize,
    /// Stop after this many samples even if budget remains.
    pub max_samples: usize,
    /// Outlier cutoff in MAD-derived standard deviations from the median.
    pub outlier_mad_k: f64,
    /// Multiplier the suites apply to their fixture sizes; smoke mode
    /// shrinks workloads so the determinism test stays fast.
    pub workload_scale: f64,
}

impl BenchConfig {
    /// Default mode: tight confidence intervals for local perf work.
    pub fn full() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(200),
            budget: Duration::from_millis(1_500),
            min_samples: 20,
            max_samples: 200,
            outlier_mad_k: 5.0,
            workload_scale: 1.0,
        }
    }

    /// CI mode (`--quick`): same fixtures, fewer samples per benchmark.
    pub fn quick() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(30),
            budget: Duration::from_millis(250),
            min_samples: 10,
            max_samples: 60,
            outlier_mad_k: 5.0,
            workload_scale: 1.0,
        }
    }

    /// Test mode (`--smoke`): minimal sampling over shrunken fixtures, for
    /// the structural determinism check.
    pub fn smoke() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(1),
            budget: Duration::from_millis(10),
            min_samples: 3,
            max_samples: 5,
            outlier_mad_k: 5.0,
            workload_scale: 0.15,
        }
    }
}

/// Measure `f` under `config` and summarise it as a [`BenchReport`].
///
/// The closure's return value is routed through [`black_box`] every call so
/// the optimiser cannot delete the measured work, and the closure itself may
/// mutate captured state (`FnMut`).
pub fn run_bench<R>(
    config: &BenchConfig,
    suite: &str,
    benchmark: &str,
    mut f: impl FnMut() -> R,
) -> BenchReport {
    // Warmup doubles as calibration: run at least once, keep going until the
    // warmup budget elapses, and use the observed per-iteration cost to pick
    // how many iterations one recorded sample batches.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    loop {
        black_box(f());
        warm_iters += 1;
        if warm_start.elapsed() >= config.warmup {
            break;
        }
    }
    let per_iter_s = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

    let budget_s = config.budget.as_secs_f64();
    let target_sample_s = budget_s / config.max_samples as f64;
    let iters = ((target_sample_s / per_iter_s.max(1e-9)) as u64).max(1);

    let mut samples_us: Vec<f64> = Vec::with_capacity(config.max_samples);
    let run_start = Instant::now();
    loop {
        let sample_start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples_us.push(sample_start.elapsed().as_secs_f64() * 1e6 / iters as f64);
        if samples_us.len() >= config.max_samples {
            break;
        }
        if samples_us.len() >= config.min_samples && run_start.elapsed().as_secs_f64() >= budget_s {
            break;
        }
    }
    BenchReport::from_samples(suite, benchmark, &samples_us, iters, config.outlier_mad_k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_bench_reports_finite_nonzero_statistics() {
        let config = BenchConfig::smoke();
        let report = run_bench(&config, "harness", "sum", || {
            (0..500u64).map(black_box).sum::<u64>()
        });
        assert_eq!(report.suite, "harness");
        assert_eq!(report.benchmark, "sum");
        assert!(report.samples >= config.min_samples - report.outliers_dropped);
        assert!(report.iters >= 1);
        for value in [
            report.median_us,
            report.p95_us,
            report.p99_us,
            report.mean_us,
        ] {
            assert!(value.is_finite() && value > 0.0, "stat must be finite > 0");
        }
        assert!(report.median_us <= report.p95_us);
        assert!(report.p95_us <= report.p99_us);
    }

    #[test]
    fn heavier_work_reports_a_larger_median() {
        let config = BenchConfig::smoke();
        let small = run_bench(&config, "harness", "small", || {
            (0..1_000u64).map(black_box).sum::<u64>()
        });
        let large = run_bench(&config, "harness", "large", || {
            (0..100_000u64).map(black_box).sum::<u64>()
        });
        assert!(
            large.median_us > small.median_us,
            "100x the work must report a larger median ({} vs {} µs)",
            large.median_us,
            small.median_us
        );
    }

    #[test]
    fn stateful_closures_are_supported() {
        let mut counter = 0u64;
        let report = run_bench(&BenchConfig::smoke(), "harness", "stateful", || {
            counter += 1;
            counter
        });
        assert!(counter as usize >= report.samples);
    }
}
