//! Benchmark support for the Apparate reproduction.
//!
//! The `benches/` harnesses are registered with `harness = false` and are
//! currently placeholders: the container this workspace builds in has no
//! registry access, so `criterion` cannot be added yet (see ROADMAP.md "Open
//! items"). Until then, this crate offers [`time_it`], a minimal wall-clock
//! helper the placeholder harnesses (and ad-hoc measurements) can use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Run `f` `iters` times and return the mean wall-clock duration per
/// iteration in microseconds.
pub fn time_it<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    assert!(iters > 0, "at least one iteration is required");
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_reports_a_meaningful_per_iteration_mean() {
        let small = time_it(20, || {
            std::hint::black_box((0..2_000u64).sum::<u64>());
        });
        let large = time_it(20, || {
            std::hint::black_box((0..200_000u64).map(std::hint::black_box).sum::<u64>());
        });
        assert!(small > 0.0, "real work takes measurable time");
        assert!(
            large > small,
            "100x the work must report a larger mean ({large} vs {small} µs)"
        );
    }
}
