//! Statistical benchmark harness for the Apparate reproduction.
//!
//! The build container has no registry access, so criterion cannot be
//! vendored (see ROADMAP.md); this crate provides the same measurement shape
//! offline:
//!
//! * [`harness`] — warmup, iteration calibration against a wall-clock budget,
//!   per-sample recording ([`run_bench`] / [`BenchConfig`]).
//! * [`stats`] — interpolated quantiles and MAD-based outlier rejection.
//! * [`report`] — the [`BenchReport`] record and the hand-rolled JSON-lines
//!   writer behind `BENCH_*.json` (the compat `serde` derives expand to
//!   nothing, so serialisation is manual).
//! * [`suites`] — the nine suites measuring the workspace's hot paths (from
//!   Algorithm 1 micro-benchmarks up to multi-replica fleet runs);
//!   `benches/bench_*.rs` and the `bench` binary both dispatch into them.
//! * [`compare`] — the baseline parser and per-suite regression gate behind
//!   CI's `bench-regression` job (`bench --baseline BENCH_apparate.json`).
//!
//! Run everything and write the consolidated perf-trajectory file with:
//!
//! ```text
//! cargo run --release -p apparate-bench --bin bench -- --quick --out BENCH_apparate.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod harness;
pub mod report;
pub mod stats;
pub mod suites;

pub use compare::{parse_baseline, BaselineEntry, GateError, RegressionReport, REQUIRED_SUITES};
pub use harness::{run_bench, BenchConfig};
pub use report::{escape_json, json_number, render_json_lines, render_table, BenchReport};
pub use suites::{run_all, run_suite, suite_names, BenchContext, SUITES};

use std::time::Instant;

/// Run `f` `iters` times and return the mean wall-clock duration per
/// iteration in microseconds.
///
/// The closure's return value is routed through [`std::hint::black_box`] so
/// the optimiser cannot delete trivial measured bodies; prefer returning the
/// computed value over black-boxing inside the closure.
pub fn time_it<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "at least one iteration is required");
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Entry point shared by the seven `benches/bench_*.rs` harnesses
/// (`harness = false`): parse `--quick`/`--smoke`/`--seed N`, run one suite,
/// print its table. Flags cargo itself forwards (e.g. `--bench`) are ignored.
pub fn bench_main(suite: &str) {
    let mut config = BenchConfig::full();
    let mut seed = 42u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => config = BenchConfig::quick(),
            "--smoke" => config = BenchConfig::smoke(),
            "--seed" => {
                let value = it.next().unwrap_or_default();
                match value.parse() {
                    Ok(parsed) => seed = parsed,
                    Err(_) => {
                        eprintln!("{suite}: invalid --seed value: {value}");
                        std::process::exit(2);
                    }
                }
            }
            _ => {} // cargo bench forwards its own flags; ignore them
        }
    }
    let ctx = BenchContext { seed, config };
    let reports = run_suite(&ctx, suite)
        .unwrap_or_else(|| panic!("suite {suite:?} is not registered in suites::SUITES"));
    print!("{}", render_table(&reports));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_reports_a_meaningful_per_iteration_mean() {
        let small = time_it(20, || (0..2_000u64).sum::<u64>());
        let large = time_it(20, || {
            (0..200_000u64).map(std::hint::black_box).sum::<u64>()
        });
        assert!(small > 0.0, "real work takes measurable time");
        assert!(
            large > small,
            "100x the work must report a larger mean ({large} vs {small} µs)"
        );
    }

    #[test]
    fn time_it_supports_stateful_closures_and_discards_results() {
        let mut calls = 0u32;
        let mean = time_it(5, || {
            calls += 1;
            vec![calls; 8] // non-Copy return value is fine; black_box eats it
        });
        assert_eq!(calls, 5);
        assert!(mean >= 0.0);
    }
}
