//! `bench` — run the benchmark suites and write the consolidated
//! `BENCH_*.json` perf-trajectory file.
//!
//! ```text
//! bench [--quick|--smoke] [--seed N] [--suite NAME]... [--out PATH] [--list]
//! ```
//!
//! Modes: default (full) takes tight samples for local perf work; `--quick`
//! is the CI mode (same fixtures, fewer samples); `--smoke` shrinks fixtures
//! too and exists for the structural determinism test. `--suite` limits the
//! run to the named suites (repeatable); `--out` writes the JSON-lines report
//! (schema header + one line per benchmark).

use apparate_bench::{render_json_lines, render_table, suites, BenchConfig, BenchContext};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Full,
    Quick,
    Smoke,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Quick => "quick",
            Mode::Smoke => "smoke",
        }
    }

    fn config(self) -> BenchConfig {
        match self {
            Mode::Full => BenchConfig::full(),
            Mode::Quick => BenchConfig::quick(),
            Mode::Smoke => BenchConfig::smoke(),
        }
    }
}

struct Args {
    seed: u64,
    mode: Mode,
    out: Option<String>,
    suites: Vec<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        mode: Mode::Full,
        out: None,
        suites: Vec::new(),
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.mode = Mode::Quick,
            "--smoke" => args.mode = Mode::Smoke,
            "--full" => args.mode = Mode::Full,
            "--seed" => {
                let value = it.next().ok_or("--seed requires a value")?;
                args.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out requires a path")?);
            }
            "--suite" => {
                let value = it.next().ok_or("--suite requires a name")?;
                if !suites::suite_names().contains(&value.as_str()) {
                    return Err(format!(
                        "unknown suite: {value} (known: {})",
                        suites::suite_names().join(", ")
                    ));
                }
                args.suites.push(value);
            }
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench [--quick|--smoke] [--seed N] [--suite NAME]... \
                     [--out PATH] [--list]"
                );
                std::process::exit(0);
            }
            "--bench" => {} // forwarded by `cargo bench`; ignore
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench: {message}");
            std::process::exit(2);
        }
    };
    if args.list {
        for name in suites::suite_names() {
            println!("{name}");
        }
        return;
    }

    let ctx = BenchContext {
        seed: args.seed,
        config: args.mode.config(),
    };
    let selected: Vec<String> = if args.suites.is_empty() {
        suites::suite_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.suites.clone()
    };

    let mut reports = Vec::new();
    for name in &selected {
        eprintln!(
            "bench: running suite {name} (seed {}, {} mode)",
            args.seed,
            args.mode.name()
        );
        let suite_reports = suites::run_suite(&ctx, name).expect("suite names were validated");
        reports.extend(suite_reports);
    }

    print!("{}", render_table(&reports));

    if let Some(path) = &args.out {
        let mut text = render_json_lines(args.seed, args.mode.name(), &reports);
        if selected.iter().any(|s| s == "overhead") {
            // The §4.5 simulated link charges ride along with the wall-time
            // trajectory so CI can fence the coordination-cost envelope
            // (mean per-message latency ~0.5 ms) without re-running repro.
            let table = suites::overhead_link_summary(args.seed, args.mode.config().workload_scale);
            let (messages, bytes): (u64, u64) = table.rows.iter().fold((0, 0), |(m, b), row| {
                (
                    m + row.report.total_messages(),
                    b + row.report.total_bytes(),
                )
            });
            text.push_str(&format!(
                concat!(
                    "{{\"schema\":\"apparate-bench/overhead-link/v1\",\"seed\":{},",
                    "\"scenarios\":{},\"messages\":{},\"bytes\":{},",
                    "\"mean_link_latency_ms\":{:.4}}}\n"
                ),
                args.seed,
                table.rows.len(),
                messages,
                bytes,
                table.mean_latency_ms(),
            ));
        }
        if let Err(error) = std::fs::write(path, text) {
            eprintln!("bench: failed writing {path}: {error}");
            std::process::exit(1);
        }
        println!("\nwrote {} benchmark reports to {path}", reports.len());
    }
}
