//! `bench` — run the benchmark suites and write the consolidated
//! `BENCH_*.json` perf-trajectory file.
//!
//! ```text
//! bench [--quick|--smoke] [--seed N] [--suite NAME]... [--out PATH] [--list]
//!       [--baseline PATH] [--max-regression PCT] [--summary-out PATH]
//! ```
//!
//! Modes: default (full) takes tight samples for local perf work; `--quick`
//! is the CI mode (same fixtures, fewer samples); `--smoke` shrinks fixtures
//! too and exists for the structural determinism test. `--suite` limits the
//! run to the named suites (repeatable); `--out` writes the JSON-lines report
//! (schema header + one line per benchmark).
//!
//! `--baseline` turns the run into CI's regression gate: after measuring, the
//! per-suite medians are compared against the committed `BENCH_*.json` and
//! the process exits 1 when a required suite (see
//! [`apparate_bench::REQUIRED_SUITES`]) inflated more than `--max-regression`
//! percent (default 25). `--summary-out` additionally writes the before/after
//! table as markdown (for `$GITHUB_STEP_SUMMARY`).

use apparate_bench::{
    compare, parse_baseline, render_json_lines, render_table, suites, BenchConfig, BenchContext,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Full,
    Quick,
    Smoke,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Quick => "quick",
            Mode::Smoke => "smoke",
        }
    }

    fn config(self) -> BenchConfig {
        match self {
            Mode::Full => BenchConfig::full(),
            Mode::Quick => BenchConfig::quick(),
            Mode::Smoke => BenchConfig::smoke(),
        }
    }
}

struct Args {
    seed: u64,
    mode: Mode,
    out: Option<String>,
    suites: Vec<String>,
    list: bool,
    baseline: Option<String>,
    max_regression_pct: f64,
    summary_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        mode: Mode::Full,
        out: None,
        suites: Vec::new(),
        list: false,
        baseline: None,
        max_regression_pct: 25.0,
        summary_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.mode = Mode::Quick,
            "--smoke" => args.mode = Mode::Smoke,
            "--full" => args.mode = Mode::Full,
            "--seed" => {
                let value = it.next().ok_or("--seed requires a value")?;
                args.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out requires a path")?);
            }
            "--suite" => {
                let value = it.next().ok_or("--suite requires a name")?;
                if !suites::suite_names().contains(&value.as_str()) {
                    return Err(format!(
                        "unknown suite: {value} (known: {})",
                        suites::suite_names().join(", ")
                    ));
                }
                args.suites.push(value);
            }
            "--list" => args.list = true,
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline requires a path")?);
            }
            "--max-regression" => {
                let value = it.next().ok_or("--max-regression requires a percentage")?;
                args.max_regression_pct = value
                    .parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && *p > 0.0)
                    .ok_or_else(|| format!("invalid --max-regression: {value}"))?;
            }
            "--summary-out" => {
                args.summary_out = Some(it.next().ok_or("--summary-out requires a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--quick|--smoke] [--seed N] [--suite NAME]... \
                     [--out PATH] [--list] [--baseline PATH] [--max-regression PCT] \
                     [--summary-out PATH]"
                );
                std::process::exit(0);
            }
            "--bench" => {} // forwarded by `cargo bench`; ignore
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench: {message}");
            std::process::exit(2);
        }
    };
    if args.list {
        for name in suites::suite_names() {
            println!("{name}");
        }
        return;
    }

    let ctx = BenchContext {
        seed: args.seed,
        config: args.mode.config(),
    };
    let selected: Vec<String> = if args.suites.is_empty() {
        suites::suite_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.suites.clone()
    };

    let mut reports = Vec::new();
    for name in &selected {
        eprintln!(
            "bench: running suite {name} (seed {}, {} mode)",
            args.seed,
            args.mode.name()
        );
        let suite_reports = suites::run_suite(&ctx, name).expect("suite names were validated");
        reports.extend(suite_reports);
    }

    print!("{}", render_table(&reports));

    if let Some(path) = &args.out {
        let mut text = render_json_lines(args.seed, args.mode.name(), &reports);
        if selected.iter().any(|s| s == "overhead") {
            // The §4.5 simulated link charges ride along with the wall-time
            // trajectory so CI can fence the coordination-cost envelope
            // (mean per-message latency ~0.5 ms) without re-running repro.
            let table = suites::overhead_link_summary(args.seed, args.mode.config().workload_scale);
            let (messages, bytes): (u64, u64) = table.rows.iter().fold((0, 0), |(m, b), row| {
                (
                    m + row.report.total_messages(),
                    b + row.report.total_bytes(),
                )
            });
            text.push_str(&format!(
                concat!(
                    "{{\"schema\":\"apparate-bench/overhead-link/v1\",\"seed\":{},",
                    "\"scenarios\":{},\"messages\":{},\"bytes\":{},",
                    "\"mean_link_latency_ms\":{:.4}}}\n"
                ),
                args.seed,
                table.rows.len(),
                messages,
                bytes,
                table.mean_latency_ms(),
            ));
        }
        if let Err(error) = std::fs::write(path, text) {
            eprintln!("bench: failed writing {path}: {error}");
            std::process::exit(1);
        }
        println!("\nwrote {} benchmark reports to {path}", reports.len());
    }

    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("bench: failed reading baseline {path}: {error}");
                std::process::exit(1);
            }
        };
        let baseline = match parse_baseline(&text) {
            Ok(baseline) => baseline,
            Err(error) => {
                eprintln!("bench: baseline {path}: {error}");
                std::process::exit(1);
            }
        };
        let verdict = compare::compare(&baseline, &reports, args.max_regression_pct);
        println!("\nregression gate vs {path}:");
        print!("{}", verdict.render_text());
        if let Some(summary_path) = &args.summary_out {
            if let Err(error) = std::fs::write(summary_path, verdict.render_markdown()) {
                eprintln!("bench: failed writing {summary_path}: {error}");
                std::process::exit(1);
            }
        }
        if !verdict.passed() {
            for row in verdict.regressions() {
                if row.change_pct() > args.max_regression_pct {
                    eprintln!(
                        "bench: REGRESSION in required suite {}: median {:.3} -> {:.3} us ({:+.1}% > {:.0}%)",
                        row.suite,
                        row.baseline_median_us,
                        row.current_median_us,
                        row.change_pct(),
                        args.max_regression_pct,
                    );
                } else if let Some((benchmark, pct)) = &row.worst_benchmark {
                    eprintln!(
                        "bench: REGRESSION in required suite {}: benchmark {benchmark} inflated {pct:+.1}% (> {:.0}%)",
                        row.suite,
                        verdict.benchmark_tolerance_pct(),
                    );
                }
            }
            for error in verdict.gate_errors() {
                eprintln!("bench: {error}");
            }
            std::process::exit(1);
        }
        println!(
            "gate passed: no required suite inflated more than {:.0}%",
            args.max_regression_pct
        );
        for row in verdict.improvements() {
            println!(
                "warning: required suite {} now runs {:.1}% below the committed baseline; \
                 regenerate BENCH_apparate.json so the gate re-anchors",
                row.suite,
                -row.change_pct(),
            );
        }
    }
}
