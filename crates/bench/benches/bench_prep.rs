//! Scenario preparation: feasible-site enumeration and ramp deployment.
//!
//! Run via `cargo bench -p apparate-bench --bench bench_prep -- --quick`
//! (`--smoke`, `--seed N` also accepted); the suite itself lives in
//! `apparate_bench::suites`, shared with the `bench` binary.

fn main() {
    apparate_bench::bench_main("prep");
}
