//! Ramp adjustment (Algorithm 2): utility accounting and adjust rounds.
//!
//! Run via `cargo bench -p apparate-bench --bench bench_adaptation -- --quick`
//! (`--smoke`, `--seed N` also accepted); the suite itself lives in
//! `apparate_bench::suites`, shared with the `bench` binary.

fn main() {
    apparate_bench::bench_main("adaptation");
}
