//! Serving platform: batching simulator runs and arrival-trace generation.
//!
//! Run via `cargo bench -p apparate-bench --bench bench_serving -- --quick`
//! (`--smoke`, `--seed N` also accepted); the suite itself lives in
//! `apparate_bench::suites`, shared with the `bench` binary.

fn main() {
    apparate_bench::bench_main("serving");
}
