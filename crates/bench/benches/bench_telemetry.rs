//! Telemetry hot paths: the disabled (no-op) sink, the recording sink, and
//! the JSON-lines exporters.
//!
//! Run via `cargo bench -p apparate-bench --bench bench_telemetry -- --quick`
//! (`--smoke`, `--seed N` also accepted); the suite itself lives in
//! `apparate_bench::suites`, shared with the `bench` binary.

fn main() {
    apparate_bench::bench_main("telemetry");
}
