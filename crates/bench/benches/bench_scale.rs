//! Multi-replica scale-out: fleet runs at 1/2/4/8 replicas (one warm-started
//! controller per replica over its own charged link) plus the dispatcher's
//! sharding micro-benchmark.
//!
//! Run via `cargo bench -p apparate-bench --bench bench_scale -- --quick`
//! (`--smoke`, `--seed N` also accepted); the suite itself lives in
//! `apparate_bench::suites`, shared with the `bench` binary.

fn main() {
    apparate_bench::bench_main("scale");
}
