//! Placeholder bench harness (`harness = false`): criterion is pending
//! registry access — see ROADMAP.md "Open items".

fn main() {
    println!("bench_generative: criterion benches pending; see ROADMAP.md");
}
