//! Threshold tuning (Algorithm 1): greedy and grid search over recorded windows.
//!
//! Run via `cargo bench -p apparate-bench --bench bench_tuning -- --quick`
//! (`--smoke`, `--seed N` also accepted); the suite itself lives in
//! `apparate_bench::suites`, shared with the `bench` binary.

fn main() {
    apparate_bench::bench_main("tuning");
}
