//! End-to-end repro quick-run scenarios.
//!
//! Run via `cargo bench -p apparate-bench --bench bench_e2e -- --quick`
//! (`--smoke`, `--seed N` also accepted); the suite itself lives in
//! `apparate_bench::suites`, shared with the `bench` binary.

fn main() {
    apparate_bench::bench_main("e2e");
}
