//! GPU ↔ controller coordination path: the feedback link and the
//! controller-in-the-loop serving pass (§4.5).
//!
//! Run via `cargo bench -p apparate-bench --bench bench_overhead -- --quick`
//! (`--smoke`, `--seed N` also accepted); the suite itself lives in
//! `apparate_bench::suites`, shared with the `bench` binary.

fn main() {
    apparate_bench::bench_main("overhead");
}
