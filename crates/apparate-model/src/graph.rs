//! The model computation graph and its structural analyses.
//!
//! [`ModelGraph`] is a DAG of [`Layer`]s. The analysis Apparate needs from it
//! (§3.1) is the set of *feasible ramp sites*: positions where the operator is
//! a **cut vertex**, i.e. no data-flow edge starts before the position and
//! re-enters the computation after it. Placing a ramp at such a position
//! guarantees the ramp sees *all* information the original model has produced
//! up to that point (Figure 7: between ResNet blocks / BERT encoders, at every
//! layer of VGG, never inside a residual block).

use crate::layer::{Layer, LayerId, LayerKind, Stage};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Errors raised when constructing or validating a model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a layer id that does not exist.
    DanglingEdge {
        /// The offending edge.
        edge: (LayerId, LayerId),
    },
    /// The graph contains a cycle and therefore is not a valid model.
    Cyclic,
    /// The graph is empty.
    Empty,
    /// Duplicate layer id.
    DuplicateLayer(LayerId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DanglingEdge { edge } => {
                write!(
                    f,
                    "edge {} -> {} references a missing layer",
                    edge.0, edge.1
                )
            }
            GraphError::Cyclic => write!(f, "model graph contains a cycle"),
            GraphError::Empty => write!(f, "model graph has no layers"),
            GraphError::DuplicateLayer(id) => write!(f, "duplicate layer id {id}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated DAG of model layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelGraph {
    layers: Vec<Layer>,
    edges: Vec<(LayerId, LayerId)>,
    /// Topological order: `topo[i]` is the layer id at topological position `i`.
    topo: Vec<LayerId>,
    /// Inverse of `topo`: `position[layer.0]` is the topological position.
    position: Vec<usize>,
}

impl ModelGraph {
    /// Build and validate a graph from layers and directed edges.
    pub fn new(
        layers: Vec<Layer>,
        edges: Vec<(LayerId, LayerId)>,
    ) -> Result<ModelGraph, GraphError> {
        if layers.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = layers.len();
        // Layer ids must be unique and dense in [0, n).
        let mut seen = vec![false; n];
        for layer in &layers {
            let idx = layer.id.0;
            if idx >= n || seen[idx] {
                return Err(GraphError::DuplicateLayer(layer.id));
            }
            seen[idx] = true;
        }
        for &(a, b) in &edges {
            if a.0 >= n || b.0 >= n {
                return Err(GraphError::DanglingEdge { edge: (a, b) });
            }
        }
        // Kahn's algorithm for topological order (and cycle detection).
        let mut indegree = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a.0].push(b.0);
            indegree[b.0] += 1;
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            topo.push(LayerId(u));
            for &v in &adj[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::Cyclic);
        }
        let mut position = vec![0usize; n];
        for (pos, id) in topo.iter().enumerate() {
            position[id.0] = pos;
        }
        // Sort layers by id so that indexing by id is O(1).
        let mut layers = layers;
        layers.sort_by_key(|l| l.id.0);
        Ok(ModelGraph {
            layers,
            edges,
            topo,
            position,
        })
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the graph has no layers (never true for a validated graph).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// All layers, indexed by id.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Look up a layer by id.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0]
    }

    /// All edges.
    pub fn edges(&self) -> &[(LayerId, LayerId)] {
        &self.edges
    }

    /// Layer ids in topological order.
    pub fn topo_order(&self) -> &[LayerId] {
        &self.topo
    }

    /// Topological position of a layer.
    pub fn topo_position(&self, id: LayerId) -> usize {
        self.position[id.0]
    }

    /// The layer at a given topological position.
    pub fn layer_at_position(&self, pos: usize) -> &Layer {
        self.layer(self.topo[pos])
    }

    /// Total parameter count of the model.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// The final layer in topological order (the model's output head).
    pub fn output_layer(&self) -> &Layer {
        self.layer(*self.topo.last().expect("validated graph is non-empty"))
    }

    /// Cut-vertex analysis: returns, for every topological position `i`,
    /// whether the layer at position `i` is a cut vertex — i.e. whether **no**
    /// edge `(a, b)` satisfies `pos(a) < i < pos(b)`.
    ///
    /// A ramp attached to the output of a cut vertex consumes every data flow
    /// the model has produced so far, which is the paper's feasibility rule.
    pub fn cut_vertex_mask(&self) -> Vec<bool> {
        let n = self.layers.len();
        // For each position i, find the furthest position reachable by an edge
        // that starts at or before i. Position i is a cut vertex iff no edge
        // starting strictly before i ends strictly after i.
        let mut max_end_from_before = vec![0usize; n + 1];
        // max_end_from_before[i] = max over edges (a,b) with pos(a) < i of pos(b).
        let mut per_start: Vec<usize> = vec![0; n];
        for &(a, b) in &self.edges {
            let pa = self.position[a.0];
            let pb = self.position[b.0];
            per_start[pa] = per_start[pa].max(pb);
        }
        let mut running = 0usize;
        for i in 0..n {
            max_end_from_before[i + 1] = running.max(per_start[i]);
            running = max_end_from_before[i + 1];
        }
        (0..n).map(|i| max_end_from_before[i] <= i).collect()
    }

    /// Layer ids (in topological order) that are cut vertices.
    pub fn cut_vertices(&self) -> Vec<LayerId> {
        self.cut_vertex_mask()
            .iter()
            .enumerate()
            .filter(|&(_pos, &is_cut)| is_cut)
            .map(|(pos, &_is_cut)| self.topo[pos])
            .collect()
    }

    /// Feasible ramp sites: cut vertices, excluding the output head itself
    /// (a ramp there would be the model's own exit) and optionally restricted
    /// to a pipeline stage (decoder-only for generative models).
    pub fn feasible_ramp_sites(&self, stage: Option<Stage>) -> Vec<LayerId> {
        let last_pos = self.layers.len() - 1;
        self.cut_vertex_mask()
            .iter()
            .enumerate()
            .filter_map(|(pos, &is_cut)| {
                if !is_cut || pos == last_pos {
                    return None;
                }
                let id = self.topo[pos];
                let layer = self.layer(id);
                if let Some(required) = stage {
                    if layer.stage != required {
                        return None;
                    }
                }
                // Never place a ramp at position 0 (before any computation).
                (pos > 0).then_some(id)
            })
            .collect()
    }

    /// Fraction of layers that are feasible ramp sites, as reported in §3.1
    /// ("9.2–68.4 % of layers having ramps for the models in our corpus").
    pub fn ramp_coverage(&self) -> f64 {
        self.feasible_ramp_sites(None).len() as f64 / self.layers.len() as f64
    }

    /// Ids of layers whose kind matches `kind`.
    pub fn layers_of_kind(&self, kind: LayerKind) -> Vec<LayerId> {
        self.layers
            .iter()
            .filter(|l| l.kind == kind)
            .map(|l| l.id)
            .collect()
    }

    /// Number of distinct architectural blocks.
    pub fn num_blocks(&self) -> u32 {
        self.layers
            .iter()
            .map(|l| l.block)
            .max()
            .map_or(0, |b| b + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    fn chain(n: usize) -> ModelGraph {
        let layers = (0..n)
            .map(|i| Layer::new(i, format!("l{i}"), LayerKind::Conv, 10, 16, i as u32))
            .collect();
        let edges = (0..n - 1).map(|i| (LayerId(i), LayerId(i + 1))).collect();
        ModelGraph::new(layers, edges).expect("valid chain")
    }

    /// A graph with a residual skip: 0 -> 1 -> 2 -> 3, plus 0 -> 2 and 2 -> 4 -> 5, 3 -> 5? Keep it
    /// simple: 0->1->2, 0->2 (skip), 2->3.
    fn residual() -> ModelGraph {
        let layers = (0..4)
            .map(|i| Layer::new(i, format!("l{i}"), LayerKind::Conv, 10, 16, 0))
            .collect();
        let edges = vec![
            (LayerId(0), LayerId(1)),
            (LayerId(1), LayerId(2)),
            (LayerId(0), LayerId(2)),
            (LayerId(2), LayerId(3)),
        ];
        ModelGraph::new(layers, edges).expect("valid residual graph")
    }

    #[test]
    fn chain_has_all_cut_vertices() {
        let g = chain(5);
        assert_eq!(g.cut_vertices().len(), 5);
        // Feasible ramp sites exclude position 0 and the output layer.
        assert_eq!(g.feasible_ramp_sites(None).len(), 3);
    }

    #[test]
    fn residual_skip_blocks_internal_ramp() {
        let g = residual();
        let mask = g.cut_vertex_mask();
        // Layer 1 sits "inside" the skip 0 -> 2, so it is not a cut vertex.
        assert!(mask[g.topo_position(LayerId(0))]);
        assert!(!mask[g.topo_position(LayerId(1))]);
        assert!(mask[g.topo_position(LayerId(2))]);
        assert!(mask[g.topo_position(LayerId(3))]);
    }

    #[test]
    fn cycle_is_rejected() {
        let layers = (0..2)
            .map(|i| Layer::new(i, format!("l{i}"), LayerKind::Conv, 1, 4, 0))
            .collect();
        let edges = vec![(LayerId(0), LayerId(1)), (LayerId(1), LayerId(0))];
        assert_eq!(
            ModelGraph::new(layers, edges).unwrap_err(),
            GraphError::Cyclic
        );
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let layers = vec![Layer::new(0, "l0", LayerKind::Conv, 1, 4, 0)];
        let edges = vec![(LayerId(0), LayerId(3))];
        assert!(matches!(
            ModelGraph::new(layers, edges).unwrap_err(),
            GraphError::DanglingEdge { .. }
        ));
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(
            ModelGraph::new(Vec::new(), Vec::new()).unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn duplicate_layer_rejected() {
        let layers = vec![
            Layer::new(0, "a", LayerKind::Conv, 1, 4, 0),
            Layer::new(0, "b", LayerKind::Conv, 1, 4, 0),
        ];
        assert!(matches!(
            ModelGraph::new(layers, vec![]).unwrap_err(),
            GraphError::DuplicateLayer(_)
        ));
    }

    #[test]
    fn topo_positions_are_consistent() {
        let g = residual();
        for pos in 0..g.len() {
            let id = g.topo_order()[pos];
            assert_eq!(g.topo_position(id), pos);
            assert_eq!(g.layer_at_position(pos).id, id);
        }
    }

    #[test]
    fn totals_and_blocks() {
        let g = chain(4);
        assert_eq!(g.total_params(), 40);
        assert_eq!(g.num_blocks(), 4);
        assert_eq!(g.output_layer().id, LayerId(3));
        assert_eq!(g.layers_of_kind(LayerKind::Conv).len(), 4);
        assert!(g.ramp_coverage() > 0.0);
    }
}
