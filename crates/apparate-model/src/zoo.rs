//! The model zoo: synthetic reconstructions of every model in the paper's
//! corpus (§4.1).
//!
//! Each builder produces a [`ZooModel`]: a layer graph whose *structure*
//! mirrors the real architecture (residual blocks, encoder blocks, chained
//! convolutions), a latency model calibrated so batch-1 totals match Table 5,
//! and a descriptor carrying serving metadata. The graphs are what Apparate's
//! ramp-placement analysis (§3.1) operates on; their cut-vertex structure —
//! ramps between blocks but never inside them, everywhere for VGG — emerges
//! from the skip edges rather than being hard-coded.

use crate::graph::ModelGraph;
use crate::latency::{synthesize_latency, ComputeShape, ModelLatency};
use crate::layer::{Layer, LayerId, LayerKind, Stage};
use crate::meta::{ModelDescriptor, ModelFamily, TaskKind};
use serde::{Deserialize, Serialize};

/// A fully assembled zoo model: graph + latency + metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooModel {
    /// Static metadata.
    pub descriptor: ModelDescriptor,
    /// The computation graph.
    pub graph: ModelGraph,
    /// Calibrated per-layer latency model.
    pub latency: ModelLatency,
}

impl ZooModel {
    /// Convenience: total batch-1 latency in milliseconds.
    pub fn bs1_latency_ms(&self) -> f64 {
        self.latency.total_us(1) / 1_000.0
    }

    /// GPU memory footprint of the weights in bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.descriptor.weight_bytes()
    }
}

/// Internal builder that accumulates layers/edges sequentially and supports
/// residual skip connections.
struct GraphBuilder {
    layers: Vec<Layer>,
    edges: Vec<(LayerId, LayerId)>,
    last: Option<LayerId>,
}

impl GraphBuilder {
    fn new() -> Self {
        GraphBuilder {
            layers: Vec::new(),
            edges: Vec::new(),
            last: None,
        }
    }

    /// Append a layer connected to the previous one; returns its id.
    fn push(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        params: u64,
        width: u32,
        block: u32,
        stage: Stage,
    ) -> LayerId {
        let id = LayerId(self.layers.len());
        self.layers
            .push(Layer::new(id.0, name, kind, params, width, block).with_stage(stage));
        if let Some(prev) = self.last {
            self.edges.push((prev, id));
        }
        self.last = Some(id);
        id
    }

    /// Add an explicit (skip) edge.
    fn connect(&mut self, from: LayerId, to: LayerId) {
        self.edges.push((from, to));
    }

    fn build(self) -> ModelGraph {
        ModelGraph::new(self.layers, self.edges).expect("zoo graphs are valid by construction")
    }
}

fn finish(
    graph: ModelGraph,
    descriptor: ModelDescriptor,
    shape: ComputeShape,
    fixed_share: f64,
    batch_alpha: f64,
) -> ZooModel {
    let latency = synthesize_latency(
        &graph,
        descriptor.bs1_latency_us(),
        shape,
        fixed_share,
        batch_alpha,
    );
    ZooModel {
        descriptor,
        graph,
        latency,
    }
}

// ---------------------------------------------------------------------------
// CV: ResNet family
// ---------------------------------------------------------------------------

/// Per-stage residual block counts for a ResNet variant.
fn resnet_stage_blocks(depth: u32) -> (&'static [usize], bool) {
    // (blocks per stage, bottleneck?)
    match depth {
        18 => (&[2, 2, 2, 2], false),
        50 => (&[3, 4, 6, 3], true),
        101 => (&[3, 4, 23, 3], true),
        other => panic!("unsupported ResNet depth {other}"),
    }
}

/// Build a ResNet-{18,50,101} model.
pub fn resnet(depth: u32) -> ZooModel {
    let (stages, bottleneck) = resnet_stage_blocks(depth);
    let (params_m, bs1_ms) = match depth {
        18 => (11.7, 6.5),
        50 => (25.6, 16.4),
        101 => (44.5, 33.3),
        _ => unreachable!(),
    };
    let mut b = GraphBuilder::new();
    let mut block_idx = 0u32;
    b.push(
        "stem.conv",
        LayerKind::Conv,
        9_408,
        64,
        block_idx,
        Stage::Main,
    );
    b.push(
        "stem.norm",
        LayerKind::Norm,
        128,
        64,
        block_idx,
        Stage::Main,
    );
    b.push(
        "stem.relu",
        LayerKind::Activation,
        0,
        64,
        block_idx,
        Stage::Main,
    );
    b.push(
        "stem.pool",
        LayerKind::Pooling,
        0,
        64,
        block_idx,
        Stage::Main,
    );
    let mut width = 64u32;
    for (stage_idx, &count) in stages.iter().enumerate() {
        width = 64 << stage_idx.min(3);
        for blk in 0..count {
            block_idx += 1;
            let prefix = format!("stage{}.block{}", stage_idx + 1, blk);
            // Input to the residual block: output of the last layer so far.
            let block_input = b.last.expect("stem exists");
            let convs = if bottleneck { 3 } else { 2 };
            for c in 0..convs {
                b.push(
                    format!("{prefix}.conv{c}"),
                    LayerKind::Conv,
                    (width as u64) * (width as u64) / 8,
                    width,
                    block_idx,
                    Stage::Main,
                );
                b.push(
                    format!("{prefix}.norm{c}"),
                    LayerKind::Norm,
                    width as u64 * 2,
                    width,
                    block_idx,
                    Stage::Main,
                );
                if c + 1 < convs {
                    b.push(
                        format!("{prefix}.relu{c}"),
                        LayerKind::Activation,
                        0,
                        width,
                        block_idx,
                        Stage::Main,
                    );
                }
            }
            let add = b.push(
                format!("{prefix}.add"),
                LayerKind::Add,
                0,
                width,
                block_idx,
                Stage::Main,
            );
            // Residual skip connection: block input feeds the add directly, which
            // is exactly what makes intra-block layers non-cut-vertices.
            b.connect(block_input, add);
            b.push(
                format!("{prefix}.relu_out"),
                LayerKind::Activation,
                0,
                width,
                block_idx,
                Stage::Main,
            );
        }
    }
    block_idx += 1;
    b.push(
        "head.pool",
        LayerKind::Pooling,
        0,
        width,
        block_idx,
        Stage::Main,
    );
    b.push(
        "head.fc",
        LayerKind::FullyConnected,
        width as u64 * 1000,
        1000,
        block_idx,
        Stage::Main,
    );
    b.push(
        "head.softmax",
        LayerKind::Softmax,
        0,
        1000,
        block_idx,
        Stage::Main,
    );
    let graph = b.build();
    let num_blocks: u32 = stages.iter().map(|&c| c as u32).sum();
    let descriptor = ModelDescriptor {
        name: format!("resnet{depth}"),
        family: ModelFamily::ResNet,
        task: TaskKind::Classification,
        params_millions: params_m,
        bs1_latency_ms: bs1_ms,
        default_slo_ms: bs1_ms * 2.0,
        num_classes: 1000,
        num_blocks,
        overparameterization: 0.90,
        quantized: false,
        bytes_per_param: 4,
    };
    finish(
        graph,
        descriptor,
        ComputeShape::FrontLoaded { skew: 6.0 },
        0.25,
        0.72,
    )
}

// ---------------------------------------------------------------------------
// CV: VGG family
// ---------------------------------------------------------------------------

/// Convolution-per-stage layout for a VGG variant.
fn vgg_stage_convs(depth: u32) -> &'static [usize] {
    match depth {
        11 => &[1, 1, 2, 2, 2],
        13 => &[2, 2, 2, 2, 2],
        16 => &[2, 2, 3, 3, 3],
        other => panic!("unsupported VGG depth {other}"),
    }
}

/// Build a VGG-{11,13,16} model. VGG is a pure chain, so every layer is a
/// feasible ramp site (Figure 7b).
pub fn vgg(depth: u32) -> ZooModel {
    let stages = vgg_stage_convs(depth);
    let (params_m, bs1_ms) = match depth {
        11 => (132.9, 3.3),
        13 => (133.0, 3.8),
        16 => (138.4, 4.5),
        _ => unreachable!(),
    };
    let mut b = GraphBuilder::new();
    let mut block = 0u32;
    for (stage_idx, &convs) in stages.iter().enumerate() {
        let width: u32 = (64 << stage_idx).min(512);
        for c in 0..convs {
            b.push(
                format!("stage{}.conv{}", stage_idx + 1, c),
                LayerKind::Conv,
                (width as u64) * (width as u64) * 9 / 16,
                width,
                block,
                Stage::Main,
            );
            b.push(
                format!("stage{}.relu{}", stage_idx + 1, c),
                LayerKind::Activation,
                0,
                width,
                block,
                Stage::Main,
            );
        }
        b.push(
            format!("stage{}.pool", stage_idx + 1),
            LayerKind::Pooling,
            0,
            width,
            block,
            Stage::Main,
        );
        block += 1;
    }
    b.push(
        "head.fc1",
        LayerKind::FullyConnected,
        102_764_544,
        4096,
        block,
        Stage::Main,
    );
    b.push(
        "head.relu1",
        LayerKind::Activation,
        0,
        4096,
        block,
        Stage::Main,
    );
    b.push(
        "head.fc2",
        LayerKind::FullyConnected,
        16_781_312,
        4096,
        block,
        Stage::Main,
    );
    b.push(
        "head.relu2",
        LayerKind::Activation,
        0,
        4096,
        block,
        Stage::Main,
    );
    b.push(
        "head.fc3",
        LayerKind::FullyConnected,
        4_097_000,
        1000,
        block,
        Stage::Main,
    );
    b.push(
        "head.softmax",
        LayerKind::Softmax,
        0,
        1000,
        block,
        Stage::Main,
    );
    let graph = b.build();
    let descriptor = ModelDescriptor {
        name: format!("vgg{depth}"),
        family: ModelFamily::Vgg,
        task: TaskKind::Classification,
        params_millions: params_m,
        bs1_latency_ms: bs1_ms,
        // Table 5 floors the small VGG SLOs at 10 ms.
        default_slo_ms: (bs1_ms * 2.0).max(10.0),
        num_classes: 1000,
        num_blocks: stages.len() as u32,
        overparameterization: 0.88,
        quantized: false,
        bytes_per_param: 4,
    };
    finish(
        graph,
        descriptor,
        ComputeShape::FrontLoaded { skew: 5.0 },
        0.25,
        0.72,
    )
}

// ---------------------------------------------------------------------------
// NLP: transformer encoder blocks (BERT family, GPT2)
// ---------------------------------------------------------------------------

/// Append one transformer block (self-attention + FFN, both with residuals).
/// Returns nothing; the builder's `last` ends at the block's output.
fn push_transformer_block(
    b: &mut GraphBuilder,
    prefix: &str,
    hidden: u32,
    block: u32,
    stage: Stage,
    with_cross_attention: bool,
) {
    let attn_params = 4 * (hidden as u64) * (hidden as u64);
    let ffn_params = 8 * (hidden as u64) * (hidden as u64);
    let block_input = b.last.expect("embedding exists before blocks");
    b.push(
        format!("{prefix}.attn"),
        LayerKind::Attention,
        attn_params,
        hidden,
        block,
        stage,
    );
    let add1 = b.push(
        format!("{prefix}.attn_add"),
        LayerKind::Add,
        0,
        hidden,
        block,
        stage,
    );
    b.connect(block_input, add1);
    b.push(
        format!("{prefix}.attn_norm"),
        LayerKind::Norm,
        hidden as u64 * 2,
        hidden,
        block,
        stage,
    );
    let mut residual_src = b.last.expect("norm exists");
    if with_cross_attention {
        b.push(
            format!("{prefix}.cross_attn"),
            LayerKind::Attention,
            attn_params,
            hidden,
            block,
            stage,
        );
        let addc = b.push(
            format!("{prefix}.cross_add"),
            LayerKind::Add,
            0,
            hidden,
            block,
            stage,
        );
        b.connect(residual_src, addc);
        b.push(
            format!("{prefix}.cross_norm"),
            LayerKind::Norm,
            hidden as u64 * 2,
            hidden,
            block,
            stage,
        );
        residual_src = b.last.expect("cross norm exists");
    }
    b.push(
        format!("{prefix}.ffn"),
        LayerKind::FeedForward,
        ffn_params,
        hidden,
        block,
        stage,
    );
    let add2 = b.push(
        format!("{prefix}.ffn_add"),
        LayerKind::Add,
        0,
        hidden,
        block,
        stage,
    );
    b.connect(residual_src, add2);
    b.push(
        format!("{prefix}.ffn_norm"),
        LayerKind::Norm,
        hidden as u64 * 2,
        hidden,
        block,
        stage,
    );
}

/// Specification of a BERT-family classification model.
struct EncoderSpec {
    name: &'static str,
    blocks: u32,
    hidden: u32,
    params_m: f64,
    bs1_ms: f64,
    overparam: f64,
}

fn build_encoder_classifier(spec: EncoderSpec, quantized: bool) -> ZooModel {
    let mut b = GraphBuilder::new();
    b.push(
        "embeddings",
        LayerKind::Embedding,
        23_000_000,
        spec.hidden,
        0,
        Stage::Main,
    );
    for blk in 0..spec.blocks {
        push_transformer_block(
            &mut b,
            &format!("encoder{blk}"),
            spec.hidden,
            blk + 1,
            Stage::Main,
            false,
        );
    }
    let head_block = spec.blocks + 1;
    b.push(
        "pooler",
        LayerKind::Pooler,
        (spec.hidden as u64) * (spec.hidden as u64),
        spec.hidden,
        head_block,
        Stage::Main,
    );
    b.push(
        "classifier",
        LayerKind::FullyConnected,
        spec.hidden as u64 * 2,
        2,
        head_block,
        Stage::Main,
    );
    b.push("softmax", LayerKind::Softmax, 0, 2, head_block, Stage::Main);
    let graph = b.build();
    let speedup = if quantized { 0.62 } else { 1.0 };
    let descriptor = ModelDescriptor {
        name: if quantized {
            format!("{}-int8", spec.name)
        } else {
            spec.name.to_string()
        },
        family: ModelFamily::Bert,
        task: TaskKind::Classification,
        params_millions: spec.params_m,
        bs1_latency_ms: spec.bs1_ms * speedup,
        default_slo_ms: spec.bs1_ms * 2.0 * speedup,
        num_classes: 2,
        num_blocks: spec.blocks,
        // Quantisation removes some of the overparameterisation EEs exploit (§4.2).
        overparameterization: if quantized {
            spec.overparam * 0.85
        } else {
            spec.overparam
        },
        quantized,
        bytes_per_param: if quantized { 1 } else { 4 },
    };
    finish(graph, descriptor, ComputeShape::Uniform, 0.20, 0.85)
}

/// BERT-base (12 encoder blocks, hidden 768).
pub fn bert_base() -> ZooModel {
    build_encoder_classifier(
        EncoderSpec {
            name: "bert-base",
            blocks: 12,
            hidden: 768,
            params_m: 110.0,
            bs1_ms: 29.4,
            overparam: 0.62,
        },
        false,
    )
}

/// BERT-large (24 encoder blocks, hidden 1024).
pub fn bert_large() -> ZooModel {
    build_encoder_classifier(
        EncoderSpec {
            name: "bert-large",
            blocks: 24,
            hidden: 1024,
            params_m: 345.0,
            bs1_ms: 63.2,
            overparam: 0.65,
        },
        false,
    )
}

/// DistilBERT (6 encoder blocks, hidden 768) — a distillation-compressed BERT.
pub fn distilbert() -> ZooModel {
    build_encoder_classifier(
        EncoderSpec {
            name: "distilbert-base",
            blocks: 6,
            hidden: 768,
            params_m: 66.0,
            bs1_ms: 15.5,
            overparam: 0.55,
        },
        false,
    )
}

/// Post-training Int8-quantised BERT-base (§4.2).
pub fn bert_base_int8() -> ZooModel {
    build_encoder_classifier(
        EncoderSpec {
            name: "bert-base",
            blocks: 12,
            hidden: 768,
            params_m: 110.0,
            bs1_ms: 29.4,
            overparam: 0.62,
        },
        true,
    )
}

/// Post-training Int8-quantised BERT-large (§4.2).
pub fn bert_large_int8() -> ZooModel {
    build_encoder_classifier(
        EncoderSpec {
            name: "bert-large",
            blocks: 24,
            hidden: 1024,
            params_m: 345.0,
            bs1_ms: 63.2,
            overparam: 0.65,
        },
        true,
    )
}

/// GPT2-medium used as a (decoder-only) NLP classifier, as in §4.1.
pub fn gpt2_medium() -> ZooModel {
    let hidden = 1024u32;
    let blocks = 24u32;
    let mut b = GraphBuilder::new();
    b.push(
        "embeddings",
        LayerKind::Embedding,
        51_000_000,
        hidden,
        0,
        Stage::Main,
    );
    for blk in 0..blocks {
        push_transformer_block(
            &mut b,
            &format!("decoder{blk}"),
            hidden,
            blk + 1,
            Stage::Main,
            false,
        );
    }
    let head_block = blocks + 1;
    b.push(
        "final_norm",
        LayerKind::Norm,
        hidden as u64 * 2,
        hidden,
        head_block,
        Stage::Main,
    );
    b.push(
        "classifier",
        LayerKind::FullyConnected,
        hidden as u64 * 2,
        2,
        head_block,
        Stage::Main,
    );
    b.push("softmax", LayerKind::Softmax, 0, 2, head_block, Stage::Main);
    let graph = b.build();
    let descriptor = ModelDescriptor {
        name: "gpt2-medium".into(),
        family: ModelFamily::Gpt2,
        task: TaskKind::Classification,
        params_millions: 345.0,
        bs1_latency_ms: 103.0,
        default_slo_ms: 206.0,
        num_classes: 2,
        num_blocks: blocks,
        overparameterization: 0.60,
        quantized: false,
        bytes_per_param: 4,
    };
    finish(graph, descriptor, ComputeShape::Uniform, 0.20, 0.85)
}

// ---------------------------------------------------------------------------
// Generative LLMs
// ---------------------------------------------------------------------------

/// Specification of a generative decoder stack.
struct DecoderSpec {
    name: &'static str,
    family: ModelFamily,
    blocks: u32,
    hidden: u32,
    params_m: f64,
    per_token_ms: f64,
    overparam: f64,
    with_cross_attention: bool,
}

/// Build a generative model's *decode pass* graph (the per-token computation).
///
/// For T5 the encoder/prefill phase is not modelled: time-per-token (TPT), the
/// paper's generative latency metric, is dominated by the decoder stack, and
/// ramps are only ever injected into decoding (§3.1).
fn build_decoder(spec: DecoderSpec) -> ZooModel {
    let mut b = GraphBuilder::new();
    b.push(
        "embeddings",
        LayerKind::Embedding,
        32_000 * spec.hidden as u64,
        spec.hidden,
        0,
        Stage::Decoder,
    );
    for blk in 0..spec.blocks {
        push_transformer_block(
            &mut b,
            &format!("decoder{blk}"),
            spec.hidden,
            blk + 1,
            Stage::Decoder,
            spec.with_cross_attention,
        );
    }
    let head_block = spec.blocks + 1;
    b.push(
        "final_norm",
        LayerKind::Norm,
        spec.hidden as u64 * 2,
        spec.hidden,
        head_block,
        Stage::Decoder,
    );
    b.push(
        "lm_head",
        LayerKind::DecoderHead,
        32_000 * spec.hidden as u64,
        32_000,
        head_block,
        Stage::Decoder,
    );
    let graph = b.build();
    let descriptor = ModelDescriptor {
        name: spec.name.to_string(),
        family: spec.family,
        task: TaskKind::Generative,
        params_millions: spec.params_m,
        bs1_latency_ms: spec.per_token_ms,
        default_slo_ms: spec.per_token_ms * 2.0,
        num_classes: 32_000,
        num_blocks: spec.blocks,
        overparameterization: spec.overparam,
        quantized: false,
        bytes_per_param: 4,
    };
    finish(graph, descriptor, ComputeShape::Uniform, 0.20, 0.85)
}

/// T5-large decode stack (24 decoder blocks with cross-attention), used for
/// summarisation and question answering (Figure 18, left).
pub fn t5_large() -> ZooModel {
    build_decoder(DecoderSpec {
        name: "t5-large",
        family: ModelFamily::T5,
        blocks: 24,
        hidden: 1024,
        params_m: 770.0,
        per_token_ms: 16.0,
        overparam: 0.85,
        with_cross_attention: true,
    })
}

/// Llama2-7B decode stack (32 decoder blocks), Figure 18 right.
pub fn llama2_7b() -> ZooModel {
    build_decoder(DecoderSpec {
        name: "llama2-7b",
        family: ModelFamily::Llama,
        blocks: 32,
        hidden: 4096,
        params_m: 7_000.0,
        per_token_ms: 25.0,
        overparam: 0.62,
        with_cross_attention: false,
    })
}

/// Llama2-13B decode stack (40 decoder blocks), Figure 18 right.
pub fn llama2_13b() -> ZooModel {
    build_decoder(DecoderSpec {
        name: "llama2-13b",
        family: ModelFamily::Llama,
        blocks: 40,
        hidden: 5120,
        params_m: 13_000.0,
        per_token_ms: 40.0,
        overparam: 0.68,
        with_cross_attention: false,
    })
}

// ---------------------------------------------------------------------------
// Lookup helpers
// ---------------------------------------------------------------------------

/// Every classification model in the corpus (10 models across 4 families,
/// §4.1), excluding quantised variants.
pub fn classification_models() -> Vec<ZooModel> {
    vec![
        resnet(18),
        resnet(50),
        resnet(101),
        vgg(11),
        vgg(13),
        vgg(16),
        distilbert(),
        bert_base(),
        bert_large(),
        gpt2_medium(),
    ]
}

/// The CV subset of the corpus.
pub fn cv_models() -> Vec<ZooModel> {
    vec![
        resnet(18),
        resnet(50),
        resnet(101),
        vgg(11),
        vgg(13),
        vgg(16),
    ]
}

/// The NLP classification subset of the corpus.
pub fn nlp_models() -> Vec<ZooModel> {
    vec![distilbert(), bert_base(), bert_large(), gpt2_medium()]
}

/// The generative subset of the corpus.
pub fn generative_models() -> Vec<ZooModel> {
    vec![t5_large(), llama2_7b(), llama2_13b()]
}

/// Look up a model by canonical name (e.g. `"resnet50"`, `"bert-base"`,
/// `"bert-base-int8"`, `"t5-large"`). Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<ZooModel> {
    match name {
        "resnet18" => Some(resnet(18)),
        "resnet50" => Some(resnet(50)),
        "resnet101" => Some(resnet(101)),
        "vgg11" => Some(vgg(11)),
        "vgg13" => Some(vgg(13)),
        "vgg16" => Some(vgg(16)),
        "distilbert-base" | "distilbert" => Some(distilbert()),
        "bert-base" => Some(bert_base()),
        "bert-large" => Some(bert_large()),
        "bert-base-int8" => Some(bert_base_int8()),
        "bert-large-int8" => Some(bert_large_int8()),
        "gpt2-medium" | "gpt2" => Some(gpt2_medium()),
        "t5-large" | "t5" => Some(t5_large()),
        "llama2-7b" => Some(llama2_7b()),
        "llama2-13b" => Some(llama2_13b()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 5 batch-1 latency targets in milliseconds.
    const TABLE5: &[(&str, f64, f64)] = &[
        ("resnet18", 6.5, 13.0),
        ("resnet50", 16.4, 32.8),
        ("resnet101", 33.3, 66.6),
        ("vgg11", 3.3, 10.0),
        ("vgg13", 3.8, 10.0),
        ("vgg16", 4.5, 10.0),
        ("distilbert-base", 15.5, 31.0),
        ("bert-base", 29.4, 58.8),
        ("bert-large", 63.2, 126.4),
        ("gpt2-medium", 103.0, 206.0),
    ];

    #[test]
    fn table5_latencies_and_slos_are_calibrated() {
        for &(name, bs1_ms, slo_ms) in TABLE5 {
            let model = by_name(name).expect("model exists");
            assert!(
                (model.bs1_latency_ms() - bs1_ms).abs() / bs1_ms < 0.01,
                "{name}: calibrated {} vs target {bs1_ms}",
                model.bs1_latency_ms()
            );
            assert!(
                (model.descriptor.default_slo_ms - slo_ms).abs() < 0.2,
                "{name}: SLO {} vs target {slo_ms}",
                model.descriptor.default_slo_ms
            );
        }
    }

    #[test]
    fn resnet_ramps_only_between_blocks() {
        let model = resnet(50);
        let sites = model.graph.feasible_ramp_sites(None);
        assert!(!sites.is_empty());
        // No feasible site should be an intra-block conv/norm (those are
        // bypassed by the skip edge). The residual add outputs and stem/head
        // layers are fine.
        for site in &sites {
            let layer = model.graph.layer(*site);
            assert!(
                !matches!(layer.kind, LayerKind::Conv | LayerKind::Norm)
                    || layer.name.starts_with("stem"),
                "unexpected intra-block ramp site: {}",
                layer.name
            );
        }
    }

    #[test]
    fn vgg_every_layer_is_feasible() {
        let model = vgg(13);
        // VGG is a chain, so every interior layer is a cut vertex.
        let sites = model.graph.feasible_ramp_sites(None);
        assert_eq!(sites.len(), model.graph.len() - 2);
    }

    #[test]
    fn ramp_coverage_within_papers_range() {
        // §3.1: "9.2–68.4 % of layers having ramps for the models in our corpus".
        for model in classification_models() {
            let coverage = model.graph.ramp_coverage();
            assert!(
                (0.05..=0.95).contains(&coverage),
                "{}: coverage {coverage}",
                model.descriptor.name
            );
        }
    }

    #[test]
    fn bert_blocks_match_architecture() {
        assert_eq!(bert_base().descriptor.num_blocks, 12);
        assert_eq!(bert_large().descriptor.num_blocks, 24);
        assert_eq!(distilbert().descriptor.num_blocks, 6);
        assert_eq!(gpt2_medium().descriptor.num_blocks, 24);
    }

    #[test]
    fn bert_ramp_sites_are_block_boundaries() {
        let model = bert_base();
        let sites = model.graph.feasible_ramp_sites(None);
        // One boundary after the embedding and one after each encoder block's
        // final norm, plus pooler/classifier head positions.
        assert!(sites.len() >= 12, "got {} sites", sites.len());
        for site in &sites {
            let layer = model.graph.layer(*site);
            assert!(
                !matches!(layer.kind, LayerKind::Attention | LayerKind::FeedForward),
                "ramp inside a transformer block at {}",
                layer.name
            );
        }
    }

    #[test]
    fn quantized_variants_are_faster_and_less_overparameterized() {
        let base = bert_base();
        let int8 = bert_base_int8();
        assert!(int8.bs1_latency_ms() < base.bs1_latency_ms());
        assert!(int8.descriptor.overparameterization < base.descriptor.overparameterization);
        assert_eq!(int8.descriptor.bytes_per_param, 1);
        assert!(int8.weight_bytes() < base.weight_bytes());
    }

    #[test]
    fn generative_models_are_decoder_staged() {
        for model in generative_models() {
            assert_eq!(model.descriptor.task, TaskKind::Generative);
            let decoder_sites = model.graph.feasible_ramp_sites(Some(Stage::Decoder));
            assert!(!decoder_sites.is_empty());
            assert_eq!(
                decoder_sites.len(),
                model.graph.feasible_ramp_sites(None).len(),
                "all layers of the decode pass belong to the decoder stage"
            );
        }
    }

    #[test]
    fn generative_per_token_latencies_ordered_by_size() {
        let t5 = t5_large();
        let l7 = llama2_7b();
        let l13 = llama2_13b();
        assert!(t5.bs1_latency_ms() < l7.bs1_latency_ms());
        assert!(l7.bs1_latency_ms() < l13.bs1_latency_ms());
    }

    #[test]
    fn corpus_lists_have_expected_sizes() {
        assert_eq!(classification_models().len(), 10);
        assert_eq!(cv_models().len(), 6);
        assert_eq!(nlp_models().len(), 4);
        assert_eq!(generative_models().len(), 3);
        assert!(by_name("nonexistent-model").is_none());
    }

    #[test]
    fn front_loaded_cv_vs_uniform_nlp_latency_shape() {
        let cv = resnet(50);
        let nlp = bert_base();
        // Halfway through the layer count, a CV model should have accumulated a
        // larger fraction of its total latency than a transformer.
        let cv_mid = cv.latency.prefix_fraction(cv.graph.len() / 2);
        let nlp_mid = nlp.latency.prefix_fraction(nlp.graph.len() / 2);
        assert!(
            cv_mid > nlp_mid,
            "CV prefix fraction {cv_mid} should exceed NLP {nlp_mid}"
        );
    }

    #[test]
    fn larger_models_have_more_params_and_latency() {
        assert!(resnet(101).descriptor.params_millions > resnet(50).descriptor.params_millions);
        assert!(resnet(101).bs1_latency_ms() > resnet(50).bs1_latency_ms());
        assert!(bert_large().bs1_latency_ms() > bert_base().bs1_latency_ms());
        assert!(llama2_13b().descriptor.params_millions > llama2_7b().descriptor.params_millions);
    }
}
