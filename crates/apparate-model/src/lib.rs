//! Model substrate for the Apparate reproduction.
//!
//! The paper ingests pre-trained models in ONNX form and analyses their
//! computation graphs to decide where early-exit ramps are feasible (§3.1).
//! This crate provides the equivalent substrate:
//!
//! * [`layer`] — the operator-level IR ([`Layer`], [`LayerKind`], [`LayerId`]).
//! * [`graph`] — the validated DAG ([`ModelGraph`]) with topological ordering
//!   and **cut-vertex analysis**, the structural feasibility rule for ramps.
//! * [`latency`] — the per-layer, batch-aware latency model and prefix-latency
//!   tables used for savings/overhead accounting.
//! * [`meta`] — model descriptors (families, tasks, SLOs, calibration targets).
//! * [`zoo`] — synthetic reconstructions of the paper's full model corpus
//!   (ResNet/VGG/BERT/DistilBERT/GPT2/T5/Llama2 + quantised variants),
//!   calibrated to Table 5.
//!
//! Entry points: [`zoo`] for ready-made models, [`ModelGraph`] for the DAG
//! analysis a custom model needs before ramps can be placed on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod latency;
pub mod layer;
pub mod meta;
pub mod zoo;

pub use graph::{GraphError, ModelGraph};
pub use latency::{synthesize_latency, ComputeShape, LayerLatency, ModelLatency};
pub use layer::{Layer, LayerId, LayerKind, Stage};
pub use meta::{ModelDescriptor, ModelFamily, TaskKind};
pub use zoo::ZooModel;
