//! Model metadata: families, tasks and descriptors.
//!
//! The descriptor bundles what the serving layer and the semantics model need
//! to know about a zoo model beyond its graph: calibration targets (Table 5),
//! default SLOs, parameter counts, and an *overparameterisation* hint that
//! drives how "exitable" the model is in the semantics simulation (§2.2: "the
//! intuition is that models are often overparameterized ... and 'easy' inputs
//! may not require complete model processing").

use serde::{Deserialize, Serialize};

/// Model family, used for family-specific ramp and latency heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Residual CNNs (ResNet-18/50/101).
    ResNet,
    /// Chained CNNs (VGG-11/13/16).
    Vgg,
    /// Encoder-only transformers (BERT-base/large, DistilBERT).
    Bert,
    /// Decoder-only transformer used for classification (GPT2-medium).
    Gpt2,
    /// Encoder-decoder generative LLM (T5-large).
    T5,
    /// Decoder-only generative LLM (Llama2-7B/13B).
    Llama,
}

impl ModelFamily {
    /// True for computer-vision families.
    pub fn is_cv(self) -> bool {
        matches!(self, ModelFamily::ResNet | ModelFamily::Vgg)
    }

    /// True for families evaluated as generative workloads in the paper.
    pub fn is_generative(self) -> bool {
        matches!(self, ModelFamily::T5 | ModelFamily::Llama)
    }
}

/// The inference task a model serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Single-shot classification (CV object classification, NLP sentiment).
    Classification,
    /// Auto-regressive generation (summarisation, question answering).
    Generative,
}

/// Static description of a zoo model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelDescriptor {
    /// Canonical name, e.g. `"resnet50"`.
    pub name: String,
    /// Family.
    pub family: ModelFamily,
    /// Task kind.
    pub task: TaskKind,
    /// Parameter count in millions.
    pub params_millions: f64,
    /// Measured batch-1 inference latency in milliseconds (Table 5); for
    /// generative models this is the per-token decode latency.
    pub bs1_latency_ms: f64,
    /// Default SLO in milliseconds (2× batch-1 latency, floored at 10 ms as in
    /// Table 5); unused for generative models.
    pub default_slo_ms: f64,
    /// Number of output classes (classification) or vocabulary size bucket
    /// (generative; only used for ramp-head sizing).
    pub num_classes: u32,
    /// Number of architectural blocks (residual blocks / encoder layers /
    /// decoder layers).
    pub num_blocks: u32,
    /// How overparameterised the model is for its workload, in `[0, 1]`.
    /// Higher values mean easy inputs can be predicted correctly very early.
    /// CV models in the paper exhibit much earlier exits than NLP models, and
    /// quantisation reduces overparameterisation (§4.2).
    pub overparameterization: f64,
    /// Whether this is a post-training-quantised variant.
    pub quantized: bool,
    /// Bytes per parameter (4 for fp32, 1 for int8-quantised).
    pub bytes_per_param: u32,
}

impl ModelDescriptor {
    /// Model weight memory footprint in bytes.
    pub fn weight_bytes(&self) -> u64 {
        (self.params_millions * 1e6) as u64 * self.bytes_per_param as u64
    }

    /// Default SLO expressed in microseconds.
    pub fn default_slo_us(&self) -> u64 {
        (self.default_slo_ms * 1_000.0) as u64
    }

    /// Batch-1 latency expressed in microseconds.
    pub fn bs1_latency_us(&self) -> f64 {
        self.bs1_latency_ms * 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor() -> ModelDescriptor {
        ModelDescriptor {
            name: "resnet50".into(),
            family: ModelFamily::ResNet,
            task: TaskKind::Classification,
            params_millions: 25.6,
            bs1_latency_ms: 16.4,
            default_slo_ms: 32.8,
            num_classes: 1000,
            num_blocks: 16,
            overparameterization: 0.9,
            quantized: false,
            bytes_per_param: 4,
        }
    }

    #[test]
    fn family_classification() {
        assert!(ModelFamily::ResNet.is_cv());
        assert!(ModelFamily::Vgg.is_cv());
        assert!(!ModelFamily::Bert.is_cv());
        assert!(ModelFamily::T5.is_generative());
        assert!(ModelFamily::Llama.is_generative());
        assert!(!ModelFamily::Gpt2.is_generative());
    }

    #[test]
    fn descriptor_derived_quantities() {
        let d = descriptor();
        assert_eq!(d.weight_bytes(), 25_600_000 * 4);
        assert_eq!(d.default_slo_us(), 32_800);
        assert!((d.bs1_latency_us() - 16_400.0).abs() < 1e-9);
    }
}
