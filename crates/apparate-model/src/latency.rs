//! Per-layer latency model and prefix-latency tables.
//!
//! Apparate's ramp-adjustment loop needs "a layer-wise breakdown of time spent
//! during model inference (for different batch sizes)" (§3.3) collected once
//! during bootstrapping. This module models per-layer GPU latency as
//!
//! ```text
//! t_layer(b) = fixed + per_item · b^alpha        (alpha ≤ 1)
//! ```
//!
//! The `fixed` term captures kernel-launch and weight-load cost (amortised by
//! batching, which is where the throughput benefit of batching comes from);
//! the sub-linear `b^alpha` term captures that larger batches use accelerator
//! parallelism more effectively. Calibration scales per-layer costs so that
//! the batch-1 total of each zoo model matches Table 5 in the paper.

use crate::graph::ModelGraph;
use crate::layer::LayerKind;
use serde::{Deserialize, Serialize};

/// Latency model of a single layer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LayerLatency {
    /// Batch-independent cost in microseconds (kernel launch, weight load).
    pub fixed_us: f64,
    /// Per-item cost at batch 1 in microseconds.
    pub per_item_us: f64,
    /// Batch-scaling exponent in `(0, 1]`; smaller means better amortisation.
    pub batch_alpha: f64,
}

impl LayerLatency {
    /// Latency of this layer for a batch of `batch` requests, in microseconds.
    pub fn latency_us(&self, batch: u32) -> f64 {
        debug_assert!(batch >= 1, "batch must be at least 1");
        self.fixed_us + self.per_item_us * (batch as f64).powf(self.batch_alpha)
    }

    /// Scale both cost terms by a factor (used for calibration and for
    /// quantised / device-speed variants).
    pub fn scaled(self, factor: f64) -> LayerLatency {
        LayerLatency {
            fixed_us: self.fixed_us * factor,
            per_item_us: self.per_item_us * factor,
            batch_alpha: self.batch_alpha,
        }
    }
}

/// Latency model for an entire graph: one [`LayerLatency`] per layer, stored
/// in **topological order**, plus prefix sums for "run up to position k"
/// queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelLatency {
    /// Per-layer latency in topological order.
    per_layer: Vec<LayerLatency>,
}

impl ModelLatency {
    /// Build from per-layer latencies given in topological order.
    pub fn new(per_layer: Vec<LayerLatency>) -> ModelLatency {
        ModelLatency { per_layer }
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.per_layer.len()
    }

    /// True if no layers are covered.
    pub fn is_empty(&self) -> bool {
        self.per_layer.is_empty()
    }

    /// Per-layer latencies (topological order).
    pub fn per_layer(&self) -> &[LayerLatency] {
        &self.per_layer
    }

    /// Latency of the layer at topological position `pos` for a given batch.
    pub fn layer_latency_us(&self, pos: usize, batch: u32) -> f64 {
        self.per_layer[pos].latency_us(batch)
    }

    /// Total model latency for a batch, in microseconds.
    pub fn total_us(&self, batch: u32) -> f64 {
        self.per_layer.iter().map(|l| l.latency_us(batch)).sum()
    }

    /// Latency of running the model **up to and including** topological
    /// position `pos`, for a batch.
    pub fn prefix_us(&self, pos: usize, batch: u32) -> f64 {
        self.per_layer[..=pos]
            .iter()
            .map(|l| l.latency_us(batch))
            .sum()
    }

    /// Latency of the layers strictly **after** topological position `pos`.
    pub fn suffix_us(&self, pos: usize, batch: u32) -> f64 {
        self.total_us(batch) - self.prefix_us(pos, batch)
    }

    /// Fraction of total batch-1 latency spent up to and including `pos`.
    pub fn prefix_fraction(&self, pos: usize) -> f64 {
        let total = self.total_us(1);
        if total == 0.0 {
            return 0.0;
        }
        self.prefix_us(pos, 1) / total
    }

    /// Scale every layer's latency by `factor`, returning a new model.
    pub fn scaled(&self, factor: f64) -> ModelLatency {
        ModelLatency {
            per_layer: self.per_layer.iter().map(|l| l.scaled(factor)).collect(),
        }
    }

    /// Calibrate so the batch-1 total equals `target_us`.
    pub fn calibrated_to(&self, target_us: f64) -> ModelLatency {
        let current = self.total_us(1);
        if current <= 0.0 {
            return self.clone();
        }
        self.scaled(target_us / current)
    }
}

/// How a model family distributes its compute over depth; drives the synthetic
/// per-layer latency assignment.
///
/// The paper notes that "latency arises early in CV models, but more evenly
/// across coding blocks in transformers" (§3.3) — front-loaded vs. uniform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ComputeShape {
    /// Early layers dominate (CV convolution pyramids on large feature maps).
    FrontLoaded {
        /// Ratio between the heaviest (first) and lightest (last) compute-heavy
        /// layer; 1.0 degenerates to uniform.
        skew: f64,
    },
    /// Compute is spread evenly (transformer blocks are homogeneous).
    Uniform,
}

/// Build a [`ModelLatency`] for `graph` by distributing `total_bs1_us`
/// microseconds of batch-1 latency across its layers.
///
/// Compute-heavy layers (convolutions, attention, FFN, FC) receive the bulk of
/// the time according to `shape`; glue layers (norm, add, activation, dropout)
/// receive a small constant share. `fixed_share` of each layer's cost is
/// batch-independent, the rest scales as `b^alpha`.
pub fn synthesize_latency(
    graph: &ModelGraph,
    total_bs1_us: f64,
    shape: ComputeShape,
    fixed_share: f64,
    batch_alpha: f64,
) -> ModelLatency {
    let n = graph.len();
    let topo = graph.topo_order();
    // Weight per layer: compute-heavy layers get a depth-dependent weight, glue
    // layers get 2% of a nominal heavy weight.
    let heavy_positions: Vec<usize> = (0..n)
        .filter(|&pos| graph.layer(topo[pos]).kind.is_compute_heavy())
        .collect();
    let heavy_count = heavy_positions.len().max(1);
    let mut weights = vec![0.0f64; n];
    for (rank, &pos) in heavy_positions.iter().enumerate() {
        let w = match shape {
            ComputeShape::Uniform => 1.0,
            ComputeShape::FrontLoaded { skew } => {
                // Linearly interpolate from `skew` (first heavy layer) down to 1.0.
                let t = if heavy_count == 1 {
                    0.0
                } else {
                    rank as f64 / (heavy_count - 1) as f64
                };
                skew * (1.0 - t) + 1.0 * t
            }
        };
        weights[pos] = w;
    }
    let glue_weight = 0.02;
    for (pos, w) in weights.iter_mut().enumerate() {
        if *w == 0.0 {
            let kind = graph.layer(topo[pos]).kind;
            *w = match kind {
                LayerKind::Pooling | LayerKind::Softmax | LayerKind::Pooler => glue_weight * 2.0,
                _ => glue_weight,
            };
        }
    }
    let weight_sum: f64 = weights.iter().sum();
    let per_layer = weights
        .into_iter()
        .map(|w| {
            let share_us = total_bs1_us * w / weight_sum;
            LayerLatency {
                fixed_us: share_us * fixed_share,
                per_item_us: share_us * (1.0 - fixed_share),
                batch_alpha,
            }
        })
        .collect();
    ModelLatency::new(per_layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, LayerId, LayerKind};

    fn toy_graph(n: usize) -> ModelGraph {
        let layers = (0..n)
            .map(|i| {
                let kind = if i % 2 == 0 {
                    LayerKind::Conv
                } else {
                    LayerKind::Activation
                };
                Layer::new(i, format!("l{i}"), kind, 10, 8, i as u32)
            })
            .collect();
        let edges = (0..n - 1).map(|i| (LayerId(i), LayerId(i + 1))).collect();
        ModelGraph::new(layers, edges).expect("valid graph")
    }

    #[test]
    fn layer_latency_scales_sublinearly() {
        let l = LayerLatency {
            fixed_us: 100.0,
            per_item_us: 50.0,
            batch_alpha: 0.7,
        };
        let b1 = l.latency_us(1);
        let b8 = l.latency_us(8);
        assert!(b8 > b1);
        // Per-request latency must shrink as batch grows (that is the whole
        // point of batching).
        assert!(b8 / 8.0 < b1);
    }

    #[test]
    fn synthesized_total_matches_target() {
        let g = toy_graph(10);
        let lat = synthesize_latency(
            &g,
            16_400.0,
            ComputeShape::FrontLoaded { skew: 4.0 },
            0.3,
            0.75,
        );
        assert!((lat.total_us(1) - 16_400.0).abs() < 1e-6);
        assert_eq!(lat.len(), 10);
    }

    #[test]
    fn front_loaded_prefix_grows_fast() {
        let g = toy_graph(20);
        let front = synthesize_latency(
            &g,
            10_000.0,
            ComputeShape::FrontLoaded { skew: 6.0 },
            0.3,
            0.75,
        );
        let uniform = synthesize_latency(&g, 10_000.0, ComputeShape::Uniform, 0.3, 0.75);
        let mid = 9; // halfway point
        assert!(
            front.prefix_fraction(mid) > uniform.prefix_fraction(mid),
            "front-loaded models should accumulate latency earlier"
        );
    }

    #[test]
    fn prefix_and_suffix_partition_total() {
        let g = toy_graph(12);
        let lat = synthesize_latency(&g, 5_000.0, ComputeShape::Uniform, 0.3, 0.8);
        for pos in 0..lat.len() {
            let total = lat.prefix_us(pos, 4) + lat.suffix_us(pos, 4);
            assert!((total - lat.total_us(4)).abs() < 1e-6);
        }
        assert!((lat.prefix_fraction(lat.len() - 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_hits_target() {
        let g = toy_graph(6);
        let lat = synthesize_latency(&g, 1_234.0, ComputeShape::Uniform, 0.5, 0.7);
        let cal = lat.calibrated_to(29_400.0);
        assert!((cal.total_us(1) - 29_400.0).abs() < 1e-6);
    }

    #[test]
    fn scaled_preserves_alpha() {
        let l = LayerLatency {
            fixed_us: 10.0,
            per_item_us: 5.0,
            batch_alpha: 0.66,
        };
        let s = l.scaled(2.0);
        assert_eq!(s.batch_alpha, 0.66);
        assert!((s.fixed_us - 20.0).abs() < 1e-12);
    }
}
