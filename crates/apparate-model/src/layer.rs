//! Layer-level IR.
//!
//! Apparate ingests models in a graph exchange format (ONNX in the paper) and
//! never inspects tensor values — it only needs the *structure* of the
//! computation (which operators exist, how data flows between them) and
//! per-operator cost metadata. [`Layer`] captures exactly that.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a layer within a [`crate::ModelGraph`].
///
/// Layer ids are dense indices; the zoo constructs graphs so that ids are
/// already in topological order, but the graph code never assumes this.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LayerId(pub usize);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// The kind of computation a layer performs.
///
/// The set covers the operator families appearing in the paper's model corpus
/// (ResNet/VGG convolutions, BERT/GPT2/T5/Llama transformer blocks). Kinds
/// matter for ramp-architecture selection (§3.1) and for the latency model
/// (convolutions dominate early in CV models, attention/FFN dominate evenly in
/// transformers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Batch / layer normalisation fused with the preceding op.
    Norm,
    /// Elementwise activation (ReLU / GELU).
    Activation,
    /// Max / average pooling, including global pooling.
    Pooling,
    /// Fully-connected (linear) layer.
    FullyConnected,
    /// Token or position embedding lookup.
    Embedding,
    /// Multi-head self- or cross-attention.
    Attention,
    /// Transformer position-wise feed-forward network.
    FeedForward,
    /// Residual addition joining a skip connection.
    Add,
    /// Softmax / classification head.
    Softmax,
    /// LM decoder head projecting hidden states to vocabulary logits.
    DecoderHead,
    /// BERT-style pooler (first-token extraction + dense + tanh).
    Pooler,
    /// Dropout (identity at inference time, kept for graph fidelity).
    Dropout,
}

impl LayerKind {
    /// True for operators that carry the bulk of a model's FLOPs; used by the
    /// latency calibration to decide where time is spent.
    pub fn is_compute_heavy(self) -> bool {
        matches!(
            self,
            LayerKind::Conv
                | LayerKind::FullyConnected
                | LayerKind::Attention
                | LayerKind::FeedForward
                | LayerKind::DecoderHead
        )
    }
}

/// Pipeline stage a layer belongs to; relevant for encoder-decoder models
/// where ramps are only injected into decoding (§3.1: "only for decoding
/// phases").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Stage {
    /// Single-stage models (all classification models).
    #[default]
    Main,
    /// Encoder of an encoder-decoder LLM.
    Encoder,
    /// Decoder of an encoder-decoder or decoder-only LLM.
    Decoder,
}

/// One operator in the model graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Layer {
    /// Dense identifier within the graph.
    pub id: LayerId,
    /// Human-readable name (e.g. `"block3.conv2"`).
    pub name: String,
    /// Operator kind.
    pub kind: LayerKind,
    /// Pipeline stage.
    pub stage: Stage,
    /// Parameter count of this operator.
    pub params: u64,
    /// Width of the operator's output (channels for CV, hidden size for NLP).
    /// Ramp input width is derived from this (§3.1: "the input width of the fc
    /// layer is modified to match the intermediates at each ramp location").
    pub output_width: u32,
    /// Index of the architectural block this layer belongs to (residual block,
    /// encoder/decoder block, or VGG "stage"); used for reporting only.
    pub block: u32,
}

impl Layer {
    /// Convenience constructor.
    pub fn new(
        id: usize,
        name: impl Into<String>,
        kind: LayerKind,
        params: u64,
        output_width: u32,
        block: u32,
    ) -> Layer {
        Layer {
            id: LayerId(id),
            name: name.into(),
            kind,
            stage: Stage::Main,
            params,
            output_width,
            block,
        }
    }

    /// Set the pipeline stage (builder style).
    pub fn with_stage(mut self, stage: Stage) -> Layer {
        self.stage = stage;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_construction_defaults_to_main_stage() {
        let l = Layer::new(3, "conv1", LayerKind::Conv, 1000, 64, 0);
        assert_eq!(l.id, LayerId(3));
        assert_eq!(l.stage, Stage::Main);
        assert_eq!(l.output_width, 64);
    }

    #[test]
    fn with_stage_overrides() {
        let l = Layer::new(0, "dec0", LayerKind::Attention, 10, 512, 0).with_stage(Stage::Decoder);
        assert_eq!(l.stage, Stage::Decoder);
    }

    #[test]
    fn compute_heavy_classification() {
        assert!(LayerKind::Conv.is_compute_heavy());
        assert!(LayerKind::Attention.is_compute_heavy());
        assert!(!LayerKind::Add.is_compute_heavy());
        assert!(!LayerKind::Dropout.is_compute_heavy());
    }

    #[test]
    fn layer_id_display() {
        assert_eq!(format!("{}", LayerId(7)), "L7");
    }
}
